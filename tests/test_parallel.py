"""Tests for ``repro.parallel``: the grid work model, the process-pool
executor (byte-identical merge, failure propagation, telemetry
stitching), concurrent cache access, and the 64-bit cache digest."""

from __future__ import annotations

import json
import multiprocessing
import os
import threading
import zlib

import numpy as np
import pytest

from repro import telemetry
from repro.config import stable_digest, stable_hash
from repro.experiments import ExperimentConfig, ExperimentRunner
from repro.experiments.table2 import SYSTEM_BUDGETS, run_table2
from repro.parallel import (
    Cell,
    GridSpec,
    ParallelExecutionError,
    ParallelRunner,
    run_table_parallel,
)

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not HAVE_FORK, reason="fork start method unavailable"
)

SMALL = dict(scale=0.02, max_models=2)


# ------------------------------------------------------------------ digest


class TestStableDigest:
    def test_deterministic_and_64_bit(self):
        a = stable_digest("adapter", ("p1", "p2"), 3)
        assert a == stable_digest("adapter", ("p1", "p2"), 3)
        assert 0 <= a < 2**64
        assert a != stable_digest("adapter", ("p1", "p2"), 4)

    def test_separates_a_crc32_collision(self):
        """A real 32-bit collision the 64-bit digest tells apart — the
        adapter cache fingerprint must survive far more distinct pair-id
        sets than a 32-bit code can. The pair below was found by a
        birthday search over md5-derived 16-char strings (CRC32's
        burst-error guarantee hides collisions between strings that
        differ in fewer than 32 consecutive bits, so counter-suffixed
        strings never collide)."""
        left, right = "8a9e0b75eccc318e", "c4c2e7143c8d44b7"
        assert zlib.crc32(repr(left).encode("utf-8")) == zlib.crc32(
            repr(right).encode("utf-8")
        )
        assert stable_hash(left) == stable_hash(right)  # the 32-bit clash
        assert stable_digest(left) != stable_digest(right)

    def test_rng_seeding_still_crc32(self):
        """Seeded streams must not shift: rng_for keeps using CRC32."""
        from repro.config import GLOBAL_SEED, rng_for

        expected = np.random.default_rng(
            (GLOBAL_SEED, stable_hash("dataset", "S-DG", 3))
        ).random(4)
        np.testing.assert_array_equal(
            rng_for("dataset", "S-DG", 3).random(4), expected
        )


# -------------------------------------------------------------------- grid


class TestGridSpec:
    def test_table2_canonical_order(self):
        grid = GridSpec.for_table(2, datasets=("S-BR", "S-FZ"))
        labels = [c.label for c in grid.cells]
        assert labels == [
            "raw:autosklearn:S-BR@1",
            "raw:autogluon:S-BR@inf",
            "raw:h2o:S-BR@1",
            "deepmatcher:S-BR",
            "raw:autosklearn:S-FZ@1",
            "raw:autogluon:S-FZ@inf",
            "raw:h2o:S-FZ@1",
            "deepmatcher:S-FZ",
        ]

    def test_table3_grid_size(self):
        grid = GridSpec.for_table(3, datasets=("S-BR",))
        # 3 systems x 1 dataset x 2 tokenizer modes x 5 embedders.
        assert len(grid) == 30
        assert all(c.kind == "adapted" for c in grid.cells)

    def test_table4_is_duplicate_free(self):
        grid = GridSpec.for_table(4, datasets=("S-BR", "S-FZ"))
        assert len(set(grid.cells)) == len(grid.cells)
        budgets = dict(SYSTEM_BUDGETS)
        for cell in grid.cells:
            if cell.kind == "raw":
                assert cell.budget_hours == budgets.get(cell.system, 1.0)

    def test_table5_reuses_deepmatcher_and_best_adapter(self):
        grid = GridSpec.for_table(5, datasets=("S-BR",))
        kinds = [c.kind for c in grid.cells]
        assert kinds.count("deepmatcher") == 1
        adapted = [c for c in grid.cells if c.kind == "adapted"]
        assert {(c.tokenizer, c.embedder) for c in adapted} == {("hybrid", "albert")}
        assert {c.budget_hours for c in adapted} == {1.0, 6.0}

    def test_table1_has_no_grid(self):
        with pytest.raises(ValueError):
            GridSpec.for_table(1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Cell("bogus", "S-BR")

    def test_match_cells_are_uncached(self):
        grid = GridSpec.single_match("S-BR", "autosklearn", 1.0)
        assert grid.cells[0].cache_key(ExperimentConfig(**SMALL)) is None

    def test_cache_key_matches_runner(self, tmp_path, monkeypatch):
        """Cell.cache_key must stay in lock-step with the key the runner
        actually writes — the parallel merge seeds the renderer by it."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        config = ExperimentConfig(**SMALL)
        cell = Cell("deepmatcher", "S-BR")
        cell.run(ExperimentRunner(config))
        assert (tmp_path / f"{cell.cache_key(config)}.json").exists()


# ---------------------------------------------------------------- stitching


def _worker_snapshot() -> dict:
    """A synthetic worker trace with two nested spans and all signals."""
    with telemetry.recording() as rec:
        with telemetry.span("runner.run_raw", system="h2o"):
            with telemetry.span("runner.featurize"):
                pass
        telemetry.counter("runner.cache.disk.misses").inc(2)
        telemetry.gauge("depth").set(4)
        telemetry.histogram("charge", (0.5, 1.0)).observe(0.75)
        telemetry.trial("h2o", "gbm", "depth=4", 0.01, 0.9, True)
    from repro.telemetry import snapshot

    return snapshot(rec)


class TestGraftSnapshot:
    def test_spans_reparented_and_reidentified(self):
        trace = _worker_snapshot()
        with telemetry.recording() as rec:
            with telemetry.span("parallel.run"):
                root_id = telemetry.graft_snapshot(
                    rec, trace, name="parallel.cell", cell="raw:h2o:S-BR@1"
                )
        by_name = {s.name: s for s in rec.spans}
        cell = by_name["parallel.cell"]
        assert cell.span_id == root_id
        assert cell.parent_id == by_name["parallel.run"].span_id
        assert cell.attributes["cell"] == "raw:h2o:S-BR@1"
        assert by_name["runner.run_raw"].parent_id == root_id
        assert (
            by_name["runner.featurize"].parent_id
            == by_name["runner.run_raw"].span_id
        )
        ids = [s.span_id for s in rec.spans]
        assert len(set(ids)) == len(ids)
        grafted = [s for s in rec.spans if s.name != "parallel.run"]
        assert all(s.end <= cell.end + 1e-9 for s in grafted)

    def test_metrics_and_events_merge(self):
        trace = _worker_snapshot()
        with telemetry.recording() as rec:
            telemetry.counter("runner.cache.disk.misses").inc()
            telemetry.histogram("charge", (0.5, 1.0)).observe(0.2)
            telemetry.graft_snapshot(rec, trace)
            telemetry.graft_snapshot(rec, trace)
        counters = rec.metrics.counters
        assert counters["runner.cache.disk.misses"].value == 5  # 1 + 2 + 2
        assert rec.metrics.gauges["depth"].value == 4
        histogram = rec.metrics.histograms["charge"]
        assert histogram.total == 3
        assert histogram.sum == pytest.approx(0.2 + 0.75 + 0.75)
        assert len(rec.trials) == 2
        assert rec.trials[0].system == "h2o"
        assert rec.trials[0].accepted is True


# ---------------------------------------------------------------- executor


class TestParallelRunner:
    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            ParallelRunner(jobs=0)

    def test_jobs2_output_byte_identical_to_serial(self, tmp_path, monkeypatch):
        """The acceptance bar: a --jobs 2 table renders byte-identically
        to --jobs 1, from a cold cache on both sides."""
        config = ExperimentConfig(**SMALL)
        datasets = ("S-BR",)

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "serial"))
        serial = run_table2(config, datasets)

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "parallel"))
        parallel = run_table_parallel(2, config, datasets, jobs=2)

        assert parallel == serial

    @needs_fork
    def test_worker_failure_propagates_and_leaks_no_tmp(
        self, tmp_path, monkeypatch
    ):
        """A cell crashing mid-grid fails the run loudly — and the cache
        directory holds no half-written .tmp files afterwards."""
        from repro.matching.deepmatcher import DeepMatcherHybrid

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))

        def explode(self, *args, **kwargs):
            raise RuntimeError("injected mid-cell failure")

        monkeypatch.setattr(DeepMatcherHybrid, "fit", explode)
        config = ExperimentConfig(**SMALL)
        grid = GridSpec(
            table=2,
            cells=(
                Cell("raw", "S-BR", system="h2o", budget_hours=1.0),
                Cell("deepmatcher", "S-BR"),
            ),
        )
        runner = ParallelRunner(config, jobs=2, start_method="fork")
        with pytest.raises(ParallelExecutionError) as excinfo:
            runner.run(grid)
        assert "deepmatcher:S-BR" in str(excinfo.value)
        assert "RuntimeError" in str(excinfo.value)
        leftovers = [p for p in tmp_path.rglob("*.tmp")]
        assert leftovers == []

    @needs_fork
    def test_pool_trace_stitched_into_parent(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        config = ExperimentConfig(**SMALL)
        grid = GridSpec(table=2, cells=(Cell("deepmatcher", "S-BR"),))
        with telemetry.recording() as rec:
            results = ParallelRunner(config, jobs=2, start_method="fork").run(grid)
        names = [s.name for s in rec.spans]
        assert "parallel.run" in names
        assert "parallel.cell" in names
        assert "runner.run_deepmatcher" in names  # grafted from the worker
        cell_span = next(s for s in rec.spans if s.name == "parallel.cell")
        assert cell_span.attributes["worker_pid"] == results[0].worker_pid
        assert results[0].worker_pid != os.getpid()
        assert rec.metrics.counters["parallel.cells.completed"].value == 1

    def test_inline_matches_pool_records(self, tmp_path, monkeypatch):
        """jobs=1 (inline) and jobs=2 (pool) compute identical records
        from independent cold caches — determinism, not cache reuse."""
        config = ExperimentConfig(**SMALL)
        grid = GridSpec(table=2, cells=(Cell("deepmatcher", "S-FZ"),))

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "inline"))
        inline = ParallelRunner(config, jobs=1).run(grid)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "pool"))
        pooled = ParallelRunner(config, jobs=2).run(grid)

        # wall_seconds is genuine wall-clock and never rendered into
        # tables; every accuracy-relevant field must match exactly.
        def stable(result):
            return {
                k: v for k, v in result.record.items() if k != "wall_seconds"
            }

        assert [stable(r) for r in inline] == [stable(r) for r in pooled]
        assert inline[0].cell == pooled[0].cell

    def test_warmed_runner_renders_without_recompute(self, tmp_path, monkeypatch):
        """The merge path: records seeded into a fresh runner serve the
        renderer from memory even with the disk cache off."""
        config = ExperimentConfig(**SMALL)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        executor = ParallelRunner(config, jobs=1)
        grid = GridSpec(table=2, cells=(Cell("deepmatcher", "S-BR"),))
        results = executor.run(grid)

        monkeypatch.setenv("REPRO_CACHE_DIR", "off")
        runner = executor.warmed_runner(results)
        with telemetry.recording() as rec:
            outcome = runner.run_deepmatcher("S-BR")
        assert outcome.__dict__ == results[0].record
        assert rec.metrics.counters["runner.cache.memory.hits"].value == 1
        assert "runner.run_deepmatcher" not in [s.name for s in rec.spans]

    def test_seed_result_rejects_malformed_record(self):
        runner = ExperimentRunner(ExperimentConfig(**SMALL))
        with pytest.raises(ValueError):
            runner.seed_result("key", {"f1": 1.0})


# ------------------------------------------------------------ worker death


class TestWorkerDeathRecovery:
    @needs_fork
    def test_injected_kill_is_retried_and_accounted(self, tmp_path, monkeypatch):
        """A worker killed mid-cell (os._exit — no unwinding, like
        SIGKILL) breaks the pool; the executor rebuilds it, re-executes
        the dead worker's cells, and settles the fault."""
        from repro import faults
        from repro.faults import FaultPlan, FaultSpec

        config = ExperimentConfig(**SMALL)
        grid = GridSpec(
            table=2,
            cells=(
                Cell("raw", "S-BR", system="h2o", budget_hours=1.0),
                Cell("deepmatcher", "S-BR"),
            ),
        )
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "serial"))
        serial = ParallelRunner(config, jobs=1).run(grid)

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "chaos"))
        plan = FaultPlan(
            specs=[FaultSpec("parallel.worker", "kill", key="deepmatcher:S-BR")]
        )
        with faults.injecting(plan):
            with telemetry.recording() as rec:
                survived = ParallelRunner(
                    config, jobs=2, start_method="fork"
                ).run(grid)

        def stable(result):
            return {
                k: v for k, v in result.record.items() if k != "wall_seconds"
            }

        assert [stable(r) for r in survived] == [stable(r) for r in serial]
        assert plan.specs[0].disarmed
        counters = rec.metrics.counters
        assert counters["parallel.worker.restarts"].value == 1
        assert counters["faults.injected.worker"].value == 1
        assert counters["faults.recovered.worker"].value == 1
        assert "faults.fatal.worker" not in counters
        assert list((tmp_path / "chaos").rglob("*.tmp")) == []

    @needs_fork
    def test_restart_budget_exhausted_fails_loudly(self, tmp_path, monkeypatch):
        """With worker_restarts=0 the first death is already fatal: the
        run raises instead of silently dropping the cell."""
        from repro import faults
        from repro.faults import FaultPlan, FaultSpec

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        config = ExperimentConfig(**SMALL)
        grid = GridSpec(table=2, cells=(Cell("deepmatcher", "S-BR"),))
        plan = FaultPlan(
            specs=[FaultSpec("parallel.worker", "kill", key="deepmatcher:S-BR")]
        )
        with faults.injecting(plan):
            with telemetry.recording() as rec:
                runner = ParallelRunner(
                    config, jobs=2, start_method="fork", worker_restarts=0
                )
                with pytest.raises(ParallelExecutionError) as excinfo:
                    runner.run(grid)
        assert "deepmatcher:S-BR" in str(excinfo.value)
        assert "gave up after 0 pool restart(s)" in str(excinfo.value)
        counters = rec.metrics.counters
        assert counters["faults.injected.worker"].value == 1
        assert counters["faults.fatal.worker"].value == 1
        assert "faults.recovered.worker" not in counters

    def test_rejects_negative_worker_restarts(self):
        with pytest.raises(ValueError):
            ParallelRunner(worker_restarts=-1)


# ------------------------------------------------------- concurrent caches


class TestConcurrentCacheAccess:
    def test_two_threads_one_adapter_cache_file(self, tmp_path, monkeypatch):
        """Two threads transform the same dataset concurrently: both
        succeed and exactly one valid .npy lands in the disk cache."""
        from repro.adapter import EMAdapter, clear_adapter_cache
        from tests.test_adapter import make_dataset

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_adapter_cache()
        dataset = make_dataset()
        barrier = threading.Barrier(2)
        outputs: dict[int, np.ndarray] = {}
        errors: list[Exception] = []

        def transform(slot: int) -> None:
            try:
                barrier.wait(timeout=30)
                # A private adapter instance per thread; the module-level
                # memory cache and the disk cache are the shared state.
                outputs[slot] = EMAdapter("attr", "dbert", "mean").transform(dataset)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=transform, args=(slot,)) for slot in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        clear_adapter_cache()

        assert errors == []
        np.testing.assert_array_equal(outputs[0], outputs[1])
        files = sorted(p.name for p in (tmp_path / "adapter").iterdir())
        assert len(files) == 1 and files[0].endswith(".npy")
        loaded = np.load(tmp_path / "adapter" / files[0])
        np.testing.assert_array_equal(loaded, outputs[0])

    def test_two_threads_share_one_entity_store(self, tmp_path, monkeypatch):
        """Two threads transform the same dataset through the shared
        entity store concurrently (the serving daemon's shape): both get
        byte-identical output and the store's byte tally stays coherent
        (regression for the unlocked ``ByteBudgetLRU``)."""
        from repro.adapter import EMAdapter, clear_adapter_cache
        from repro.adapter.entity_store import clear_entity_store, entity_store
        from tests.test_adapter import make_dataset

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_adapter_cache()
        clear_entity_store()
        dataset = make_dataset()
        barrier = threading.Barrier(2)
        outputs: dict[int, np.ndarray] = {}
        errors: list[Exception] = []

        def transform(slot: int) -> None:
            try:
                barrier.wait(timeout=30)
                adapter = EMAdapter(
                    "attr", "dbert", "mean", cache=False, entity_cache=True
                )
                outputs[slot] = adapter.transform(dataset)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=transform, args=(slot,)) for slot in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)

        assert errors == []
        np.testing.assert_array_equal(outputs[0], outputs[1])
        store = entity_store()
        assert store.resident_bytes >= 0
        # Cold single-threaded replay must agree bit-for-bit.
        clear_entity_store()
        cold = EMAdapter(
            "attr", "dbert", "mean", cache=False, entity_cache=False
        ).transform(dataset)
        np.testing.assert_array_equal(cold, outputs[0])
        clear_entity_store()
        clear_adapter_cache()

    @needs_fork
    def test_two_processes_store_same_runner_key(self, tmp_path, monkeypatch):
        """Two processes storing the same runner key both succeed and
        leave exactly one valid JSON record (atomic-rename path)."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        config = ExperimentConfig(**SMALL)
        record = {
            "system": "deepmatcher", "dataset": "S-BR",
            "f1": 50.0, "precision": 50.0, "recall": 50.0,
            "simulated_hours": 0.1, "wall_seconds": 0.2,
        }
        key = config.cache_key("deepmatcher", "S-BR")
        context = multiprocessing.get_context("fork")
        start = context.Barrier(2)

        def store() -> None:
            runner = ExperimentRunner(config)
            start.wait(timeout=30)
            for _ in range(25):
                runner._store(key, record)

        workers = [context.Process(target=store) for _ in range(2)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)
        assert all(worker.exitcode == 0 for worker in workers)

        files = sorted(p.name for p in tmp_path.iterdir())
        assert files == [f"{key}.json"]
        with (tmp_path / files[0]).open() as handle:
            assert json.load(handle) == record


# ---------------------------------------------------------------------- cli


class TestCliJobs:
    def test_table1_ignores_jobs(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["table", "1", "--jobs", "4"]) == 0
        assert "Magellan" in capsys.readouterr().out
