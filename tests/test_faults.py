"""Tests for ``repro.faults``: plan/spec scheduling semantics, the
retry policy, every wired injection seam (kill-mid-write at the four
atomic-write sites, corrupt-cache recovery in the adapter/runner/
analysis caches, budget exhaustion mid-trial, estimator failures), and
the ``run_chaos`` harness behind ``repro-em chaos``."""

from __future__ import annotations

import numpy as np
import pytest

from repro import faults, telemetry
from repro.faults import (
    CATALOG,
    CORRUPT_PAYLOAD,
    DEFAULT_ATTEMPTS,
    DEFAULT_CHAOS_POINTS,
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
    io_retry,
)


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """A test that dies mid-``injecting`` must not poison the suite."""
    yield
    faults.uninstall()


def counters(rec) -> dict[str, float]:
    return {name: c.value for name, c in rec.metrics.counters.items()}


# ------------------------------------------------------------ checkpoints


class TestCheckpointDisabled:
    def test_checkpoint_and_mark_recovered_are_noops(self):
        assert faults.active() is None
        faults.checkpoint("adapter.cache.read", path="/nowhere")
        faults.mark_recovered("adapter.cache.read", path="/nowhere")

    def test_injecting_restores_previous_state(self):
        outer = FaultPlan(plan_id=1)
        inner = FaultPlan(plan_id=2)
        with faults.injecting(outer):
            with faults.injecting(inner):
                assert faults.active() is inner
            assert faults.active() is outer
        assert faults.active() is None

    def test_install_uninstall(self):
        plan = faults.install(FaultPlan(plan_id=9))
        assert faults.active() is plan
        assert faults.uninstall() is plan
        assert faults.active() is None


# ------------------------------------------------------------------ specs


class TestFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(point="unit.test", kind="gamma-ray")

    def test_rejects_kind_incompatible_with_cataloged_point(self):
        with pytest.raises(ValueError, match="supports kind"):
            FaultSpec(point="adapter.cache.read", kind="io")

    @pytest.mark.parametrize("field,value", [("at", 0), ("times", 0)])
    def test_rejects_non_positive_schedule(self, field, value):
        with pytest.raises(ValueError):
            FaultSpec(point="unit.test", kind="io", **{field: value})

    def test_window_semantics(self):
        """``at=2 times=2`` fails exactly the 2nd and 3rd visits."""
        plan = FaultPlan(specs=[FaultSpec("unit.test", "io", at=2, times=2)])
        with faults.injecting(plan):
            faults.checkpoint("unit.test")  # visit 1: clean
            with pytest.raises(InjectedFaultError):
                faults.checkpoint("unit.test")  # visit 2: fires
            with pytest.raises(InjectedFaultError):
                faults.checkpoint("unit.test")  # visit 3: fires
            faults.checkpoint("unit.test")  # visit 4: spent

    def test_key_restricts_matching(self):
        spec = FaultSpec("unit.test", "io", key="target")
        plan = FaultPlan(specs=[spec])
        with faults.injecting(plan):
            faults.checkpoint("unit.test", key="other")
            assert spec.seen == 0
            with pytest.raises(InjectedFaultError):
                faults.checkpoint("unit.test", key="target")
        assert spec.seen == 1 and spec.fired == 1

    def test_one_visit_fires_at_most_one_spec_but_counts_all(self):
        first = FaultSpec("unit.test", "io")
        second = FaultSpec("unit.test", "io")
        plan = FaultPlan(specs=[first, second])
        with faults.injecting(plan):
            with pytest.raises(InjectedFaultError):
                faults.checkpoint("unit.test")
        assert (first.fired, second.fired) == (1, 0)
        # The un-fired spec still saw the visit, so its own window
        # advances deterministically regardless of its neighbours.
        assert second.seen == 1

    def test_disarm_kills(self):
        keyed = FaultSpec("parallel.worker", "kill", key="cell-a")
        blanket = FaultSpec("parallel.worker", "kill")
        unrelated = FaultSpec("unit.test", "io")
        plan = FaultPlan(specs=[keyed, blanket, unrelated])
        disarmed = plan.disarm_kills({"cell-a"})
        assert disarmed == [keyed, blanket]
        assert keyed.disarmed and blanket.disarmed and not unrelated.disarmed
        assert plan.disarm_kills({"cell-a"}) == []  # already disarmed


class TestPlanGenerate:
    def test_same_id_and_seed_replays_identically(self):
        def shape(plan):
            return [(s.point, s.kind, s.at, s.times) for s in plan.specs]

        assert shape(FaultPlan.generate(3)) == shape(FaultPlan.generate(3))
        assert shape(FaultPlan.generate(3, seed=11)) == shape(
            FaultPlan.generate(3, seed=11)
        )

    def test_distinct_plan_ids_draw_distinct_schedules(self):
        shapes = {
            tuple((s.point, s.at, s.times) for s in FaultPlan.generate(i).specs)
            for i in range(6)
        }
        assert len(shapes) > 1

    def test_generated_specs_are_always_recoverable(self):
        for plan_id in range(8):
            for spec in FaultPlan.generate(plan_id).specs:
                assert spec.point in DEFAULT_CHAOS_POINTS
                assert spec.kind == CATALOG[spec.point]
                if spec.kind == "io":
                    # The retry policy always survives times < attempts.
                    assert spec.times < DEFAULT_ATTEMPTS

    def test_rejects_uncataloged_points(self):
        with pytest.raises(ValueError, match="not in faults.CATALOG"):
            FaultPlan.generate(0, points=("no.such.seam",))


# --------------------------------------------------------------- io_retry


class TestIoRetry:
    def test_recovers_with_deterministic_backoff(self):
        calls = {"n": 0}
        sleeps: list[float] = []

        def flaky():
            calls["n"] += 1
            if calls["n"] <= 2:
                raise InjectedFaultError("unit.test", 0)
            return "done"

        with telemetry.recording() as rec:
            result = io_retry(flaky, "unit.test", sleep=sleeps.append)
        assert result == "done"
        assert sleeps == [0.002, 0.004]
        assert counters(rec)["faults.recovered.io"] == 2
        assert counters(rec)["io.retries"] == 2
        assert "faults.fatal.io" not in counters(rec)

    def test_exhausted_attempts_raise_and_count_fatal(self):
        def doomed():
            raise InjectedFaultError("unit.test", 0)

        with telemetry.recording() as rec:
            with pytest.raises(InjectedFaultError):
                io_retry(doomed, "unit.test", sleep=lambda _: None)
        assert counters(rec)["faults.fatal.io"] == DEFAULT_ATTEMPTS
        assert "faults.recovered.io" not in counters(rec)

    def test_genuine_oserror_retries_without_fault_accounting(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError("disk hiccup")
            return 42

        with telemetry.recording() as rec:
            assert io_retry(flaky, "unit.test", sleep=lambda _: None) == 42
        assert counters(rec) == {"io.retries": 1}

    def test_non_oserror_propagates_immediately(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise TypeError("not serializable")

        with pytest.raises(TypeError):
            io_retry(broken, "unit.test", sleep=lambda _: None)
        assert calls["n"] == 1

    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError):
            io_retry(lambda: None, "unit.test", attempts=0)


# -------------------------------------------------- kill-mid-write seams

# Fail every attempt: an ``io`` spec with times >= DEFAULT_ATTEMPTS
# exhausts the retry loop, which is as close to a dying disk as a test
# gets — the seam must surface OSError, keep the old file, leak nothing.


def _exhausting(point: str) -> FaultPlan:
    return FaultPlan(specs=[FaultSpec(point, "io", times=DEFAULT_ATTEMPTS)])


class TestKillMidWrite:
    def test_runner_store_write(self, tmp_path, monkeypatch):
        from repro.experiments import ExperimentConfig, ExperimentRunner

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        runner = ExperimentRunner(ExperimentConfig(scale=0.02, max_models=2))
        record = {
            "system": "deepmatcher", "dataset": "S-BR",
            "f1": 50.0, "precision": 50.0, "recall": 50.0,
            "simulated_hours": 0.1, "wall_seconds": 0.2,
        }
        runner._store("good", record)
        with faults.injecting(_exhausting("runner.cache.store.replace")):
            with telemetry.recording() as rec:
                with pytest.raises(InjectedFaultError):
                    runner._store("good", dict(record, f1=0.0))
        assert list(tmp_path.rglob("*.tmp")) == []
        # The rename never happened: the old record survives on disk.
        fresh = ExperimentRunner(ExperimentConfig(scale=0.02, max_models=2))
        assert fresh._cached("good")["f1"] == 50.0
        assert counters(rec)["faults.injected.io"] == DEFAULT_ATTEMPTS
        assert counters(rec)["faults.fatal.io"] == DEFAULT_ATTEMPTS

    def test_adapter_store_write(self, tmp_path, monkeypatch):
        from repro.adapter import EMAdapter, clear_adapter_cache
        from tests.test_adapter import make_dataset

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_adapter_cache()
        adapter = EMAdapter("attr", "dbert", "mean")
        with faults.injecting(_exhausting("adapter.cache.store.write")):
            with pytest.raises(InjectedFaultError):
                adapter.transform(make_dataset())
        clear_adapter_cache()
        assert list(tmp_path.rglob("*.tmp")) == []
        assert list((tmp_path / "adapter").glob("*.npy")) == []

    def test_persistence_save_replace(self, tmp_path):
        from repro.persistence import load_model, save_model

        path = tmp_path / "model.pkl"
        save_model({"weights": [1, 2, 3]}, path)
        with faults.injecting(_exhausting("persistence.save.replace")):
            with pytest.raises(InjectedFaultError):
                save_model({"weights": [9]}, path)
        assert list(tmp_path.glob("*.tmp")) == []
        assert load_model(path) == {"weights": [1, 2, 3]}

    def test_analysis_cache_save_is_best_effort(self, tmp_path):
        from repro.analysis.cache import AnalysisCache

        target = tmp_path / "some_module.py"
        target.write_text("x = 1\n")
        cache = AnalysisCache(tmp_path / "cache")
        cache.store(target, "some_module.py", summary={"imports": []})
        with faults.injecting(_exhausting("analysis.cache.store.write")):
            with telemetry.recording() as rec:
                cache.save()  # must swallow: caching never fails a lint
        assert cache.dirty  # nothing was persisted
        assert list(tmp_path.rglob("*.tmp")) == []
        assert counters(rec)["faults.fatal.io"] == DEFAULT_ATTEMPTS
        cache.save()  # healthy disk: now it lands
        assert not cache.dirty
        assert list(tmp_path.rglob("*.tmp")) == []


# ------------------------------------------------- corrupt-read recovery


class TestCorruptRecovery:
    def test_adapter_recomputes_and_repairs(self, tmp_path, monkeypatch):
        from repro.adapter import EMAdapter, clear_adapter_cache
        from tests.test_adapter import make_dataset

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_adapter_cache()
        dataset = make_dataset()
        adapter = EMAdapter("attr", "dbert", "mean")
        original = adapter.transform(dataset)
        clear_adapter_cache()  # force the next transform through disk

        plan = FaultPlan(specs=[FaultSpec("adapter.cache.read", "corrupt")])
        with faults.injecting(plan):
            with telemetry.recording() as rec:
                recovered = adapter.transform(dataset)
        clear_adapter_cache()

        np.testing.assert_array_equal(recovered, original)
        seen = counters(rec)
        assert seen["adapter.cache.disk.corrupt"] == 1
        assert seen["faults.injected.corrupt"] == 1
        assert seen["faults.recovered.corrupt"] == 1
        assert plan.unresolved == []
        # The repair overwrote the garbled entry with a healthy one.
        (entry,) = (tmp_path / "adapter").glob("*.npy")
        np.testing.assert_array_equal(np.load(entry), original)

    def test_adapter_survives_zero_byte_entry(self, tmp_path, monkeypatch):
        """Regression: ``np.load`` raises EOFError (not ValueError) for
        an empty file — the catch must include it."""
        from repro.adapter import EMAdapter, clear_adapter_cache
        from tests.test_adapter import make_dataset

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_adapter_cache()
        dataset = make_dataset()
        adapter = EMAdapter("attr", "dbert", "mean")
        original = adapter.transform(dataset)
        (entry,) = (tmp_path / "adapter").glob("*.npy")
        entry.write_bytes(b"")
        with pytest.raises(EOFError):
            np.load(entry)  # proves the failure mode is real
        clear_adapter_cache()
        np.testing.assert_array_equal(adapter.transform(dataset), original)
        clear_adapter_cache()

    def test_runner_survives_binary_garbage(self, tmp_path, monkeypatch):
        """Regression: binary garbage in a JSON cache entry raises
        UnicodeDecodeError (a ValueError that is *not* JSONDecodeError);
        the runner must treat it as corruption, not crash."""
        from repro.experiments import ExperimentConfig, ExperimentRunner

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        (tmp_path / "key.json").write_bytes(CORRUPT_PAYLOAD)
        runner = ExperimentRunner(ExperimentConfig(scale=0.02, max_models=2))
        with telemetry.recording() as rec:
            assert runner._cached("key") is None
        assert counters(rec)["runner.cache.disk.corrupt"] == 1
        assert not (tmp_path / "key.json").exists()  # bad entry dropped

    def test_runner_injected_corruption_settles(self, tmp_path, monkeypatch):
        from repro.experiments import ExperimentConfig, ExperimentRunner

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        config = ExperimentConfig(scale=0.02, max_models=2)
        record = {
            "system": "deepmatcher", "dataset": "S-BR",
            "f1": 50.0, "precision": 50.0, "recall": 50.0,
            "simulated_hours": 0.1, "wall_seconds": 0.2,
        }
        ExperimentRunner(config)._store("key", record)
        plan = FaultPlan(specs=[FaultSpec("runner.cache.read", "corrupt")])
        with faults.injecting(plan):
            with telemetry.recording() as rec:
                assert ExperimentRunner(config)._cached("key") is None
        seen = counters(rec)
        assert seen["faults.injected.corrupt"] == 1
        assert seen["faults.recovered.corrupt"] == 1
        assert plan.unresolved == []

    def test_analysis_cache_degrades_to_cold_run(self, tmp_path):
        from repro.analysis.cache import AnalysisCache

        target = tmp_path / "some_module.py"
        target.write_text("x = 1\n")
        directory = tmp_path / "cache"
        warm = AnalysisCache(directory)
        warm.store(target, "some_module.py", summary={"imports": []})
        warm.save()

        plan = FaultPlan(specs=[FaultSpec("analysis.cache.read", "corrupt")])
        with faults.injecting(plan):
            with telemetry.recording() as rec:
                cold = AnalysisCache(directory)
                assert cold.lookup(target, "some_module.py") is None
        seen = counters(rec)
        assert seen["faults.injected.corrupt"] == 1
        assert seen["faults.recovered.corrupt"] == 1
        assert plan.unresolved == []


# --------------------------------------------- budget + estimator faults


class TestAutoMLFaults:
    def test_injected_budget_exhaustion_degrades_gracefully(
        self, linear_problem
    ):
        from repro.automl import AutoSklearnLike

        X, y, X_test, y_test = linear_problem
        plan = FaultPlan(specs=[FaultSpec("automl.budget", "budget", at=3)])
        with faults.injecting(plan):
            with telemetry.recording() as rec:
                system = AutoSklearnLike(
                    budget_hours=1.0, seed=0, max_models=6
                ).fit(X, y, X_test, y_test)
        assert system.report_.n_evaluated >= 1  # fit survived the fault
        seen = counters(rec)
        assert seen["faults.injected.budget"] == 1
        assert seen["faults.recovered.budget"] == 1
        assert plan.unresolved == []

    def test_search_stop_leaves_a_trace_event(self, linear_problem):
        """The old silent ``pass`` on BudgetExhaustedError now records
        why the search stopped."""
        from repro.automl import AutoSklearnLike

        X, y, X_test, y_test = linear_problem
        with telemetry.recording() as rec:
            AutoSklearnLike(budget_hours=1.0, seed=0, max_models=2).fit(
                X, y, X_test, y_test
            )
        stops = [e for e in rec.events if e.name == "automl.search.stopped"]
        assert len(stops) == 1
        assert "max_models" in stops[0].attributes["reason"]

    def test_estimator_failure_is_recorded_and_skipped(self, linear_problem):
        from repro.automl import AutoSklearnLike, SimulatedClock, TimeBudget

        X, y, X_test, y_test = linear_problem

        class ExplodingConfig:
            family = "logreg"

            def complexity(self) -> float:
                return 1.0

            def build(self, seed: int):
                raise np.linalg.LinAlgError("singular matrix")

            def __str__(self) -> str:
                return "exploding(logreg)"

        system = AutoSklearnLike(budget_hours=1.0, seed=0, max_models=6)
        system._leaderboard = []
        system._rng = np.random.default_rng(0)
        clock = SimulatedClock(TimeBudget(1.0))
        with telemetry.recording() as rec:
            entry = system._evaluate(
                ExplodingConfig(), X, y, X_test, y_test, clock
            )
        assert entry is None
        assert counters(rec)["automl.trials.failed"] == 1
        (trial,) = rec.trials
        assert not trial.accepted
        assert trial.reason == "estimator-failure:LinAlgError"
        assert clock.elapsed_hours > 0  # the charged budget stays spent

    def test_unexpected_estimator_exception_propagates(self, linear_problem):
        """Only :data:`ESTIMATOR_FAILURES` are tolerated — a bug in the
        search must not be swallowed as a rejected trial."""
        from repro.automl import AutoSklearnLike, SimulatedClock, TimeBudget

        X, y, X_test, y_test = linear_problem

        class BuggyConfig:
            family = "logreg"

            def complexity(self) -> float:
                return 1.0

            def build(self, seed: int):
                raise AttributeError("a genuine bug")

            def __str__(self) -> str:
                return "buggy(logreg)"

        system = AutoSklearnLike(budget_hours=1.0, seed=0, max_models=6)
        system._leaderboard = []
        system._rng = np.random.default_rng(0)
        with pytest.raises(AttributeError):
            system._evaluate(
                BuggyConfig(), X, y, X_test, y_test,
                SimulatedClock(TimeBudget(1.0)),
            )


# ------------------------------------------------------------ chaos drill


class TestChaosHarness:
    def test_report_rendering_and_verdicts(self):
        from repro.parallel import ChaosReport, PlanOutcome

        good = PlanOutcome(
            plan_id=0, n_specs=2, identical=True, orphans=[],
            injected={"io": 2}, recovered={"io": 2}, fatal={},
            unresolved=[],
        )
        bad = PlanOutcome(
            plan_id=1, n_specs=1, identical=False, orphans=["x.tmp"],
            injected={"corrupt": 1}, recovered={}, fatal={},
            unresolved=[("adapter.cache.read", "p")],
        )
        assert good.ok and good.balanced
        assert not bad.ok and not bad.balanced
        report = ChaosReport(
            table=2, datasets=("S-BR",), jobs=1, reference="ref",
            outcomes=[good, bad],
        )
        assert not report.ok
        text = report.render()
        assert "plan 0" in text and "-> OK" in text
        assert "OUTPUT DIFFERS" in text and "-> FAIL" in text
        assert "chaos verdict: FAIL (1/2 plans clean)" in text

    def test_run_chaos_end_to_end(self, monkeypatch):
        """The acceptance bar: every seeded plan's output is
        byte-identical to the fault-free run, with clean accounting and
        zero orphaned temp files."""
        from repro.experiments import ExperimentConfig
        from repro.parallel import run_chaos

        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        report = run_chaos(
            table=2,
            config=ExperimentConfig(scale=0.02, max_models=2),
            datasets=("S-BR",),
            plans=1,
            jobs=1,
        )
        assert report.ok, report.render()
        (outcome,) = report.outcomes
        assert outcome.identical
        assert outcome.orphans == []
        assert outcome.balanced
        assert outcome.unresolved == []
        assert sum(outcome.injected.values()) >= 1  # the plan really bit
        assert report.trace is not None  # --trace-file payload exists
        assert "chaos verdict: PASS" in report.render()

    def test_run_chaos_rejects_zero_plans(self):
        from repro.parallel import run_chaos

        with pytest.raises(ValueError):
            run_chaos(plans=0)


# ------------------------------------------------ entity-store seams


class TestEntityStoreSeams:
    """Chaos coverage for the entity-embedding store's three seams
    (``adapter.entity.store.write``/``.replace``/``adapter.entity.read``),
    mirroring the pair-cache drills above."""

    def test_transient_write_fault_recovers(self, tmp_path, monkeypatch):
        from repro.adapter import clear_entity_store, entity_store

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_entity_store()
        plan = FaultPlan(
            specs=[FaultSpec("adapter.entity.store.replace", "io", times=1)]
        )
        with faults.injecting(plan):
            with telemetry.recording() as rec:
                entity_store().save(7, {"vector": np.ones(4)})
        clear_entity_store()
        seen = counters(rec)
        assert seen["faults.injected.io"] == 1
        assert seen["faults.recovered.io"] == 1
        assert plan.unresolved == []
        assert list(tmp_path.rglob("*.tmp")) == []
        loaded = entity_store().load(7)  # replayed from the disk tier
        assert loaded is not None and np.array_equal(loaded["vector"], np.ones(4))
        clear_entity_store()

    def test_exhausted_write_raises_and_leaks_nothing(
        self, tmp_path, monkeypatch
    ):
        from repro.adapter import clear_entity_store, entity_store

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_entity_store()
        with faults.injecting(_exhausting("adapter.entity.store.write")):
            with pytest.raises(InjectedFaultError):
                entity_store().save(7, {"vector": np.ones(4)})
        clear_entity_store()
        assert list(tmp_path.rglob("*.tmp")) == []
        assert list((tmp_path / "entity").glob("*.npz")) == []

    def test_injected_corruption_settles(self, tmp_path, monkeypatch):
        from repro.adapter import (
            EMAdapter,
            clear_adapter_cache,
            clear_entity_store,
        )
        from tests.test_adapter import make_dataset

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_adapter_cache()
        clear_entity_store()
        dataset = make_dataset()
        adapter = EMAdapter(
            "attr", "dbert", "mean", cache=False, entity_cache=True
        )
        original = adapter.transform(dataset)
        clear_entity_store()  # the next transform replays the disk tier

        plan = FaultPlan(specs=[FaultSpec("adapter.entity.read", "corrupt")])
        with faults.injecting(plan):
            with telemetry.recording() as rec:
                recovered = adapter.transform(dataset)
        clear_entity_store()

        np.testing.assert_array_equal(recovered, original)
        seen = counters(rec)
        assert seen["adapter.entity_cache.disk.corrupt"] == 1
        assert seen["faults.injected.corrupt"] == 1
        assert seen["faults.recovered.corrupt"] == 1
        assert plan.unresolved == []
