"""Tests for classification metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.metrics import (
    accuracy_score,
    best_f1_threshold,
    confusion_matrix,
    f1_score,
    log_loss,
    precision_recall_curve,
    precision_score,
    recall_score,
    roc_auc_score,
)


class TestBasicMetrics:
    def test_perfect_predictions(self):
        y = np.array([0, 1, 1, 0])
        assert accuracy_score(y, y) == 1.0
        assert f1_score(y, y) == 1.0
        assert precision_score(y, y) == 1.0
        assert recall_score(y, y) == 1.0

    def test_all_wrong(self):
        y = np.array([0, 1])
        pred = np.array([1, 0])
        assert accuracy_score(y, pred) == 0.0
        assert f1_score(y, pred) == 0.0

    def test_confusion_layout(self):
        y = np.array([0, 0, 1, 1])
        pred = np.array([0, 1, 0, 1])
        matrix = confusion_matrix(y, pred)
        np.testing.assert_array_equal(matrix, [[1, 1], [1, 1]])

    def test_precision_zero_when_no_positives_predicted(self):
        assert precision_score([1, 1], [0, 0]) == 0.0

    def test_recall_zero_when_no_positives_exist(self):
        assert recall_score([0, 0], [1, 1]) == 0.0

    def test_known_f1(self):
        y = np.array([1, 1, 1, 0, 0])
        pred = np.array([1, 1, 0, 1, 0])
        # precision 2/3, recall 2/3 -> f1 2/3.
        assert f1_score(y, pred) == pytest.approx(2 / 3)

    def test_rejects_nonbinary(self):
        with pytest.raises(ValueError):
            f1_score([0, 2], [0, 1])

    def test_empty_accuracy(self):
        assert accuracy_score([], []) == 0.0

    @given(
        st.lists(st.integers(0, 1), min_size=2, max_size=30),
        st.lists(st.integers(0, 1), min_size=2, max_size=30),
    )
    @settings(max_examples=50)
    def test_f1_harmonic_mean_identity(self, y, pred):
        n = min(len(y), len(pred))
        y_arr = np.array(y[:n])
        p_arr = np.array(pred[:n])
        p = precision_score(y_arr, p_arr)
        r = recall_score(y_arr, p_arr)
        expected = 0.0 if p + r == 0 else 2 * p * r / (p + r)
        assert f1_score(y_arr, p_arr) == pytest.approx(expected)


class TestProbabilisticMetrics:
    def test_log_loss_perfect(self):
        y = np.array([0, 1])
        assert log_loss(y, np.array([0.0, 1.0])) < 1e-9

    def test_log_loss_accepts_two_columns(self):
        y = np.array([0, 1])
        proba = np.array([[0.9, 0.1], [0.2, 0.8]])
        single = log_loss(y, proba[:, 1])
        assert log_loss(y, proba) == pytest.approx(single)

    def test_auc_perfect_ranking(self):
        y = np.array([0, 0, 1, 1])
        assert roc_auc_score(y, np.array([0.1, 0.2, 0.8, 0.9])) == 1.0

    def test_auc_inverted_ranking(self):
        y = np.array([0, 0, 1, 1])
        assert roc_auc_score(y, np.array([0.9, 0.8, 0.2, 0.1])) == 0.0

    def test_auc_random_is_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, size=2000)
        scores = rng.random(2000)
        assert roc_auc_score(y, scores) == pytest.approx(0.5, abs=0.05)

    def test_auc_degenerate_classes(self):
        assert roc_auc_score([1, 1], [0.1, 0.9]) == 0.5

    def test_auc_handles_ties(self):
        y = np.array([0, 1, 0, 1])
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        assert roc_auc_score(y, scores) == pytest.approx(0.5)


class TestThresholding:
    def test_curve_monotone_recall(self):
        y = np.array([0, 1, 0, 1, 1])
        proba = np.array([0.1, 0.9, 0.4, 0.6, 0.3])
        _p, recalls, _t = precision_recall_curve(y, proba)
        assert (np.diff(recalls) >= -1e-12).all()

    def test_curve_matches_per_threshold_loop(self):
        """The fancy-indexed curve must stay bit-identical to walking
        the distinct thresholds one by one (the pre-vectorization
        reference), ties included."""
        rng = np.random.default_rng(3)
        y = rng.integers(0, 2, size=60)
        proba = np.round(rng.random(60), 1)  # coarse grid forces ties
        precisions, recalls, thresholds = precision_recall_curve(y, proba)

        order = np.argsort(-proba, kind="mergesort")
        sorted_true = np.asarray(y)[order]
        sorted_scores = np.asarray(proba, dtype=np.float64)[order]
        distinct = np.flatnonzero(np.diff(sorted_scores)).tolist() + [59]
        tp_cum = np.cumsum(sorted_true)
        n_pos = max(1, int(y.sum()))
        ref_p, ref_r, ref_t = [], [], []
        for idx in distinct:
            tp = float(tp_cum[idx])
            ref_p.append(tp / (idx + 1))
            ref_r.append(tp / n_pos)
            ref_t.append(float(sorted_scores[idx]))
        assert np.array_equal(precisions, np.array(ref_p))
        assert np.array_equal(recalls, np.array(ref_r))
        assert np.array_equal(thresholds, np.array(ref_t))

    def test_best_threshold_beats_default(self):
        # Heavily imbalanced scores where 0.5 is a bad cut.
        y = np.array([0] * 90 + [1] * 10)
        proba = np.concatenate([np.linspace(0, 0.30, 90),
                                np.linspace(0.31, 0.45, 10)])
        threshold, best = best_f1_threshold(y, proba)
        default = f1_score(y, (proba >= 0.5).astype(int))
        assert best > default
        realized = f1_score(y, (proba >= threshold).astype(int))
        assert realized == pytest.approx(best)

    @given(st.integers(1, 500))
    @settings(max_examples=25)
    def test_best_threshold_realizable(self, seed):
        rng = np.random.default_rng(seed)
        y = rng.integers(0, 2, size=40)
        if y.sum() == 0 or y.sum() == 40:
            y[0] = 1 - y[0]
        proba = rng.random(40)
        threshold, best = best_f1_threshold(y, proba)
        assert f1_score(y, (proba >= threshold).astype(int)) == pytest.approx(
            best
        )
