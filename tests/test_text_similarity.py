"""Unit and property tests for the string-similarity library."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.similarity import (
    cosine_similarity,
    dice,
    jaccard,
    jaro,
    jaro_winkler,
    levenshtein,
    levenshtein_ratio,
    monge_elkan,
    ngrams,
    overlap_coefficient,
    token_sort_ratio,
)

short_text = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122), max_size=12
)


class TestLevenshtein:
    def test_identity(self):
        assert levenshtein("kitten", "kitten") == 0

    def test_classic_example(self):
        assert levenshtein("kitten", "sitting") == 3

    def test_empty_left(self):
        assert levenshtein("", "abc") == 3

    def test_empty_right(self):
        assert levenshtein("abc", "") == 3

    def test_single_substitution(self):
        assert levenshtein("cat", "car") == 1

    def test_ratio_bounds(self):
        assert levenshtein_ratio("abc", "abc") == 1.0
        assert levenshtein_ratio("abc", "xyz") == 0.0

    def test_ratio_empty_both(self):
        assert levenshtein_ratio("", "") == 1.0

    @given(short_text, short_text)
    @settings(max_examples=60)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(short_text, short_text, short_text)
    @settings(max_examples=40)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(short_text, short_text)
    @settings(max_examples=60)
    def test_bounded_by_longer_string(self, a, b):
        assert levenshtein(a, b) <= max(len(a), len(b))


class TestJaro:
    def test_identity(self):
        assert jaro("martha", "martha") == 1.0

    def test_known_value(self):
        assert jaro("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)

    def test_disjoint(self):
        assert jaro("abc", "xyz") == 0.0

    def test_empty(self):
        assert jaro("", "abc") == 0.0

    def test_winkler_prefix_boost(self):
        assert jaro_winkler("prefixes", "prefixed") >= jaro(
            "prefixes", "prefixed"
        )

    @given(short_text, short_text)
    @settings(max_examples=60)
    def test_range(self, a, b):
        assert 0.0 <= jaro_winkler(a, b) <= 1.0 + 1e-12


class TestTokenSets:
    def test_jaccard_identity(self):
        assert jaccard({"a", "b"}, {"a", "b"}) == 1.0

    def test_jaccard_disjoint(self):
        assert jaccard({"a"}, {"b"}) == 0.0

    def test_jaccard_partial(self):
        assert jaccard({"a", "b"}, {"b", "c"}) == pytest.approx(1 / 3)

    def test_jaccard_both_empty(self):
        assert jaccard(set(), set()) == 1.0

    def test_overlap_subset_is_one(self):
        assert overlap_coefficient({"a"}, {"a", "b", "c"}) == 1.0

    def test_dice_partial(self):
        assert dice({"a", "b"}, {"b", "c"}) == pytest.approx(0.5)

    @given(
        st.sets(short_text, max_size=6), st.sets(short_text, max_size=6)
    )
    @settings(max_examples=60)
    def test_jaccard_symmetric_and_bounded(self, a, b):
        assert jaccard(a, b) == jaccard(b, a)
        assert 0.0 <= jaccard(a, b) <= 1.0


class TestVectorAndCompound:
    def test_cosine_identical(self):
        v = np.array([1.0, 2.0, 3.0])
        assert cosine_similarity(v, v) == pytest.approx(1.0)

    def test_cosine_orthogonal(self):
        assert cosine_similarity(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 0.0

    def test_cosine_zero_vector(self):
        assert cosine_similarity(np.zeros(3), np.ones(3)) == 0.0

    def test_monge_elkan_identity(self):
        assert monge_elkan(["data", "base"], ["data", "base"]) == pytest.approx(1.0)

    def test_monge_elkan_empty(self):
        assert monge_elkan([], []) == 1.0
        assert monge_elkan(["a"], []) == 0.0

    def test_token_sort_handles_reordering(self):
        assert token_sort_ratio("new york pizza", "pizza new york") == 1.0

    def test_ngrams_padding(self):
        grams = ngrams("ab", 3)
        assert grams[0] == "##a"
        assert grams[-1] == "b##"

    def test_ngrams_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ngrams("abc", 0)

    @given(short_text)
    @settings(max_examples=40)
    def test_ngrams_count(self, text):
        n = 3
        grams = ngrams(text, n)
        assert len(grams) == len(text) + n - 1
