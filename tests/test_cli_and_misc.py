"""CLI coverage beyond the happy path, plus top-level package surface."""

from __future__ import annotations

import pytest

import repro
from repro.cli import main as cli_main


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_headline_exports(self):
        assert hasattr(repro, "EMPipeline")
        assert hasattr(repro, "EMAdapter")
        assert hasattr(repro, "DeepMatcherHybrid")
        assert len(repro.DATASET_NAMES) == 12

    def test_all_matches_attributes(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name


class TestCliEdgeCases:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            cli_main([])

    def test_table_requires_valid_number(self):
        with pytest.raises(SystemExit):
            cli_main(["table", "7"])

    def test_match_requires_known_dataset(self):
        with pytest.raises(SystemExit):
            cli_main(["match", "--dataset", "bogus"])

    def test_scale_flag_flows_to_table1(self, capsys):
        assert cli_main(["table", "1", "--scale", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "Magellan" in out

    def test_dataset_subset_parsing(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_MAX_MODELS", "2")
        monkeypatch.setenv("REPRO_SCALE", "0.02")
        assert cli_main(["table", "2", "--datasets", "S-BR"]) == 0
        out = capsys.readouterr().out
        assert "S-BR" in out and "S-DG" not in out
