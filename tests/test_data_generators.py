"""Tests for the perturbation engine and the six domain generators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.generators import (
    BeerGenerator,
    BibliographicGenerator,
    MusicGenerator,
    PerturbationConfig,
    Perturber,
    RestaurantGenerator,
    RetailProductGenerator,
    SoftwareProductGenerator,
    TextualProductGenerator,
    generate_pairs,
)
from repro.exceptions import DataError
from repro.text.similarity import jaccard

ALL_GENERATORS = [
    BibliographicGenerator(venue_mismatch=True),
    BibliographicGenerator(venue_mismatch=False),
    SoftwareProductGenerator(),
    RetailProductGenerator(),
    RestaurantGenerator(),
    MusicGenerator(),
    BeerGenerator(),
    TextualProductGenerator(),
]


class TestPerturber:
    def test_zero_config_is_identity_for_text(self):
        cfg = PerturbationConfig().scaled(0.0)
        perturber = Perturber(cfg, np.random.default_rng(0))
        assert perturber.perturb_text("hello wonderful world") == (
            "hello wonderful world"
        )

    def test_scaled_clamps_to_one(self):
        cfg = PerturbationConfig(typo_rate=0.5).scaled(10)
        assert cfg.typo_rate == 1.0

    def test_missing_rate_one_blanks_value(self):
        cfg = PerturbationConfig(missing_rate=1.0)
        perturber = Perturber(cfg, np.random.default_rng(0))
        assert perturber.perturb_text("anything") == ""

    def test_never_produces_empty_from_nonempty_without_missing(self):
        cfg = PerturbationConfig(
            typo_rate=0.5, token_drop_rate=0.9, missing_rate=0.0
        )
        rng = np.random.default_rng(1)
        perturber = Perturber(cfg, rng)
        for _ in range(50):
            assert perturber.perturb_text("alpha beta gamma") != ""

    def test_numeric_jitter_and_missing(self):
        cfg = PerturbationConfig(numeric_jitter=0.5, numeric_missing_rate=0.0)
        rng = np.random.default_rng(2)
        perturber = Perturber(cfg, rng)
        values = [perturber.perturb_numeric(100.0) for _ in range(50)]
        assert all(v is not None for v in values)
        assert any(v != 100.0 for v in values)

    def test_numeric_none_passthrough(self):
        perturber = Perturber(PerturbationConfig(), np.random.default_rng(0))
        assert perturber.perturb_numeric(None) is None

    @given(st.integers(0, 10_000))
    @settings(max_examples=30)
    def test_typos_preserve_nonemptiness(self, seed):
        cfg = PerturbationConfig(typo_rate=1.0, missing_rate=0.0)
        perturber = Perturber(cfg, np.random.default_rng(seed))
        assert len(perturber.perturb_text("product")) > 0


@pytest.mark.parametrize("generator", ALL_GENERATORS, ids=lambda g: type(g).__name__)
class TestDomainGenerators:
    def test_entities_match_schema(self, generator):
        rng = np.random.default_rng(0)
        for _ in range(5):
            entity = generator.sample_entity(rng)
            left, right = generator.render_pair(entity, rng)
            generator.schema.validate_entity(left)
            generator.schema.validate_entity(right)

    def test_siblings_differ_but_overlap(self, generator):
        rng = np.random.default_rng(1)
        overlaps, identities = [], 0
        for _ in range(30):
            entity = generator.sample_entity(rng)
            sibling = generator.make_sibling(entity, rng)
            text_e = " ".join(str(v) for v in entity.values())
            text_s = " ".join(str(v) for v in sibling.values())
            if text_e == text_s:
                identities += 1
            overlaps.append(jaccard(text_e.split(), text_s.split()))
        assert identities <= 2  # Siblings are (nearly) always different.
        assert np.mean(overlaps) > 0.15  # But share surface tokens.

    def test_match_pairs_more_similar_than_siblings(self, generator):
        rng = np.random.default_rng(2)
        match_sims, sibling_sims = [], []
        for _ in range(40):
            entity = generator.sample_entity(rng)
            left, right = generator.render_pair(entity, rng)
            match_sims.append(
                jaccard(
                    " ".join(str(v) for v in left.values()).split(),
                    " ".join(str(v) for v in right.values()).split(),
                )
            )
            sibling = generator.make_sibling(entity, rng)
            left2, _ = generator.render_pair(entity, rng)
            _, right2 = generator.render_pair(sibling, rng)
            sibling_sims.append(
                jaccard(
                    " ".join(str(v) for v in left2.values()).split(),
                    " ".join(str(v) for v in right2.values()).split(),
                )
            )
        assert np.mean(match_sims) > np.mean(sibling_sims)


class TestGeneratePairs:
    def test_size_and_match_fraction(self):
        dataset = generate_pairs(
            BeerGenerator(), 300, 0.2, np.random.default_rng(0)
        )
        assert len(dataset) == 300
        assert dataset.match_fraction == pytest.approx(0.2, abs=0.01)

    def test_rejects_bad_size(self):
        with pytest.raises(DataError):
            generate_pairs(BeerGenerator(), 0, 0.2, np.random.default_rng(0))

    def test_rejects_bad_fraction(self):
        with pytest.raises(DataError):
            generate_pairs(BeerGenerator(), 10, 1.5, np.random.default_rng(0))

    def test_pair_ids_sequential(self):
        dataset = generate_pairs(
            BeerGenerator(), 50, 0.2, np.random.default_rng(0)
        )
        assert [p.pair_id for p in dataset] == list(range(50))

    def test_labels_shuffled(self):
        dataset = generate_pairs(
            BeerGenerator(), 200, 0.3, np.random.default_rng(0)
        )
        labels = dataset.labels
        # Matches must not be all at the front.
        assert labels[: int(200 * 0.3)].sum() < int(200 * 0.3)

    def test_deterministic_given_rng_seed(self):
        a = generate_pairs(BeerGenerator(), 40, 0.25, np.random.default_rng(9))
        b = generate_pairs(BeerGenerator(), 40, 0.25, np.random.default_rng(9))
        assert [p.left for p in a] == [p.left for p in b]
        assert (a.labels == b.labels).all()

    def test_hard_negative_fraction_extremes(self):
        easy = generate_pairs(
            RetailProductGenerator(), 150, 0.2, np.random.default_rng(3),
            hard_negative_fraction=0.0,
        )
        hard = generate_pairs(
            RetailProductGenerator(), 150, 0.2, np.random.default_rng(3),
            hard_negative_fraction=1.0,
        )

        def negative_similarity(dataset):
            sims = [
                jaccard(
                    str(p.left["title"]).split(), str(p.right["title"]).split()
                )
                for p in dataset
                if p.label == 0
            ]
            return np.mean(sims)

        assert negative_similarity(hard) > negative_similarity(easy)
