"""Cross-cutting property-based tests on core invariants.

Complements the per-module suites with hypothesis-driven checks on the
seams between subsystems: deterministic seeding, binning monotonicity,
metric consistency between implementations, and adapter-cache identity.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import rng_for, stable_hash
from repro.data.generators.base import sample_words
from repro.data.generators import wordlists
from repro.ml._binning import BinMapper
from repro.ml.ensemble import caruana_selection
from repro.ml.metrics import f1_score, roc_auc_score


class TestSeeding:
    @given(st.text(max_size=20), st.integers(0, 10))
    @settings(max_examples=40)
    def test_stable_hash_is_stable(self, text, number):
        assert stable_hash(text, number) == stable_hash(text, number)

    @given(st.text(max_size=20))
    @settings(max_examples=40)
    def test_rng_for_reproducible(self, scope):
        a = rng_for("test", scope).random(4)
        b = rng_for("test", scope).random(4)
        np.testing.assert_array_equal(a, b)

    def test_different_scopes_differ(self):
        a = rng_for("alpha").random(8)
        b = rng_for("beta").random(8)
        assert not np.allclose(a, b)


class TestBinning:
    @given(st.integers(0, 1000), st.integers(10, 200))
    @settings(max_examples=30, deadline=None)
    def test_binning_is_monotone(self, seed, n):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, 1))
        mapper = BinMapper(n_bins=16).fit(X)
        binned = mapper.transform(X)[:, 0].astype(int)
        order = np.argsort(X[:, 0])
        assert (np.diff(binned[order]) >= 0).all()

    def test_nan_goes_to_bin_zero(self):
        X = np.array([[1.0], [np.nan], [2.0]])
        mapper = BinMapper(n_bins=8).fit(X)
        assert mapper.transform(X)[1, 0] == 0

    def test_finite_values_avoid_missing_bin(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 3))
        binned = BinMapper(n_bins=32).fit_transform(X)
        assert (binned >= 1).all()

    def test_bins_within_budget(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(500, 2))
        mapper = BinMapper(n_bins=16)
        binned = mapper.fit_transform(X)
        assert binned.max() < 16

    def test_constant_column(self):
        X = np.full((50, 1), 3.14)
        binned = BinMapper(n_bins=8).fit_transform(X)
        assert (binned == 1).all()

    def test_rejects_extreme_bins(self):
        with pytest.raises(ValueError):
            BinMapper(n_bins=2)
        with pytest.raises(ValueError):
            BinMapper(n_bins=1000)


class TestMetricProperties:
    @given(st.integers(0, 10_000))
    @settings(max_examples=40)
    def test_f1_invariant_under_permutation(self, seed):
        rng = np.random.default_rng(seed)
        y = rng.integers(0, 2, 30)
        pred = rng.integers(0, 2, 30)
        perm = rng.permutation(30)
        assert f1_score(y, pred) == pytest.approx(f1_score(y[perm], pred[perm]))

    @given(st.integers(0, 10_000))
    @settings(max_examples=40)
    def test_auc_complement_symmetry(self, seed):
        rng = np.random.default_rng(seed)
        y = rng.integers(0, 2, 30)
        scores = rng.random(30)
        if 0 < y.sum() < 30:
            assert roc_auc_score(y, scores) == pytest.approx(
                1.0 - roc_auc_score(y, 1.0 - scores), abs=1e-9
            )

    @given(st.integers(0, 10_000), st.integers(2, 6))
    @settings(max_examples=25, deadline=None)
    def test_caruana_first_round_picks_best_model(self, seed, n_models):
        """With one round, greedy selection equals argmax single-model F1.

        (The final multi-round blend can legitimately score below a
        single model — greedy-with-replacement only maximizes stepwise —
        so the guaranteed invariant is about round one.)
        """
        rng = np.random.default_rng(seed)
        y = rng.integers(0, 2, 40)
        if y.sum() in (0, 40):
            y[0] = 1 - y[0]
        matrix = rng.random((40, n_models))
        weights = caruana_selection(matrix, y, n_rounds=1)
        chosen = int(np.argmax(weights))
        best_f1 = max(
            f1_score(y, (matrix[:, m] >= 0.5).astype(int))
            for m in range(n_models)
        )
        chosen_f1 = f1_score(y, (matrix[:, chosen] >= 0.5).astype(int))
        assert chosen_f1 == pytest.approx(best_f1)


class TestWordSampling:
    @given(st.integers(0, 5000), st.integers(1, 10))
    @settings(max_examples=30)
    def test_sample_words_distinct(self, seed, count):
        rng = np.random.default_rng(seed)
        words = sample_words(wordlists.CS_TITLE_WORDS, count, rng)
        assert len(words) == min(count, len(wordlists.CS_TITLE_WORDS))
        assert len(set(words)) == len(words)

    def test_sample_words_zero(self):
        assert sample_words(wordlists.CS_TITLE_WORDS, 0,
                            np.random.default_rng(0)) == []


class TestAdapterDeterminism:
    def test_same_dataset_same_features(self, tiny_sda):
        from repro.adapter import EMAdapter

        a = EMAdapter("attr", "dbert", cache=False).transform(tiny_sda)
        b = EMAdapter("attr", "dbert", cache=False).transform(tiny_sda)
        np.testing.assert_allclose(a, b)

    def test_split_transform_consistent_with_full(self, tiny_sda):
        """Transforming a subset matches the corresponding full-set rows."""
        from repro.adapter import EMAdapter

        adapter = EMAdapter("attr", "dbert", cache=False)
        full = adapter.transform(tiny_sda)
        subset = tiny_sda.subset(list(range(0, 10)))
        part = adapter.transform(subset)
        np.testing.assert_allclose(part, full[:10], atol=2e-5)
