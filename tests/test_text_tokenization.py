"""Tests for tokenizers, vocabulary, and Word2Vec."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import NotFittedError
from repro.text.tokenization import (
    BasicTokenizer,
    SubwordTokenizer,
    normalize_text,
)
from repro.text.vocab import Vocabulary
from repro.text.word2vec import Word2Vec

words = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122),
    min_size=1,
    max_size=10,
)


class TestNormalize:
    def test_lowercases(self):
        assert normalize_text("Hello WORLD") == "hello world"

    def test_separates_punctuation(self):
        assert normalize_text("a,b") == "a , b"

    def test_collapses_whitespace(self):
        assert normalize_text("a   b\t c") == "a b c"

    def test_optionally_keeps_case(self):
        assert normalize_text("AbC", lowercase=False) == "AbC"


class TestBasicTokenizer:
    def test_simple_split(self):
        assert BasicTokenizer().tokenize("sony tv x900") == ["sony", "tv", "x900"]

    def test_punctuation_tokens(self):
        assert BasicTokenizer().tokenize("a-b") == ["a", "-", "b"]

    def test_empty(self):
        assert BasicTokenizer().tokenize("") == []
        assert BasicTokenizer().tokenize("   ") == []

    @given(st.lists(words, min_size=1, max_size=8))
    @settings(max_examples=40)
    def test_roundtrip_word_count(self, tokens):
        text = " ".join(tokens)
        assert BasicTokenizer().tokenize(text) == tokens


class TestSubwordTokenizer:
    @pytest.fixture(scope="class")
    def fitted(self):
        corpus = [
            "efficient query processing in databases",
            "query optimization for database systems",
            "entity matching and duplicate detection",
        ] * 3
        return SubwordTokenizer(vocab_size=256).fit(corpus)

    def test_requires_fit(self):
        with pytest.raises(NotFittedError):
            SubwordTokenizer().tokenize("query")

    def test_known_word_kept_whole(self, fitted):
        assert fitted.tokenize("query") == ["query"]

    def test_unknown_word_decomposes(self, fitted):
        pieces = fitted.tokenize("queryish")
        assert len(pieces) >= 2
        assert pieces[0] == "query"
        assert all(p.startswith("##") for p in pieces[1:])

    def test_coverage_via_characters(self, fitted):
        # Letters appear in the corpus, so any lowercase word tokenizes.
        assert "[UNK]" not in fitted.tokenize("zzzap")

    def test_encode_ids_in_range(self, fitted):
        ids = fitted.encode("query processing zzzap")
        assert all(0 <= i < len(fitted.pieces) for i in ids)

    def test_rejects_tiny_vocab(self):
        with pytest.raises(ValueError):
            SubwordTokenizer(vocab_size=8)


class TestVocabulary:
    def test_unknown_token_is_zero(self):
        vocab = Vocabulary.from_documents([["a", "b"], ["a"]])
        assert vocab.id_of("nonexistent") == 0
        assert vocab.token_of(0) == Vocabulary.UNK

    def test_frequency_order(self):
        vocab = Vocabulary.from_documents([["b", "a", "a"], ["a", "b", "c"]])
        assert vocab.id_of("a") == 1  # Most frequent after <unk>.
        assert vocab.id_of("b") == 2

    def test_min_count_prunes(self):
        vocab = Vocabulary.from_documents([["a", "a", "rare"]], min_count=2)
        assert "rare" not in vocab
        assert vocab.id_of("rare") == 0

    def test_max_size(self):
        vocab = Vocabulary.from_documents(
            [["a", "b", "c", "d"]], max_size=3
        )
        assert len(vocab) == 3  # <unk> + two tokens.

    def test_encode(self):
        vocab = Vocabulary.from_documents([["x", "y"]])
        assert vocab.encode(["x", "zzz"]) == [vocab.id_of("x"), 0]

    def test_counts(self):
        vocab = Vocabulary.from_documents([["t", "t", "u"]])
        assert vocab.count_of("t") == 2
        assert vocab.count_of("missing") == 0


class TestWord2Vec:
    @pytest.fixture(scope="class")
    def corpus(self):
        # Two topic clusters; embeddings should reflect co-occurrence.
        return (
            ["red green blue color paint"] * 20
            + ["query database index table join"] * 20
        )

    @pytest.fixture(scope="class")
    def model(self, corpus):
        return Word2Vec(dim=16, epochs=2, min_count=1, seed=3).fit(corpus)

    def test_requires_fit(self):
        with pytest.raises(NotFittedError):
            Word2Vec().vector("anything")

    def test_vector_shape(self, model):
        assert model.vector("query").shape == (16,)

    def test_embed_text_average(self, model):
        v = model.embed_text("query database")
        manual = (model.vector("query") + model.vector("database")) / 2
        np.testing.assert_allclose(v, manual)

    def test_embed_empty_text_is_zero(self, model):
        assert np.allclose(model.embed_text(""), 0.0)

    def test_topical_similarity(self, model):
        def cos(a, b):
            va, vb = model.vector(a), model.vector(b)
            return float(
                va @ vb / (np.linalg.norm(va) * np.linalg.norm(vb))
            )

        same_topic = cos("query", "database")
        cross_topic = cos("query", "green")
        assert same_topic > cross_topic

    def test_most_similar_excludes_self(self, model):
        neighbours = model.most_similar("query", topn=3)
        assert all(token != "query" for token, _score in neighbours)

    def test_deterministic(self, corpus):
        a = Word2Vec(dim=8, epochs=1, seed=5).fit(corpus)
        b = Word2Vec(dim=8, epochs=1, seed=5).fit(corpus)
        np.testing.assert_allclose(a.vectors, b.vectors)

    def test_embed_texts_stacks(self, model):
        out = model.embed_texts(["query", "database join"])
        assert out.shape == (2, 16)
