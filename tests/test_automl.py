"""Tests for the AutoML layer: clock, search space, SMBO, three systems."""

from __future__ import annotations

import numpy as np
import pytest

from repro.automl import (
    AUTOML_NAMES,
    AutoGluonLike,
    AutoSklearnLike,
    H2OAutoMLLike,
    SimulatedClock,
    TimeBudget,
    make_automl,
)
from repro.automl.bayesian import (
    GaussianProcessSurrogate,
    SMBOProposer,
    expected_improvement,
)
from repro.automl.meta_learning import MetaFeatures, warm_start_portfolio
from repro.automl.random_search import RandomSearchProposer
from repro.automl.search_space import (
    FAMILY_SPACES,
    default_configuration,
    sample_configuration,
)
from repro.exceptions import (
    BudgetExhaustedError,
    NotFittedError,
    SearchSpaceError,
    UnknownModelError,
)
from repro.ml import f1_score


class TestSimulatedClock:
    def test_charges_accumulate(self):
        clock = SimulatedClock(TimeBudget(1.0))
        clock.charge(0.4, "a")
        clock.charge(0.5, "b")
        assert clock.elapsed_hours == pytest.approx(0.9)
        assert clock.remaining_hours == pytest.approx(0.1)

    def test_overrun_raises(self):
        clock = SimulatedClock(TimeBudget(0.5))
        clock.charge(0.4)
        with pytest.raises(BudgetExhaustedError):
            clock.charge(0.2)

    def test_force_overrides(self):
        clock = SimulatedClock(TimeBudget(0.1))
        clock.charge(0.5, force=True)
        assert clock.elapsed_hours == 0.5

    def test_negative_charge_rejected(self):
        clock = SimulatedClock(TimeBudget(1.0))
        with pytest.raises(ValueError):
            clock.charge(-0.1)

    def test_unbounded_budget(self):
        import math

        clock = SimulatedClock(TimeBudget(math.inf))
        clock.charge(1000.0)
        assert clock.budget.is_unbounded
        assert clock.remaining_hours == math.inf

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ValueError):
            TimeBudget(0.0)

    def test_model_cost_scales_with_rows(self):
        clock = SimulatedClock(TimeBudget(100.0))
        small = clock.charge_model("gbm", 1000, 100)
        large = clock.charge_model("gbm", 10000, 100)
        assert large == pytest.approx(10 * small)


class TestChargeLedger:
    """Semantics of the ``SimulatedClock.charges`` ledger."""

    def test_labels_recorded_in_charge_order(self):
        clock = SimulatedClock(TimeBudget(1.0))
        clock.charge(0.1, "first")
        clock.charge(0.2, "second")
        clock.charge(0.3, "third")
        assert [label for label, _ in clock.charges] == [
            "first", "second", "third",
        ]
        assert [hours for _, hours in clock.charges] == [0.1, 0.2, 0.3]

    def test_charge_model_labels_default_to_family(self):
        clock = SimulatedClock(TimeBudget(10.0))
        clock.charge_model("gbm", 1000, 100)
        clock.charge_model("knn", 1000, 100, label="knn(k=5)")
        assert [label for label, _ in clock.charges] == ["gbm", "knn(k=5)"]

    def test_forced_overrun_still_appended(self):
        clock = SimulatedClock(TimeBudget(0.1))
        clock.charge(0.05, "within")
        clock.charge(0.5, "overrun", force=True)
        assert [label for label, _ in clock.charges] == ["within", "overrun"]
        assert clock.charges[-1][1] == pytest.approx(0.5)
        assert clock.remaining_hours == 0.0

    def test_rejected_charge_not_appended(self):
        clock = SimulatedClock(TimeBudget(0.1))
        clock.charge(0.05, "ok")
        with pytest.raises(BudgetExhaustedError):
            clock.charge(0.2, "too-big")
        assert [label for label, _ in clock.charges] == ["ok"]
        assert clock.elapsed_hours == pytest.approx(0.05)

    def test_ledger_sum_equals_elapsed_hours(self):
        clock = SimulatedClock(TimeBudget(5.0))
        for index in range(20):
            clock.charge_model(
                "tree", 500 + 100 * index, 80, label=f"m{index}"
            )
        clock.charge(0.25, "forced", force=True)
        assert sum(hours for _, hours in clock.charges) == pytest.approx(
            clock.elapsed_hours
        )

    def test_fit_ledger_matches_report(self, linear_problem):
        """After a real fit, the ledger total is the reported sim-hours."""
        from repro.automl.resources import SimulatedClock as Clock

        charged: list[Clock] = []
        original_charge = Clock.charge

        def spying_charge(self, hours, label="", force=False):
            if self not in charged:
                charged.append(self)
            return original_charge(self, hours, label=label, force=force)

        X, y, _X_test, _y_test = linear_problem
        system = H2OAutoMLLike(budget_hours=0.05, seed=0, max_models=4)
        try:
            Clock.charge = spying_charge
            system.fit(X, y)
        finally:
            Clock.charge = original_charge
        assert len(charged) == 1
        clock = charged[0]
        assert sum(hours for _, hours in clock.charges) == pytest.approx(
            system.report_.simulated_hours
        )


class TestSearchSpace:
    def test_every_family_has_space(self):
        assert set(FAMILY_SPACES) >= {
            "logreg", "linear_svm", "naive_bayes", "knn",
            "tree", "random_forest", "extra_trees", "gbm",
        }

    def test_samples_stay_in_space(self):
        rng = np.random.default_rng(0)
        for _ in range(30):
            config = sample_configuration(rng)
            space = FAMILY_SPACES[config.family]
            unit = space.to_unit_vector(config)
            assert ((unit >= -1e-9) & (unit <= 1 + 1e-9)).all()

    def test_default_builds_and_fits(self, linear_problem):
        X, y, X_test, y_test = linear_problem
        for family in FAMILY_SPACES:
            pipeline = default_configuration(family).build(seed=0)
            pipeline.fit(X, y)
            assert pipeline.predict_proba(X_test).shape == (len(X_test), 2)

    def test_unknown_family_raises(self):
        with pytest.raises(SearchSpaceError):
            default_configuration("quantum_forest")

    def test_complexity_scales_with_gbm_rounds(self):
        small = default_configuration("gbm")
        big = sample_configuration(np.random.default_rng(0), families=("gbm",))
        big.params["n_estimators"] = 400
        assert big.complexity() > small.complexity() * 1.5


class TestBayesian:
    def test_gp_interpolates(self):
        X = np.array([[0.0], [0.5], [1.0]])
        y = np.array([0.0, 1.0, 0.0])
        gp = GaussianProcessSurrogate().fit(X, y)
        mean, std = gp.predict(np.array([[0.5]]))
        assert mean[0] == pytest.approx(1.0, abs=0.1)
        assert std[0] < 0.3

    def test_gp_uncertainty_grows_away_from_data(self):
        X = np.array([[0.0]])
        y = np.array([0.5])
        gp = GaussianProcessSurrogate().fit(X, y)
        _m_near, s_near = gp.predict(np.array([[0.01]]))
        _m_far, s_far = gp.predict(np.array([[0.99]]))
        assert s_far[0] > s_near[0]

    def test_expected_improvement_prefers_high_mean(self):
        ei = expected_improvement(
            np.array([0.9, 0.1]), np.array([0.1, 0.1]), best=0.5
        )
        assert ei[0] > ei[1]

    def test_proposer_observes_and_proposes(self):
        rng = np.random.default_rng(0)
        proposer = SMBOProposer(rng, families=("logreg",), epsilon=0.0)
        for _ in range(5):
            config = proposer.propose()
            proposer.observe(config, float(rng.random()))
        assert proposer.propose().family == "logreg"

    def test_random_search_ignores_history(self):
        rng = np.random.default_rng(0)
        proposer = RandomSearchProposer(rng, families=("gbm",))
        proposer.observe(default_configuration("gbm"), 1.0)
        assert proposer.propose().family == "gbm"


class TestMetaLearning:
    def test_meta_features(self):
        X = np.zeros((100, 5))
        y = np.array([1] * 10 + [0] * 90)
        meta = MetaFeatures.of(X, y)
        assert meta.is_small and meta.is_imbalanced
        assert meta.positive_fraction == pytest.approx(0.1)

    def test_portfolio_nonempty_and_leads_with_gbm(self):
        meta = MetaFeatures(5000, 100, 0.1)
        portfolio = warm_start_portfolio(meta)
        assert len(portfolio) >= 5
        assert portfolio[0].family == "gbm"

    def test_small_portfolio_differs(self):
        small = warm_start_portfolio(MetaFeatures(100, 10, 0.1))
        large = warm_start_portfolio(MetaFeatures(10000, 10, 0.1))
        assert small[0].params != large[0].params


@pytest.mark.parametrize("name", AUTOML_NAMES)
class TestSystems:
    def test_fit_predict_f1(self, name, linear_problem):
        X, y, X_test, y_test = linear_problem
        system = make_automl(name, budget_hours=1.0, seed=0, max_models=6)
        system.fit(X, y)
        assert f1_score(y_test, system.predict(X_test)) > 0.6

    def test_report_populated(self, name, linear_problem):
        X, y, _, _ = linear_problem
        system = make_automl(name, budget_hours=1.0, seed=0, max_models=6)
        system.fit(X, y)
        report = system.report_
        assert report.n_evaluated >= 1
        assert report.simulated_hours > 0
        assert 0 <= report.threshold <= 1
        assert report.leaderboard[0].valid_f1 == max(
            e.valid_f1 for e in report.leaderboard
        )

    def test_proba_shape(self, name, linear_problem):
        X, y, X_test, _ = linear_problem
        system = make_automl(name, budget_hours=1.0, seed=0, max_models=5)
        system.fit(X, y)
        proba = system.predict_proba(X_test)
        assert proba.shape == (len(X_test), 2)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-6)

    def test_unfitted_raises(self, name, linear_problem):
        _, _, X_test, _ = linear_problem
        with pytest.raises(NotFittedError):
            make_automl(name).predict(X_test)

    def test_tiny_budget_still_fits_one_model(self, name, linear_problem):
        X, y, _, _ = linear_problem
        system = make_automl(name, budget_hours=1e-7, seed=0, max_models=5)
        system.fit(X, y)
        assert system.report_.n_evaluated >= 1


class TestSystemSpecifics:
    def test_unknown_system(self):
        with pytest.raises(UnknownModelError):
            make_automl("autoweka")

    def test_autosklearn_exhausts_budget(self, linear_problem):
        X, y, _, _ = linear_problem
        system = AutoSklearnLike(budget_hours=1.0, max_models=4)
        system.fit(X, y)
        assert system.report_.simulated_hours == pytest.approx(1.0)

    def test_autogluon_respects_max_models(self, linear_problem):
        X, y, _, _ = linear_problem
        system = AutoGluonLike(budget_hours=None, max_models=3)
        system.fit(X, y)
        assert system.report_.n_evaluated <= 3

    def test_h2o_budget_grows_leaderboard(self, linear_problem):
        X, y, _, _ = linear_problem
        short = H2OAutoMLLike(budget_hours=0.01, max_models=30, seed=0)
        long = H2OAutoMLLike(budget_hours=5.0, max_models=30, seed=0)
        short.fit(X, y)
        long.fit(X, y)
        assert long.report_.n_evaluated >= short.report_.n_evaluated


class TestAutoKerasLike:
    """The NAS extension (not part of the paper's three subjects)."""

    def test_fit_predict(self, linear_problem):
        from repro.automl import AutoKerasLike
        from repro.ml import f1_score

        X, y, X_test, y_test = linear_problem
        system = AutoKerasLike(budget_hours=1.0, seed=0, max_models=6)
        system.fit(X, y)
        assert f1_score(y_test, system.predict(X_test)) > 0.6

    def test_registry_name(self):
        from repro.automl import AutoKerasLike, make_automl

        assert isinstance(make_automl("autokeras"), AutoKerasLike)

    def test_searches_distinct_architectures(self, linear_problem):
        from repro.automl import AutoKerasLike

        X, y, _, _ = linear_problem
        system = AutoKerasLike(budget_hours=5.0, seed=0, max_models=6)
        system.fit(X, y)
        seen = {
            (e.config.params["hidden"], e.config.params["epochs"])
            for e in system.report_.leaderboard
        }
        assert len(seen) >= 2

    def test_encode_in_unit_cube(self):
        from repro.automl.autokeras_like import AutoKerasLike

        system = AutoKerasLike(seed=1)
        import numpy as np

        system._rng = np.random.default_rng(1)
        for _ in range(20):
            params = system._sample_architecture()
            unit = system._encode(params)
            assert ((unit >= 0) & (unit <= 1)).all()
