"""Tests for the EM adapter: tokenizers, embedder, combiners, pipeline,
no-adapter featurizers, and augmentation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adapter import (
    AttributeTokenizer,
    ConcatCombiner,
    EMAdapter,
    EntityStore,
    HybridTokenizer,
    MeanCombiner,
    NativeTabularFeaturizer,
    TransformerEmbedder,
    UnstructuredTokenizer,
    Word2VecFeaturizer,
    clear_adapter_cache,
    clear_entity_store,
    entity_store,
    make_combiner,
    make_tokenizer,
)
from repro.adapter.augmentation import balance_dataset, shuffle_attribute, swap_pair
from repro.data.schema import AttributeKind, EMDataset, PairRecord, Schema
from repro.exceptions import NotFittedError, UnknownModelError

SCHEMA = Schema.of(
    "product",
    ("title", AttributeKind.TEXT),
    ("brand", AttributeKind.CATEGORICAL),
    ("price", AttributeKind.NUMERIC),
)


def make_dataset(n=6):
    pairs = []
    for i in range(n):
        left = {"title": f"sony camera x{i}", "brand": "sony", "price": 10.0 + i}
        right = {"title": f"sony camera x{i}", "brand": "sony", "price": 10.0 + i}
        pairs.append(PairRecord(i, left, right, i % 2))
    return EMDataset("toy", SCHEMA, pairs)


class TestTokenizers:
    def test_registry(self):
        assert isinstance(make_tokenizer("attr"), AttributeTokenizer)
        assert isinstance(make_tokenizer("hybrid"), HybridTokenizer)
        assert isinstance(make_tokenizer("unstructured"), UnstructuredTokenizer)

    def test_unknown_tokenizer(self):
        with pytest.raises(UnknownModelError):
            make_tokenizer("quantum")

    def test_unstructured_single_sequence(self):
        pair = make_dataset()[0]
        sequences = UnstructuredTokenizer().sequences(pair, SCHEMA)
        assert len(sequences) == 1
        left, right = sequences[0]
        assert "sony camera x0" in left and "10.0" in left

    def test_attr_one_per_attribute(self):
        pair = make_dataset()[0]
        sequences = AttributeTokenizer().sequences(pair, SCHEMA)
        assert len(sequences) == 3
        assert sequences[0] == ("sony camera x0", "sony camera x0")
        assert sequences[2] == ("10.0", "10.0")

    def test_hybrid_incremental_prefixes(self):
        pair = make_dataset()[0]
        sequences = HybridTokenizer().sequences(pair, SCHEMA)
        assert len(sequences) == 3
        assert sequences[0][0] == "sony camera x0"
        assert sequences[1][0] == "sony camera x0 sony"
        # The final sequence couples the entire records.
        assert sequences[2][0] == "sony camera x0 sony 10.0"

    def test_hybrid_skips_empty_values_in_concat(self):
        left = {"title": "a", "brand": "", "price": None}
        pair = PairRecord(0, left, dict(left), 0)
        sequences = HybridTokenizer().sequences(pair, SCHEMA)
        assert sequences[-1][0] == "a"

    def test_sequence_count_matches(self):
        assert AttributeTokenizer().sequence_count(SCHEMA) == 3
        assert HybridTokenizer().sequence_count(SCHEMA) == 3
        assert UnstructuredTokenizer().sequence_count(SCHEMA) == 1


class TestEmbedder:
    def test_output_dim_modes(self):
        emb = TransformerEmbedder("bert", layers="first_last")
        per_layer = 3 * 96 + 2
        assert emb.output_dim == 2 * per_layer
        assert TransformerEmbedder("bert", layers="last").output_dim == per_layer

    def test_unknown_layers_mode(self):
        with pytest.raises(UnknownModelError):
            TransformerEmbedder("bert", layers="middle")

    def test_embed_pairs_shape(self):
        emb = TransformerEmbedder("dbert")
        out = emb.embed_pairs([("sony camera", "sony camera"), ("a", "b")])
        assert out.shape == (2, emb.output_dim)
        assert np.isfinite(out).all()

    def test_identical_pair_scores_higher_cosine(self):
        emb = TransformerEmbedder("albert")
        out = emb.embed_pairs(
            [
                ("canon eos camera", "canon eos camera"),
                ("canon eos camera", "panasonic microwave oven"),
            ]
        )
        # The layer-0 cosine feature sits at a fixed offset: 3 * dim.
        cos_index = 3 * 96
        assert out[0, cos_index] > out[1, cos_index]


class TestCombiners:
    def test_mean(self):
        stack = [np.array([[1.0, 2.0]]), np.array([[3.0, 4.0]])]
        out = MeanCombiner().combine_dataset(stack)
        np.testing.assert_allclose(out, [[2.0, 3.0]])

    def test_concat(self):
        stack = [np.array([[1.0]]), np.array([[2.0]])]
        out = ConcatCombiner().combine_dataset(stack)
        np.testing.assert_allclose(out, [[1.0, 2.0]])

    def test_single_record_combine(self):
        embeddings = np.array([[1.0, 3.0], [3.0, 5.0]])
        np.testing.assert_allclose(
            MeanCombiner().combine(embeddings), [2.0, 4.0]
        )
        assert len(ConcatCombiner().combine(embeddings)) == 4

    def test_registry(self):
        assert isinstance(make_combiner("mean"), MeanCombiner)
        with pytest.raises(UnknownModelError):
            make_combiner("max")

    def test_vectorized_dataset_matches_per_record_loop(self):
        """combine_dataset must stay bit-identical to combining each
        record separately (the pre-vectorization reference)."""
        rng = np.random.default_rng(7)
        per_sequence = [rng.normal(size=(5, 3)) for _ in range(4)]
        stacked = np.stack(per_sequence, axis=1)  # (records, sequences, dim)
        for combiner in (MeanCombiner(), ConcatCombiner()):
            reference = np.vstack(
                [combiner.combine(stacked[i]) for i in range(stacked.shape[0])]
            )
            assert np.array_equal(
                combiner.combine_dataset(per_sequence), reference
            )

    def test_derived_combine_keeps_original_semantics(self):
        rng = np.random.default_rng(11)
        embeddings = rng.normal(size=(4, 6))
        assert np.array_equal(
            MeanCombiner().combine(embeddings), embeddings.mean(axis=0)
        )
        assert np.array_equal(
            ConcatCombiner().combine(embeddings), embeddings.reshape(-1)
        )


class TestEMAdapter:
    def test_transform_shape_mean(self):
        clear_adapter_cache()
        adapter = EMAdapter("attr", "dbert", "mean")
        dataset = make_dataset()
        out = adapter.transform(dataset)
        assert out.shape == (len(dataset), adapter.output_dim(dataset))

    def test_transform_shape_concat(self):
        clear_adapter_cache()
        adapter = EMAdapter("attr", "dbert", "concat")
        dataset = make_dataset()
        out = adapter.transform(dataset)
        assert out.shape[1] == adapter.embedder.output_dim * 3

    def test_cache_hit_returns_same_array(self):
        clear_adapter_cache()
        adapter = EMAdapter("attr", "dbert", "mean")
        dataset = make_dataset()
        first = adapter.transform(dataset)
        second = adapter.transform(dataset)
        assert first is second

    def test_cache_disabled(self):
        clear_adapter_cache()
        adapter = EMAdapter("attr", "dbert", "mean", cache=False)
        dataset = make_dataset()
        assert adapter.transform(dataset) is not adapter.transform(dataset)

    def test_name_is_stable(self):
        adapter = EMAdapter("hybrid", "albert", "mean")
        assert adapter.name == "hybrid+albert/first_last+mean"

    def test_accepts_component_instances(self):
        adapter = EMAdapter(
            HybridTokenizer(), TransformerEmbedder("bert"), MeanCombiner()
        )
        assert adapter.tokenizer.name == "hybrid"

    def test_tokenize_hoist_is_bit_identical(self):
        """transform's tokenize-once-and-transpose path must match the
        per-position re-tokenization reference exactly."""
        clear_adapter_cache()
        adapter = EMAdapter("hybrid", "dbert", "mean", cache=False)
        dataset = make_dataset()
        n_sequences = adapter.tokenizer.sequence_count(dataset.schema)
        couples_by_position = [
            [
                adapter.tokenizer.sequences(pair, dataset.schema)[position]
                for pair in dataset
            ]
            for position in range(n_sequences)
        ]
        reference = adapter.combiner.combine_dataset(
            [adapter.embedder.embed_pairs(c) for c in couples_by_position]
        )
        assert np.array_equal(adapter.transform(dataset), reference)


class TestNoAdapterFeaturizers:
    def test_word2vec_featurizer_shape(self, tiny_sda):
        featurizer = Word2VecFeaturizer(dim=8, epochs=1)
        features = featurizer.fit_transform(tiny_sda)
        assert features.shape == (len(tiny_sda), featurizer.output_dim)

    def test_word2vec_requires_fit(self, tiny_sda):
        with pytest.raises(NotFittedError):
            Word2VecFeaturizer().transform(tiny_sda)

    def test_native_featurizer_shape_and_nan(self):
        dataset = make_dataset()
        featurizer = NativeTabularFeaturizer(text_hash_dim=8)
        features = featurizer.fit_transform(dataset)
        assert features.shape[0] == len(dataset)
        # title: 3 stats + 8 bag; brand: 2; price: 1 -> 14 per side.
        assert features.shape[1] == 2 * (3 + 8 + 2 + 1)

    def test_native_featurizer_missing_numeric_is_nan(self):
        left = {"title": "a", "brand": "b", "price": None}
        pair = PairRecord(0, left, dict(left), 0)
        dataset = EMDataset("toy", SCHEMA, [pair])
        features = NativeTabularFeaturizer(text_hash_dim=4).fit_transform(dataset)
        assert np.isnan(features).sum() == 2  # One price per side.

    def test_native_requires_fit(self):
        with pytest.raises(NotFittedError):
            NativeTabularFeaturizer().transform(make_dataset())

    def test_no_cross_side_features(self):
        """Raw featurizers encode sides independently (the paper's point)."""
        left = {"title": "identical text", "brand": "x", "price": 1.0}
        match = PairRecord(0, dict(left), dict(left), 1)
        other = {"title": "completely different", "brand": "y", "price": 9.0}
        nonmatch = PairRecord(1, dict(left), dict(other), 0)
        dataset = EMDataset("toy", SCHEMA, [match, nonmatch])
        features = NativeTabularFeaturizer(text_hash_dim=4).fit_transform(dataset)
        # Left-side features of both rows are identical: no comparison info.
        half = features.shape[1] // 2
        np.testing.assert_allclose(features[0, :half], features[1, :half])


class TestAugmentation:
    def test_swap_preserves_label(self):
        pair = make_dataset()[1]
        swapped = swap_pair(pair, 99)
        assert swapped.label == pair.label
        assert swapped.left == pair.right and swapped.right == pair.left

    def test_shuffle_attribute_keeps_tokens(self):
        pair = make_dataset()[0]
        rng = np.random.default_rng(0)
        shuffled = shuffle_attribute(pair, "title", rng, 99, side="right")
        assert sorted(str(shuffled.right["title"]).split()) == sorted(
            str(pair.right["title"]).split()
        )

    def test_balance_reaches_target(self, tiny_sda):
        balanced = balance_dataset(tiny_sda, target_match_fraction=0.4)
        assert balanced.match_fraction == pytest.approx(0.4, abs=0.02)
        assert len(balanced) > len(tiny_sda)

    def test_balance_noop_when_already_balanced(self):
        dataset = make_dataset(6)  # 50% positives.
        assert balance_dataset(dataset, target_match_fraction=0.4) is dataset

    def test_balance_rejects_bad_target(self, tiny_sda):
        with pytest.raises(ValueError):
            balance_dataset(tiny_sda, target_match_fraction=1.0)


class TestAdapterCacheKeying:
    def test_equal_length_subsets_do_not_collide(self):
        clear_adapter_cache()
        adapter = EMAdapter("attr", "dbert", "mean")
        dataset = make_dataset(8)
        first = adapter.transform(dataset.subset([0, 1, 2]))
        second = adapter.transform(dataset.subset([3, 4, 5]))
        assert first.shape == second.shape
        assert not np.allclose(first, second)


class TestAdapterDiskCache:
    """Regression tests for the atomic .npy spill (mkstemp + rename)."""

    def _transform(self, tmp_path, dataset):
        adapter = EMAdapter("attr", "dbert", "mean")
        return adapter.transform(dataset), tmp_path / "adapter"

    def test_transform_leaves_only_npy(self, tmp_path, monkeypatch):
        """A successful spill leaves exactly one .npy and zero .tmp files
        (np.save used to re-append .npy to the mkstemp name, orphaning a
        zero-byte temp file on every store)."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_adapter_cache()
        features, disk_dir = self._transform(tmp_path, make_dataset())
        clear_adapter_cache()
        names = sorted(p.name for p in disk_dir.iterdir())
        assert len(names) == 1 and names[0].endswith(".npy")
        np.testing.assert_array_equal(np.load(disk_dir / names[0]), features)

    def test_failed_save_leaks_nothing(self, tmp_path, monkeypatch):
        """A save that dies mid-write (full disk, broken dtype) must not
        leave a temp file behind in the shared cache directory."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_adapter_cache()

        def explode(*args, **kwargs):
            raise OSError("No space left on device")

        monkeypatch.setattr("repro.adapter.pipeline.np.save", explode)
        with pytest.raises(OSError):
            self._transform(tmp_path, make_dataset())
        clear_adapter_cache()
        assert list((tmp_path / "adapter").iterdir()) == []

    def test_corrupt_disk_file_recomputed(self, tmp_path, monkeypatch):
        """A truncated/garbage cache file counts as corrupt (not a plain
        miss), is recomputed, and is overwritten with a valid matrix."""
        from repro import telemetry

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_adapter_cache()
        dataset = make_dataset()
        features, disk_dir = self._transform(tmp_path, dataset)
        (cached,) = disk_dir.iterdir()
        cached.write_bytes(b"not a numpy file")
        clear_adapter_cache()

        with telemetry.recording() as rec:
            again, _ = self._transform(tmp_path, dataset)
        clear_adapter_cache()
        assert rec.metrics.counters["adapter.cache.disk.corrupt"].value == 1
        assert "adapter.cache.disk.misses" not in rec.metrics.counters
        np.testing.assert_array_equal(again, features)
        np.testing.assert_array_equal(np.load(cached), features)


class TestAdapterCacheBugfixes:
    """The three cache bugfixes: digest filenames, versioned memory
    keys, and bounded (byte-identical) eviction."""

    def test_slash_and_dash_dataset_names_do_not_collide_on_disk(
        self, tmp_path, monkeypatch
    ):
        """Legacy filenames joined raw key parts and substituted "/",
        so "a/b" and "a-b" mapped to one file; digest names keep them
        apart."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_adapter_cache()
        pairs = list(make_dataset())
        adapter = EMAdapter("attr", "dbert", "mean")
        adapter.transform(EMDataset("a/b", SCHEMA, pairs))
        adapter.transform(EMDataset("a-b", SCHEMA, pairs))
        clear_adapter_cache()
        assert len(list((tmp_path / "adapter").glob("*.npy"))) == 2

    def test_memory_key_includes_data_version(self, monkeypatch):
        """A mid-run DATA_VERSION upgrade must miss the memory tier
        (it used to serve the stale matrix: only the disk name was
        versioned)."""
        monkeypatch.setenv("REPRO_CACHE_DIR", "off")
        clear_adapter_cache()
        dataset = make_dataset()
        adapter = EMAdapter("attr", "dbert", "mean")
        first = adapter.transform(dataset)
        assert adapter.transform(dataset) is first
        monkeypatch.setattr("repro.config.DATA_VERSION", 99)
        second = adapter.transform(dataset)
        assert second is not first
        np.testing.assert_array_equal(second, first)
        clear_adapter_cache()

    def test_legacy_underscore_files_are_ignored(self, tmp_path, monkeypatch):
        """Old-format "v<N>_*"-named spills hold pre-ENCODE_VERSION
        bits; they must be left untouched and never read."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_adapter_cache()
        legacy_dir = tmp_path / "adapter"
        legacy_dir.mkdir(parents=True)
        legacy = legacy_dir / "v3_toy_6_synthetic_42_attr+dbert-first_last+mean.npy"
        legacy.write_bytes(b"stale bits from an old release")
        out = EMAdapter("attr", "dbert", "mean").transform(make_dataset())
        clear_adapter_cache()
        assert legacy.read_bytes() == b"stale bits from an old release"
        fresh = [f for f in legacy_dir.glob("*.npy") if f != legacy]
        assert len(fresh) == 1
        np.testing.assert_array_equal(np.load(fresh[0]), out)

    def test_eviction_is_byte_identical_and_gauged(self, monkeypatch):
        from repro import telemetry

        monkeypatch.setenv("REPRO_CACHE_DIR", "off")
        # ~10-byte budget: every insert evicts its predecessor (the
        # newest entry is always kept).
        monkeypatch.setenv("REPRO_ADAPTER_CACHE_MB", "0.00001")
        clear_adapter_cache()
        dataset = make_dataset()
        other = EMDataset("other", SCHEMA, list(make_dataset(4)))
        adapter = EMAdapter("attr", "dbert", "mean")
        with telemetry.recording() as rec:
            first = adapter.transform(dataset)
            evictor = adapter.transform(other)
            again = adapter.transform(dataset)
        clear_adapter_cache()
        assert again is not first  # evicted, so recomputed...
        np.testing.assert_array_equal(again, first)  # ...byte-identically
        counters = rec.metrics.counters
        assert counters["adapter.cache.memory.evictions"].value >= 2
        gauge = rec.metrics.gauges["adapter.cache.memory.resident_bytes"]
        assert gauge.value == again.nbytes
        assert evictor.nbytes != again.nbytes or True  # shapes may differ

    def test_cache_false_disables_entity_store_by_default(self):
        from repro import telemetry

        adapter = EMAdapter("attr", "dbert", "mean", cache=False)
        assert adapter.entity_cache is False
        with telemetry.recording() as rec:
            adapter.transform(make_dataset())
        assert not any(
            name.startswith("adapter.entity_cache")
            for name in rec.metrics.counters
        )

    def test_local_embedder_bypasses_entity_store(self, tiny_sda, monkeypatch):
        from repro import telemetry
        from repro.adapter import LocalWord2VecEmbedder

        monkeypatch.setenv("REPRO_CACHE_DIR", "off")
        clear_adapter_cache()
        local = LocalWord2VecEmbedder.from_dataset(tiny_sda, dim=8, epochs=1)
        adapter = EMAdapter("attr", local, "mean")
        with telemetry.recording() as rec:
            out = adapter.transform(tiny_sda)
        clear_adapter_cache()
        assert out.shape[0] == len(tiny_sda)
        assert not any(
            name.startswith("adapter.entity_cache")
            for name in rec.metrics.counters
        )


class TestEntityStore:
    """The content-addressed entity-embedding store: tiers, recovery
    parity with the pair cache, and bounded memory."""

    def test_memory_round_trip(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "off")
        clear_entity_store()
        store = entity_store()
        arrays = {
            "matrix": np.arange(6.0).reshape(2, 3),
            "sep_positions": np.array([1], dtype=np.int64),
        }
        store.save(123, arrays)
        loaded = store.load(123)
        assert np.array_equal(loaded["matrix"], arrays["matrix"])
        assert np.array_equal(loaded["sep_positions"], arrays["sep_positions"])

    def test_disk_round_trip_survives_rebind(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_entity_store()
        entity_store().save(7, {"vector": np.ones(4)})
        clear_entity_store()  # a fresh process / worker
        loaded = entity_store().load(7)
        assert loaded is not None and np.array_equal(loaded["vector"], np.ones(4))
        names = [p.name for p in (tmp_path / "entity").iterdir()]
        assert names == ["0000000000000007.npz"]
        clear_entity_store()

    @pytest.mark.parametrize(
        "payload", [b"repro-chaos-garbage\x00\xff", b""], ids=["garbage", "zero-byte"]
    )
    def test_corrupt_record_recovered(self, tmp_path, monkeypatch, payload):
        """Parity with the pair-cache corruption tests: a garbled or
        zero-byte record counts as corrupt (not a miss), is unlinked,
        and the caller recomputes."""
        from repro import telemetry

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_entity_store()
        entity_store().save(7, {"vector": np.ones(4)})
        path = tmp_path / "entity" / "0000000000000007.npz"
        path.write_bytes(payload)
        clear_entity_store()
        with telemetry.recording() as rec:
            assert entity_store().load(7) is None
        counters = rec.metrics.counters
        assert counters["adapter.entity_cache.disk.corrupt"].value == 1
        assert "adapter.entity_cache.disk.misses" not in counters
        assert not path.exists()
        clear_entity_store()

    def test_warm_transform_survives_corrupted_entity_files(
        self, tmp_path, monkeypatch
    ):
        from repro import telemetry

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_entity_store()
        clear_adapter_cache()
        dataset = make_dataset()
        adapter = EMAdapter("attr", "dbert", "mean", cache=False, entity_cache=True)
        first = adapter.transform(dataset)
        for record in (tmp_path / "entity").glob("*.npz"):
            record.write_bytes(b"repro-chaos-garbage\x00\xff")
        clear_entity_store()
        with telemetry.recording() as rec:
            again = adapter.transform(dataset)
        clear_entity_store()
        np.testing.assert_array_equal(again, first)
        assert rec.metrics.counters["adapter.entity_cache.disk.corrupt"].value >= 1

    def test_eviction_bounded_and_gauged(self, monkeypatch):
        from repro import telemetry

        monkeypatch.setenv("REPRO_CACHE_DIR", "off")
        monkeypatch.setenv("REPRO_ENTITY_CACHE_MB", "0.0001")  # ~104 bytes
        clear_entity_store()
        store = entity_store()
        with telemetry.recording() as rec:
            for key in range(10):
                store.save(key, {"vector": np.ones(8)})  # 64 bytes each
        assert store.resident_bytes <= 104
        counters = rec.metrics.counters
        assert counters["adapter.entity_cache.memory.evictions"].value >= 1
        gauge = rec.metrics.gauges["adapter.entity_cache.memory.resident_bytes"]
        assert gauge.value == store.resident_bytes
        assert store.load(9) is not None  # newest entry survives
        assert store.load(0) is None  # evicted, and the disk tier is off
        clear_entity_store()

    def test_clear_rebinds_the_singleton(self):
        store = entity_store()
        clear_entity_store()
        assert entity_store() is not store

    def test_lru_concurrent_put_get_keeps_byte_accounting_exact(self):
        """Regression: ``ByteBudgetLRU`` mutated its ``OrderedDict`` and
        ``_resident_bytes`` without a lock, so concurrent ``get``/``put``
        from server threads could corrupt LRU order (``move_to_end`` on
        a key another thread was popping) or drift the resident-byte
        tally away from the entries actually held."""
        import threading

        from repro.adapter.entity_store import ByteBudgetLRU

        lru = ByteBudgetLRU(lambda: 40 * 64, "test.lru")  # 40 entries of 64B
        threads_n, rounds = 8, 1_500
        barrier = threading.Barrier(threads_n)
        errors: list[Exception] = []

        def hammer(slot: int) -> None:
            try:
                barrier.wait(timeout=30)
                for i in range(rounds):
                    key = (slot * rounds + i) % 100  # overlap across threads
                    lru.put(key, ("value", slot, i), 64)
                    lru.get((key * 7) % 100)
                    lru.get(key)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(slot,))
            for slot in range(threads_n)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)

        assert errors == []
        # Every entry is 64 bytes: the tally must equal the entry count
        # exactly, and the eviction loop must have enforced the budget.
        assert lru.resident_bytes == len(lru._entries) * 64
        assert lru.resident_bytes <= 40 * 64
        assert sum(size for _v, size in lru._entries.values()) == lru.resident_bytes

    def test_store_concurrent_save_load_accounts_bytes(self, monkeypatch):
        """Two threads hammering one EntityStore (the serving daemon's
        shared warm store) must never corrupt the memory tier."""
        import threading

        monkeypatch.setenv("REPRO_CACHE_DIR", "off")
        monkeypatch.setenv("REPRO_ENTITY_CACHE_MB", "0.001")  # ~1 KiB
        clear_entity_store()
        store = entity_store()
        barrier = threading.Barrier(2)
        errors: list[Exception] = []

        def work(slot: int) -> None:
            try:
                barrier.wait(timeout=30)
                for i in range(400):
                    key = (slot * 400 + i) % 60
                    store.save(key, {"vector": np.full(8, float(slot))})
                    store.load((key + 13) % 60)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(s,)) for s in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert errors == []
        assert store.resident_bytes <= 1024 + 64  # budget + one newest entry
        loaded = store.load(59)
        assert loaded is None or loaded["vector"].shape == (8,)
        clear_entity_store()


class TestCanonicalEncode:
    """The exact-length-bucketed forward (ENCODE_VERSION 2): each
    couple's vector is a pure function of its own content, so cached
    halves compose and batch composition cannot change any bit."""

    NASTY = [
        "",
        "a",
        "[sep]",
        "foo [sep] bar",
        "ends with [",
        "sep ] starts",
        "[ sep",
        "literal [sep] inside text",
        "café №5 — naïve",
        "a-b/c_d (e) [f]",
        " ".join(f"tok{i}" for i in range(200)),  # joint > max_len
    ]

    def test_assembled_halves_match_direct_pair_matrix(self):
        """assemble_pair(entity_half, entity_half) must reproduce
        _sequence_matrix(pair_text(...)) exactly — including literal
        [sep] markers in the data, empty sides, marker fragments at the
        join, and truncation past max_len."""
        from repro.transformers import load_pretrained

        for arch in ("albert", "roberta"):
            encoder = load_pretrained(arch)
            for left in self.NASTY:
                for right in self.NASTY:
                    direct = encoder._sequence_matrix(
                        encoder.pair_text(left, right)
                    )
                    joined = encoder.assemble_pair(
                        encoder.entity_half(left), encoder.entity_half(right)
                    )
                    assert np.array_equal(direct[0], joined[0]), (left, right)
                    assert np.array_equal(direct[1], joined[1]), (left, right)

    def test_batch_size_invariance(self):
        couples = [(a, b) for a in self.NASTY[:6] for b in self.NASTY[:6]]
        reference = TransformerEmbedder("dbert", batch_size=256).embed_pairs(
            couples
        )
        for batch_size in (1, 2, 7):
            out = TransformerEmbedder("dbert", batch_size=batch_size).embed_pairs(
                couples
            )
            assert np.array_equal(out, reference)

    def test_duplicate_couples_embed_identically(self):
        couples = [
            ("sony camera", "sony cam"),
            ("a b c", "a b"),
            ("sony camera", "sony cam"),
        ]
        out = TransformerEmbedder("albert").embed_pairs(couples)
        assert np.array_equal(out[0], out[2])

    def test_store_on_off_warm_identical_all_combos(self, tmp_path, monkeypatch):
        """Acceptance: adapter.transform bits must not depend on the
        entity store, its temperature, or the adapter configuration —
        every tokenizer x embedder x combiner combination agrees."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        dataset = make_dataset()
        for tokenizer in ("unstructured", "attr", "hybrid"):
            for arch in ("bert", "dbert", "albert", "roberta", "xlnet"):
                for combiner in ("mean", "concat"):
                    off = EMAdapter(
                        tokenizer, arch, combiner, cache=False
                    ).transform(dataset)
                    clear_entity_store()
                    warmable = EMAdapter(
                        tokenizer, arch, combiner, cache=False, entity_cache=True
                    )
                    cold = warmable.transform(dataset)
                    warm = warmable.transform(dataset)
                    assert np.array_equal(off, cold), (tokenizer, arch, combiner)
                    assert np.array_equal(cold, warm), (tokenizer, arch, combiner)
        clear_entity_store()

    def test_store_identity_across_layers_modes(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "off")
        couples = [("sony x1", "sony x2"), ("a", "b")]
        for layers in ("last", "last4"):
            embedder = TransformerEmbedder("dbert", layers=layers)
            clear_entity_store()
            off = embedder.embed_pairs(couples)
            cold = embedder.embed_pairs(couples, entity_store())
            warm = embedder.embed_pairs(couples, entity_store())
            assert np.array_equal(off, cold)
            assert np.array_equal(cold, warm)
        clear_entity_store()
