"""Tiny-scale integration tests of the Table 3/4/5 experiment modules.

These run one small dataset (S-BR at scale 0.02, 450 pairs) with a
two-model AutoML cap and a single embedder, exercising the full
runner -> table-row -> render path without the benchmark suite's cost.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentConfig, ExperimentRunner
from repro.experiments.table3 import table3_rows
from repro.experiments.table4 import table4_rows
from repro.experiments.table5 import table5_rows


@pytest.fixture(scope="module")
def runner(tmp_path_factory):
    import os

    cache = tmp_path_factory.mktemp("cache")
    os.environ["REPRO_CACHE_DIR"] = str(cache)
    yield ExperimentRunner(ExperimentConfig(scale=0.02, max_models=2))
    os.environ.pop("REPRO_CACHE_DIR", None)


DATASETS = ("S-BR",)
EMBEDDERS = ("dbert",)


class TestTinyTables:
    def test_table3_rows(self, runner):
        rows = table3_rows(
            "h2o", runner, datasets=DATASETS, embedders=EMBEDDERS
        )
        assert len(rows) == 1
        row = rows[0]
        assert 0.0 <= row["attr_dbert"] <= 100.0
        assert 0.0 <= row["hybrid_dbert"] <= 100.0

    def test_table4_rows_reuse_cache(self, runner):
        rows = table4_rows(
            runner,
            datasets=DATASETS,
            systems=("h2o",),
            embedders=EMBEDDERS,
        )
        row = rows[0]
        adapter_mean = (row["h2o_attr"] + row["h2o_hybrid"]) / 2
        assert row["h2o_delta"] == pytest.approx(
            adapter_mean - row["h2o_none"], abs=1e-9
        )

    def test_table5_rows(self, runner):
        rows = table5_rows(
            runner,
            datasets=DATASETS,
            systems=("h2o",),
            budgets=(1.0, 6.0),
        )
        row = rows[0]
        assert "deepmatcher_f1" in row
        assert row["delta_1h"] == pytest.approx(
            row["h2o_1h"] - row["deepmatcher_f1"], abs=1e-9
        )
        assert 0.0 <= row["h2o_6h"] <= 100.0
