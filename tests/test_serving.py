"""Tests for the online serving layer (repro.serving)."""

from __future__ import annotations

import http.client
import json
import threading
import time

import numpy as np
import pytest

from repro import faults, telemetry
from repro.data import load_dataset, split_dataset
from repro.faults import FaultPlan, FaultSpec
from repro.matching import EMPipeline
from repro.persistence import PersistenceError, save_model
from repro.serving import (
    MatchDaemon,
    MatchEngine,
    MicroBatcher,
    ServerClosedError,
    ServerOverloadedError,
    ServingError,
    build_requests,
    run_loadtest,
)


@pytest.fixture(scope="module")
def served_model(tmp_path_factory):
    """A fitted tiny pipeline saved to disk, plus its splits."""
    splits = split_dataset(load_dataset("S-FZ", scale=0.02))
    pipeline = EMPipeline(automl="autosklearn", seed=7, max_models=3)
    pipeline.fit(splits.train, splits.valid)
    path = tmp_path_factory.mktemp("serving") / "model.pkl"
    save_model(pipeline, path)
    return path, pipeline, splits


@pytest.fixture()
def engine(served_model):
    path, _pipeline, _splits = served_model
    return MatchEngine(path, "S-FZ")


def _pairs_of(dataset) -> list[dict]:
    return [{"left": dict(p.left), "right": dict(p.right)} for p in dataset]


class _DaemonHarness:
    """A daemon on an ephemeral port with its serve thread and a client."""

    def __init__(self, engine, **kwargs):
        self.daemon = MatchDaemon(engine, ("127.0.0.1", 0), **kwargs)
        self.thread = threading.Thread(
            target=self.daemon.serve_forever, daemon=True
        )
        self.thread.start()
        self.port = self.daemon.port

    def request(self, method: str, path: str, body=None):
        connection = http.client.HTTPConnection(
            "127.0.0.1", self.port, timeout=30
        )
        try:
            payload = (
                json.dumps(body).encode("utf-8") if body is not None else None
            )
            connection.request(
                method,
                path,
                body=payload,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            return response.status, json.loads(response.read().decode("utf-8"))
        finally:
            connection.close()

    def stop(self):
        self.daemon.stop()
        self.thread.join(timeout=10)
        self.daemon.close()


@pytest.fixture()
def harness(engine):
    h = _DaemonHarness(engine, max_delay_seconds=0.002)
    yield h
    h.stop()


class TestMicroBatcher:
    def test_empty_submit_resolves_immediately(self, engine):
        batcher = MicroBatcher(engine.match_pairs)
        try:
            probabilities, labels = batcher.submit([]).result(timeout=5)
            assert probabilities.shape == (0,)
            assert labels.shape == (0,)
        finally:
            batcher.close()

    def test_empty_flush_is_noop(self, engine):
        batcher = MicroBatcher(engine.match_pairs)
        try:
            batcher._flush([])  # must not call predict_fn or raise
        finally:
            batcher.close()

    def test_fused_equals_one_at_a_time(self, engine, served_model):
        """The ISSUE's core guarantee: batch composition never changes
        any row — fused predictions are bit-identical to serial ones."""
        _path, _pipeline, splits = served_model
        pairs = _pairs_of(splits.test)
        singles = [engine.match_pairs([p]) for p in pairs]
        single_proba = np.concatenate([s[0] for s in singles])
        single_labels = np.concatenate([s[1] for s in singles])

        batcher = MicroBatcher(
            engine.match_pairs, max_batch_pairs=256, max_delay_seconds=0.05
        )
        try:
            futures = [batcher.submit([p]) for p in pairs]
            fused_proba = np.concatenate(
                [f.result(timeout=30)[0] for f in futures]
            )
            fused_labels = np.concatenate(
                [f.result(timeout=30)[1] for f in futures]
            )
        finally:
            batcher.close()
        assert np.array_equal(fused_proba, single_proba)
        assert np.array_equal(fused_labels, single_labels)

    def test_submit_after_close_raises(self, engine, served_model):
        _path, _pipeline, splits = served_model
        batcher = MicroBatcher(engine.match_pairs)
        batcher.close()
        with pytest.raises(ServerClosedError):
            batcher.submit(_pairs_of(splits.test)[:1])
        batcher.close()  # idempotent

    def test_queued_requests_answered_on_close(self, engine, served_model):
        """close() flushes what is queued instead of abandoning it."""
        _path, _pipeline, splits = served_model
        pair = _pairs_of(splits.test)[:1]
        batcher = MicroBatcher(
            engine.match_pairs, max_batch_pairs=64, max_delay_seconds=0.5
        )
        futures = [batcher.submit(pair) for _ in range(3)]
        batcher.close()
        for future in futures:
            probabilities, _labels = future.result(timeout=5)
            assert probabilities.shape == (1,)

    def test_overload_sheds_with_typed_error(self, served_model):
        """A stalled predict fills the queue; the next submit must fail
        fast instead of growing latency without bound."""
        _path, pipeline, splits = served_model
        release = threading.Event()

        def slow_predict(pairs):
            release.wait(timeout=30)
            return (
                np.zeros(len(pairs), dtype=np.float64),
                np.zeros(len(pairs), dtype=np.int64),
            )

        pair = _pairs_of(splits.test)[:1]
        batcher = MicroBatcher(
            slow_predict,
            max_batch_pairs=1,
            max_delay_seconds=0.0,
            queue_depth=2,
        )
        futures = []
        overloaded = False
        try:
            # Worker holds the first batch; the depth-2 queue then fills
            # and some submit must shed. Timing decides exactly which.
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline and not overloaded:
                try:
                    futures.append(batcher.submit(pair))
                except ServerOverloadedError:
                    overloaded = True
            assert overloaded, "queue never filled"
            assert futures, "no request was accepted before shedding"
        finally:
            release.set()
            batcher.close()
        for future in futures:
            assert future.result(timeout=5)[0].shape == (1,)


class TestMatchEngine:
    def test_matches_offline_pipeline_exactly(self, engine, served_model):
        _path, pipeline, splits = served_model
        probabilities, labels = engine.match_pairs(_pairs_of(splits.test))
        assert np.array_equal(probabilities, pipeline.predict_proba(splits.test))
        assert np.array_equal(labels, pipeline.predict(splits.test))

    def test_rejects_non_pipeline_file(self, tmp_path):
        path = tmp_path / "junk.pkl"
        save_model({"not": "a pipeline"}, path)
        with pytest.raises(ServingError, match="servable"):
            MatchEngine(path, "S-FZ")

    def test_schema_violation_raises(self, engine):
        from repro.exceptions import SchemaError

        with pytest.raises(SchemaError):
            engine.match_pairs(
                [{"left": {"bogus": 1}, "right": {"bogus": 2}}]
            )

    def test_reload_bumps_generation(self, engine):
        first = engine.generation
        assert engine.reload() == first + 1

    def test_corrupt_reload_keeps_old_model(self, tmp_path, served_model):
        """A bad file appearing on disk must not take down the daemon:
        reload fails loudly, the installed model keeps answering."""
        path, _pipeline, splits = served_model
        scratch = tmp_path / "model.pkl"
        scratch.write_bytes(path.read_bytes())
        engine = MatchEngine(scratch, "S-FZ")
        pairs = _pairs_of(splits.test)[:4]
        before = engine.match_pairs(pairs)

        scratch.write_bytes(b"\x80\x64garbage")
        with pytest.raises(PersistenceError):
            engine.reload()
        assert engine.generation == 1
        after = engine.match_pairs(pairs)
        assert np.array_equal(before[0], after[0])


class TestMatchDaemon:
    def test_healthz_and_match(self, harness, served_model):
        _path, pipeline, splits = served_model
        status, payload = harness.request("GET", "/healthz")
        assert status == 200 and payload["status"] == "ok"

        pairs = _pairs_of(splits.test)[:3]
        status, payload = harness.request("POST", "/match", {"pairs": pairs})
        assert status == 200
        expected = pipeline.predict_proba(splits.test.subset(range(3)))
        assert payload["probabilities"] == [float(p) for p in expected]
        assert len(payload["labels"]) == 3

    def test_match_empty_pairs(self, harness):
        status, payload = harness.request("POST", "/match", {"pairs": []})
        assert status == 200
        assert payload["probabilities"] == []
        assert payload["labels"] == []

    def test_bad_requests_get_400(self, harness):
        status, _ = harness.request(
            "POST",
            "/match",
            {"pairs": [{"left": {"bogus": 1}, "right": {"bogus": 2}}]},
        )
        assert status == 400
        status, _ = harness.request("POST", "/match", {"nope": 1})
        assert status == 400
        status, _ = harness.request("POST", "/match", {"pairs": "nope"})
        assert status == 400

    def test_unknown_path_is_404(self, harness):
        assert harness.request("GET", "/nope")[0] == 404
        assert harness.request("POST", "/nope")[0] == 404

    def test_model_replaced_on_disk_then_reload(
        self, tmp_path, served_model
    ):
        """Satellite: swap the model file under a live daemon; /reload
        picks it up and predictions change accordingly."""
        path, pipeline, splits = served_model
        scratch = tmp_path / "model.pkl"
        scratch.write_bytes(path.read_bytes())
        engine = MatchEngine(scratch, "S-FZ")
        harness = _DaemonHarness(engine, max_delay_seconds=0.001)
        try:
            pairs = _pairs_of(splits.test)[:4]
            _, before = harness.request("POST", "/match", {"pairs": pairs})
            assert before["model_generation"] == 1

            retrained = EMPipeline(automl="autosklearn", seed=11, max_models=2)
            retrained.fit(splits.train, splits.valid)
            save_model(retrained, scratch)
            status, payload = harness.request("POST", "/reload")
            assert status == 200 and payload["model_generation"] == 2

            _, after = harness.request("POST", "/match", {"pairs": pairs})
            assert after["model_generation"] == 2
            expected = retrained.predict_proba(splits.test.subset(range(4)))
            assert after["probabilities"] == [float(p) for p in expected]

            # Corrupt file: 500, old model keeps serving.
            scratch.write_bytes(b"not a pickle")
            status, payload = harness.request("POST", "/reload")
            assert status == 500 and "error" in payload
            _, still = harness.request("POST", "/match", {"pairs": pairs})
            assert still["probabilities"] == after["probabilities"]
        finally:
            harness.stop()

    def test_shutdown_endpoint_stops_server(self, engine):
        harness = _DaemonHarness(engine, max_delay_seconds=0.001)
        status, payload = harness.request("POST", "/shutdown")
        assert status == 200 and payload["status"] == "shutting down"
        harness.thread.join(timeout=10)
        assert not harness.thread.is_alive()
        harness.daemon.close()

    def test_request_mid_shutdown_fails_typed(self, engine, served_model):
        """A request arriving while the batcher is closing gets a clean
        503/ServerClosedError, never a hang."""
        _path, _pipeline, splits = served_model
        harness = _DaemonHarness(engine, max_delay_seconds=0.001)
        try:
            harness.daemon.batcher.close()
            status, payload = harness.request(
                "POST",
                "/match",
                {"pairs": _pairs_of(splits.test)[:1]},
            )
            assert status == 503
            assert "closed" in payload["error"]
        finally:
            harness.stop()

    def test_metrics_endpoint_reports_latency_percentiles(
        self, harness, served_model
    ):
        _path, _pipeline, splits = served_model
        pairs = _pairs_of(splits.test)[:2]
        with telemetry.recording():
            for _ in range(3):
                status, _ = harness.request(
                    "POST", "/match", {"pairs": pairs}
                )
                assert status == 200
            _, payload = harness.request("GET", "/metrics")
        latency = payload["histograms"]["serving.request.seconds"]
        assert latency["count"] == 3
        assert 0 < latency["p50"] <= latency["p99"]
        assert payload["counters"]["serving.request.count"] >= 3
        assert payload["counters"]["serving.batch.fused_pairs"] >= 6


class TestServingFaultSeams:
    def test_request_read_fault_settles(self, engine, served_model):
        """An injected fault on the request-read seam answers 503 and
        keeps the accounting invariant injected == recovered + fatal."""
        _path, _pipeline, splits = served_model
        harness = _DaemonHarness(engine, max_delay_seconds=0.001)
        plan = FaultPlan(
            specs=[FaultSpec("serving.request.read", "io", times=1)]
        )
        try:
            with telemetry.recording() as recorder:
                with faults.injecting(plan):
                    status, payload = harness.request(
                        "POST",
                        "/match",
                        {"pairs": _pairs_of(splits.test)[:1]},
                    )
                    assert status == 503
                    assert "transient" in payload["error"]
                    # The daemon is healthy again immediately.
                    status, _ = harness.request(
                        "POST",
                        "/match",
                        {"pairs": _pairs_of(splits.test)[:1]},
                    )
                    assert status == 200
        finally:
            harness.stop()
        seen = {c.name: c.value for c in recorder.metrics.counters.values()}
        assert seen["faults.injected.io"] == 1
        assert seen["faults.recovered.io"] == 1
        assert "faults.fatal.io" not in seen

    def test_response_write_fault_settles(self, engine, served_model):
        """A fault on the response socket drops that connection but the
        daemon survives and the fault is accounted recovered."""
        _path, _pipeline, splits = served_model
        harness = _DaemonHarness(engine, max_delay_seconds=0.001)
        plan = FaultPlan(
            specs=[FaultSpec("serving.response.write", "io", times=1)]
        )
        try:
            with telemetry.recording() as recorder:
                with faults.injecting(plan):
                    with pytest.raises((http.client.HTTPException, OSError)):
                        harness.request(
                            "POST",
                            "/match",
                            {"pairs": _pairs_of(splits.test)[:1]},
                        )
                    status, _ = harness.request("GET", "/healthz")
                    assert status == 200
        finally:
            harness.stop()
        seen = {c.name: c.value for c in recorder.metrics.counters.values()}
        assert seen["faults.injected.io"] == 1
        assert seen["faults.recovered.io"] == 1

    def test_model_load_fault_retries(self, served_model):
        """Transient io faults on the model-load seam are retried by
        io_retry and settle recovered; the engine still comes up."""
        path, _pipeline, _splits = served_model
        plan = FaultPlan(
            specs=[FaultSpec("serving.model.load", "io", times=1)]
        )
        with telemetry.recording() as recorder:
            with faults.injecting(plan):
                engine = MatchEngine(path, "S-FZ")
        assert engine.generation == 1
        seen = {c.name: c.value for c in recorder.metrics.counters.values()}
        assert seen["faults.injected.io"] == 1
        assert seen["faults.recovered.io"] == 1

    def test_model_load_fault_exhaustion_is_typed(self, served_model):
        from repro.faults import DEFAULT_ATTEMPTS

        path, _pipeline, _splits = served_model
        plan = FaultPlan(
            specs=[
                FaultSpec(
                    "serving.model.load", "io", times=DEFAULT_ATTEMPTS
                )
            ]
        )
        with telemetry.recording() as recorder:
            with faults.injecting(plan):
                with pytest.raises(ServingError, match="cannot read"):
                    MatchEngine(path, "S-FZ")
        seen = {c.name: c.value for c in recorder.metrics.counters.values()}
        assert seen["faults.injected.io"] == DEFAULT_ATTEMPTS
        assert seen["faults.fatal.io"] == DEFAULT_ATTEMPTS


class TestLoadtest:
    def test_request_stream_is_deterministic(self):
        first = build_requests("S-FZ", 5, 2, seed=3, scale=0.02)
        second = build_requests("S-FZ", 5, 2, seed=3, scale=0.02)
        assert first == second
        assert build_requests("S-FZ", 5, 2, seed=4, scale=0.02) != first

    def test_loadtest_reports_latency_and_throughput(
        self, engine, served_model
    ):
        harness = _DaemonHarness(engine, max_delay_seconds=0.002)
        try:
            with telemetry.recording():
                report = run_loadtest(
                    "127.0.0.1",
                    harness.port,
                    "S-FZ",
                    requests=12,
                    concurrency=3,
                    pairs_per_request=2,
                    scale=0.02,
                )
        finally:
            harness.stop()
        assert report["errors"] == 0
        assert report["completed"] == 12
        assert report["requests_per_second"] > 0
        latency = report["client_latency_ms"]
        assert 0 < latency["p50"] <= latency["p99"]
        server = report["server_metrics"]
        assert server["counters"]["serving.request.count"] >= 12
        assert (
            server["histograms"]["serving.request.seconds"]["count"] >= 12
        )
