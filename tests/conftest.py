"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import load_dataset, split_dataset
from repro.data.splits import DatasetSplits
from repro.data.schema import EMDataset


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_sda() -> EMDataset:
    """A small S-DA (DBLP-ACM style) dataset shared across tests."""
    return load_dataset("S-DA", scale=0.04)


@pytest.fixture(scope="session")
def tiny_sda_splits(tiny_sda) -> DatasetSplits:
    return split_dataset(tiny_sda)


@pytest.fixture(scope="session")
def linear_problem(rng):
    """A separable-ish binary problem: (X, y, X_test, y_test)."""
    n, d = 600, 12
    w = rng.normal(size=d)

    def make(count):
        X = rng.normal(size=(count, d))
        y = (X @ w + 0.5 * rng.normal(size=count) > 0.25).astype(np.int64)
        return X, y

    X, y = make(n)
    X_test, y_test = make(250)
    return X, y, X_test, y_test
