"""Integration tests: DeepMatcher baseline and the headline EMPipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import load_dataset, split_dataset
from repro.exceptions import NotFittedError
from repro.matching import DeepMatcherHybrid, EMPipeline, evaluate_matcher
from repro.adapter import EMAdapter


@pytest.fixture(scope="module")
def sda_splits():
    return split_dataset(load_dataset("S-DA", scale=0.04))


class TestDeepMatcher:
    @pytest.fixture(scope="class")
    def fitted(self, request):
        splits = split_dataset(load_dataset("S-DA", scale=0.04))
        matcher = DeepMatcherHybrid(seed=3)
        matcher.fit(splits.train, splits.valid)
        return matcher, splits

    def test_learns_easy_dataset(self, fitted):
        matcher, splits = fitted
        from repro.ml.metrics import f1_score

        f1 = f1_score(splits.test.labels, matcher.predict(splits.test))
        assert f1 > 0.75

    def test_featurize_shape(self, fitted):
        matcher, splits = fitted
        features = matcher.featurize(splits.test)
        n_attrs = len(splits.test.schema.attributes) + 1  # + record level.
        per_attr = 2 * matcher.embedding_dim + 3
        assert features.shape == (len(splits.test), n_attrs * per_attr)

    def test_simulated_hours_positive(self, fitted):
        matcher, _ = fitted
        assert matcher.simulated_hours_ > 0

    def test_unfitted_raises(self, sda_splits):
        with pytest.raises(NotFittedError):
            DeepMatcherHybrid().predict(sda_splits.test)

    def test_identical_strings_align_perfectly(self):
        matcher = DeepMatcherHybrid()
        features = matcher._attribute_comparison("sony camera", "sony camera")
        dim = matcher.embedding_dim
        cover_l, cover_r = features[2 * dim], features[2 * dim + 1]
        assert cover_l == pytest.approx(1.0, abs=1e-6)
        assert cover_r == pytest.approx(1.0, abs=1e-6)

    def test_disjoint_strings_low_coverage(self):
        matcher = DeepMatcherHybrid()
        features = matcher._attribute_comparison("aaa bbb", "xyz qrs")
        dim = matcher.embedding_dim
        assert features[2 * dim] < 0.6

    def test_empty_pair_flag(self):
        matcher = DeepMatcherHybrid()
        features = matcher._attribute_comparison("", "")
        assert features[-1] == 1.0


class TestEMPipeline:
    @pytest.fixture(scope="class")
    def fitted(self):
        splits = split_dataset(load_dataset("S-DA", scale=0.04))
        pipeline = EMPipeline(
            adapter=EMAdapter("hybrid", "albert"),
            automl="autosklearn",
            budget_hours=1.0,
            max_models=5,
        )
        pipeline.fit(splits.train, splits.valid)
        return pipeline, splits

    def test_scores_reasonably(self, fitted):
        pipeline, splits = fitted
        assert pipeline.score(splits.test) > 0.6

    def test_detailed_score_keys(self, fitted):
        pipeline, splits = fitted
        scores = pipeline.detailed_score(splits.test)
        assert set(scores) == {"f1", "precision", "recall"}
        assert all(0 <= v <= 1 for v in scores.values())

    def test_predict_proba_range(self, fitted):
        pipeline, splits = fitted
        proba = pipeline.predict_proba(splits.test)
        assert ((proba >= 0) & (proba <= 1)).all()

    def test_simulated_hours_reported(self, fitted):
        pipeline, _ = fitted
        assert pipeline.simulated_hours_ > 0

    def test_unfitted_raises(self, sda_splits):
        with pytest.raises(NotFittedError):
            EMPipeline(max_models=3).predict(sda_splits.test)

    def test_accepts_automl_instance(self):
        from repro.automl import H2OAutoMLLike

        pipeline = EMPipeline(automl=H2OAutoMLLike(max_models=3))
        assert pipeline.automl.name == "h2o"

    def test_evaluate_matcher_contract(self, sda_splits):
        pipeline = EMPipeline(
            adapter=EMAdapter("attr", "dbert"),
            automl="h2o",
            budget_hours=1.0,
            max_models=4,
        )
        result = evaluate_matcher(pipeline, sda_splits, system_name="test-run")
        assert result.system == "test-run"
        assert 0 <= result.f1 <= 100
        assert result.dataset == "S-DA"
