"""Tests for ``repro.bench``: the benchmark registry, runner, payload
schema, environment stamp, tolerance gate, and the ``repro-em bench``
CLI surface.

Workload specs here are synthetic (microsecond bodies inside a
``scratch_registry``); the committed quick-tier baselines at the repo
root are checked for schema validity, not re-measured.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import telemetry
from repro.bench import (
    AUTO_METRIC_POLICIES,
    BENCH_SCHEMA,
    SCHEMA_VERSION,
    BenchmarkSpec,
    MetricPolicy,
    baseline_path,
    build_payload,
    compare_payload,
    environment_stamp,
    get_spec,
    load_payload,
    load_suites,
    register,
    registered_specs,
    run_spec,
    scratch_registry,
    validate_payload,
    write_payload,
)
from repro.bench.cli import main as bench_main
from repro.telemetry import memory_profile, peak_rss_kb

REPO_ROOT = Path(__file__).resolve().parents[1]


def _spec(name="demo", tier="quick", run=None, **kwargs):
    return BenchmarkSpec(
        name=name,
        tier=tier,
        run=run or (lambda ctx: {}),
        **kwargs,
    )


# ------------------------------------------------------------- registry


class TestRegistry:
    def test_register_and_lookup(self):
        with scratch_registry():
            spec = register(_spec("a"))
            assert get_spec("a") is spec
            assert registered_specs() == [spec]

    def test_duplicate_name_rejected(self):
        with scratch_registry():
            register(_spec("a"))
            with pytest.raises(ValueError, match="already registered"):
                register(_spec("a", tier="full"))

    def test_tier_and_only_filters(self):
        with scratch_registry():
            register(_spec("beta", tier="full"))
            register(_spec("alpha"))
            register(_spec("gamma"))
            assert [s.name for s in registered_specs()] == [
                "alpha", "beta", "gamma",
            ]
            assert [s.name for s in registered_specs(tier="full")] == ["beta"]
            assert [
                s.name for s in registered_specs(only=("gamma", "alpha"))
            ] == ["alpha", "gamma"]
            assert [
                s.name for s in registered_specs(tier="quick", only=("alpha",))
            ] == ["alpha"]

    def test_unknown_only_name_raises(self):
        with scratch_registry():
            register(_spec("a"))
            with pytest.raises(KeyError, match="nope"):
                registered_specs(only=("a", "nope"))

    def test_unknown_get_spec_raises(self):
        with scratch_registry():
            with pytest.raises(KeyError, match="unknown benchmark"):
                get_spec("missing")

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError, match="tier"):
            _spec("a", tier="hourly")
        with pytest.raises(ValueError, match="invalid benchmark name"):
            _spec("")
        with pytest.raises(ValueError, match="invalid benchmark name"):
            _spec("a/b")
        with pytest.raises(ValueError, match="duplicate metric"):
            _spec("a", metrics=(MetricPolicy("m"), MetricPolicy("m")))
        with pytest.raises(ValueError, match="direction"):
            MetricPolicy("m", direction="sideways")
        with pytest.raises(ValueError, match="tolerance"):
            MetricPolicy("m", tolerance=-0.1)

    def test_scratch_registry_restores(self):
        load_suites()
        before = {s.name for s in registered_specs()}
        with scratch_registry():
            assert registered_specs() == []
            register(_spec("ephemeral"))
        assert {s.name for s in registered_specs()} == before
        assert "ephemeral" not in {s.name for s in registered_specs()}

    def test_policy_resolution_order(self):
        declared = MetricPolicy("wall_seconds", tolerance=0.5)
        spec = _spec("a", metrics=(declared,))
        assert spec.policy_for("wall_seconds") is declared
        auto = _spec("b").policy_for("wall_seconds")
        assert auto is AUTO_METRIC_POLICIES["wall_seconds"]
        fallback = _spec("b").policy_for("surprise")
        assert fallback.gate is False
        assert fallback.direction == "two_sided"

    def test_builtin_suites_register_idempotently(self):
        load_suites()
        load_suites()
        names = {s.name for s in registered_specs()}
        assert {"analysis", "adapter_transform", "table3"} <= names
        quick = {s.name for s in registered_specs(tier="quick")}
        full = {s.name for s in registered_specs(tier="full")}
        assert {"table1", "table2", "table3", "table4", "table5"} <= full
        assert quick.isdisjoint(full)


# --------------------------------------------------------------- runner


class TestRunner:
    def test_run_records_auto_metrics_and_detail(self):
        def body(ctx):
            # Large enough to bypass pymalloc's pools: small allocations
            # can be served from warm arenas without a traceable malloc,
            # leaving the tracemalloc peak at exactly zero.
            ballast = bytearray(256 * 1024)
            ctx.metric("answer", 42 + 0 * len(ballast))
            return {"kind": "demo"}

        result = run_spec(_spec(run=body))
        assert result.detail == {"kind": "demo"}
        assert result.metrics["answer"] == 42.0
        assert result.metrics["wall_seconds"] >= 0.0
        assert result.metrics["tracemalloc_peak_kb"] > 0.0
        assert result.name == "demo" and result.tier == "quick"

    def test_profile_memory_off(self):
        result = run_spec(_spec(run=lambda ctx: {}, profile_memory=False))
        assert "tracemalloc_peak_kb" not in result.metrics
        assert "peak_rss_kb" not in result.metrics

    def test_counters_copied_from_isolated_recorder(self):
        def body(ctx):
            telemetry.counter("demo.hits").inc(3)
            return {}

        spec = _spec(run=body, counters=("demo.hits", "demo.misses"))
        result = run_spec(spec)
        assert result.metrics["demo.hits"] == 3.0
        assert result.metrics["demo.misses"] == 0.0  # absent => 0
        # The recorder is per-run: a second run starts from zero.
        assert run_spec(spec).metrics["demo.hits"] == 3.0
        assert telemetry.active() is None

    def test_explicit_metric_overrides_auto(self):
        def body(ctx):
            ctx.metric("wall_seconds", 123.0)
            return {}

        assert run_spec(_spec(run=body)).metrics["wall_seconds"] == 123.0

    def test_non_dict_detail_rejected(self):
        with pytest.raises(TypeError, match="must return a dict"):
            run_spec(_spec(run=lambda ctx: [1, 2]))


class TestMemoryProfile:
    def test_memory_profile_fills_on_exit(self):
        with memory_profile() as profile:
            blob = [list(range(1000)) for _ in range(100)]
        assert len(blob) == 100
        assert profile.tracemalloc_peak_kb > 0.0
        assert profile.peak_rss_kb >= 0.0

    def test_peak_rss_monotone(self):
        first = peak_rss_kb()
        assert first >= 0.0
        assert peak_rss_kb() >= first


# ------------------------------------------------- payloads + the stamp


class TestPayload:
    def _result(self, **metrics):
        def body(ctx):
            for name, value in metrics.items():
                ctx.metric(name, value)
            return {"note": "synthetic"}

        policies = tuple(MetricPolicy(name) for name in metrics)
        return run_spec(_spec(run=body, metrics=policies))

    def test_build_validate_roundtrip(self, tmp_path):
        payload = build_payload(self._result(latency=1.5))
        validate_payload(payload)
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["metrics"]["latency"]["value"] == 1.5
        assert payload["metrics"]["latency"]["gate"] is True

        target = write_payload(payload, baseline_path(tmp_path, "demo"))
        assert target == tmp_path / "BENCH_demo.json"
        assert load_payload(target) == json.loads(
            json.dumps(payload)
        )
        assert load_payload(tmp_path / "BENCH_absent.json") is None

    def test_invalid_payload_rejected(self):
        payload = build_payload(self._result(latency=1.5))
        del payload["environment"]
        with pytest.raises(ValueError):
            validate_payload(payload)
        payload = build_payload(self._result(latency=1.5))
        payload["metrics"]["latency"].pop("tolerance")
        with pytest.raises(ValueError):
            validate_payload(payload)

    def test_environment_stamp_stable(self):
        assert environment_stamp() == environment_stamp()
        stamp = environment_stamp()
        assert {
            "python", "implementation", "platform", "machine",
            "cpu_count", "numpy", "repro", "scale", "max_models",
        } <= stamp.keys()

    def test_committed_schema_doc_is_current(self):
        """``docs/bench_schema.json`` must equal ``BENCH_SCHEMA``.

        Regenerate with::

            PYTHONPATH=src python - <<'EOF'
            import json
            from repro.bench.schema import BENCH_SCHEMA
            with open("docs/bench_schema.json", "w") as fh:
                json.dump(BENCH_SCHEMA, fh, indent=2, sort_keys=True)
                fh.write("\n")
            EOF
        """
        committed = json.loads(
            (REPO_ROOT / "docs" / "bench_schema.json").read_text()
        )
        assert committed == BENCH_SCHEMA


# ------------------------------------------------------------- the gate


def _payload(metrics: dict[str, tuple[float, MetricPolicy]]) -> dict:
    def body(ctx):
        for name, (value, _) in metrics.items():
            ctx.metric(name, value)
        return {}

    policies = tuple(policy for _, policy in metrics.values())
    # No memory profiling: tracemalloc peaks on a synthetic no-op body
    # are tiny and jittery, and a gated auto metric would flake the
    # comparisons these tests pin down.
    return build_payload(
        run_spec(_spec(run=body, metrics=policies, profile_memory=False))
    )


class TestToleranceGate:
    def test_missing_baseline_reported_not_failed_by_metrics(self):
        current = _payload({"m": (1.0, MetricPolicy("m"))})
        comparison = compare_payload(current, None)
        assert comparison.baseline_found is False
        assert comparison.ok  # no metric failures...
        assert "NO BASELINE" in comparison.render()  # ...but loudly so

    def test_within_band_ok(self):
        policy = MetricPolicy("m", tolerance=0.25)
        baseline = _payload({"m": (1.0, policy)})
        current = _payload({"m": (1.2, policy)})
        comparison = compare_payload(current, baseline)
        assert comparison.ok
        (metric,) = [c for c in comparison.comparisons if c.name == "m"]
        assert metric.status == "ok"
        assert metric.delta == pytest.approx(0.2)

    def test_regression_names_metric_and_delta(self):
        """The acceptance check: a synthetically slowed metric fails the
        gate and the error names the metric and the relative delta."""
        policy = MetricPolicy("latency", unit="s", tolerance=0.25)
        baseline = _payload({"latency": (1.0, policy)})
        slowed = _payload({"latency": (2.0, policy)})  # +100% > +25%
        comparison = compare_payload(slowed, baseline)
        assert not comparison.ok
        (failure,) = comparison.failures
        assert failure.name == "latency"
        assert failure.status == "regression"
        assert failure.delta == pytest.approx(1.0)
        assert "latency" in failure.message
        assert "+100.0%" in failure.message
        assert "REGRESSED" in failure.message
        assert "REGRESSION" in comparison.render()

    def test_improvement_is_not_a_failure(self):
        policy = MetricPolicy("latency", tolerance=0.25)
        baseline = _payload({"latency": (2.0, policy)})
        current = _payload({"latency": (1.0, policy)})
        comparison = compare_payload(current, baseline)
        assert comparison.ok
        (metric,) = [c for c in comparison.comparisons if c.name == "latency"]
        assert metric.status == "improvement"

    def test_higher_better_direction(self):
        policy = MetricPolicy(
            "throughput", direction="higher_better", tolerance=0.25
        )
        baseline = _payload({"throughput": (100.0, policy)})
        collapsed = _payload({"throughput": (50.0, policy)})
        assert not compare_payload(collapsed, baseline).ok
        jittered = _payload({"throughput": (90.0, policy)})
        assert compare_payload(jittered, baseline).ok

    def test_two_sided_zero_tolerance(self):
        policy = MetricPolicy("count", direction="two_sided", tolerance=0.0)
        baseline = _payload({"count": (12.0, policy)})
        assert compare_payload(_payload({"count": (12.0, policy)}), baseline).ok
        assert not compare_payload(
            _payload({"count": (13.0, policy)}), baseline
        ).ok
        assert not compare_payload(
            _payload({"count": (11.0, policy)}), baseline
        ).ok

    def test_zero_baseline_uses_absolute_delta(self):
        policy = MetricPolicy("errors", direction="two_sided", tolerance=0.0)
        baseline = _payload({"errors": (0.0, policy)})
        comparison = compare_payload(
            _payload({"errors": (2.0, policy)}), baseline
        )
        assert not comparison.ok
        (failure,) = comparison.failures
        assert "absolute" in failure.message

    def test_ungated_metric_never_fails(self):
        policy = MetricPolicy("rss", gate=False)
        baseline = _payload({"rss": (100.0, policy)})
        comparison = compare_payload(
            _payload({"rss": (1000.0, policy)}), baseline
        )
        assert comparison.ok
        (metric,) = [c for c in comparison.comparisons if c.name == "rss"]
        assert metric.status == "informational"

    def test_new_metric_reported_not_failed(self):
        policy = MetricPolicy("m")
        baseline = _payload({"m": (1.0, policy)})
        current = _payload(
            {"m": (1.0, policy), "extra": (5.0, MetricPolicy("extra"))}
        )
        comparison = compare_payload(current, baseline)
        assert comparison.ok
        statuses = {c.name: c.status for c in comparison.comparisons}
        assert statuses["extra"] == "new-metric"

    def test_missing_gated_metric_fails(self):
        policy = MetricPolicy("m")
        baseline = _payload({"m": (1.0, policy)})
        current = _payload({})
        comparison = compare_payload(current, baseline)
        assert not comparison.ok
        (failure,) = comparison.failures
        assert failure.status == "missing-metric"
        assert failure.name == "m"

    def test_policies_come_from_current_payload(self):
        """A PR that tightens a tolerance re-judges the old numbers."""
        loose = MetricPolicy("m", tolerance=2.0)
        tight = MetricPolicy("m", tolerance=0.1)
        baseline = _payload({"m": (1.0, loose)})
        current = _payload({"m": (1.5, tight)})
        assert not compare_payload(current, baseline).ok

    def test_environment_mismatch_noted(self):
        policy = MetricPolicy("m", tolerance=1.0)
        baseline = _payload({"m": (1.0, policy)})
        baseline["environment"]["cpu_count"] += 1
        comparison = compare_payload(_payload({"m": (1.0, policy)}), baseline)
        assert comparison.environment_matches is False
        assert "different environment" in comparison.render()


# ------------------------------------------------------------------ cli


def _register_cli_spec(value: float = 1.0):
    def body(ctx):
        ctx.metric("latency", value)
        return {"note": "cli"}

    register(
        _spec(
            "clidemo",
            run=body,
            metrics=(MetricPolicy("latency", unit="s", tolerance=0.25),),
            profile_memory=False,
        )
    )


class TestBenchCli:
    def test_list(self, capsys):
        assert bench_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "analysis" in out and "[quick]" in out
        assert bench_main(["--list", "--json"]) == 0
        listing = json.loads(capsys.readouterr().out)
        assert {"name", "tier", "description", "metrics"} <= listing[0].keys()

    def test_unknown_only_is_usage_error(self, capsys):
        with pytest.raises(SystemExit, match="unknown benchmark"):
            bench_main(["--only", "not_a_spec"])

    def test_update_then_gate_then_regression(self, tmp_path, capsys):
        out_dir = str(tmp_path / "out")
        base_dir = str(tmp_path / "base")
        common = ["--only", "clidemo", "--output-dir", out_dir,
                  "--baseline-dir", base_dir]

        with scratch_registry():
            _register_cli_spec(value=1.0)

            # No baseline yet: the run fails and says how to create one.
            assert bench_main(common) == 1
            assert "NO BASELINE" in capsys.readouterr().out

            assert bench_main(common + ["--update-baselines"]) == 0
            capsys.readouterr()
            baseline_file = Path(base_dir) / "BENCH_clidemo.json"
            assert baseline_file.exists()
            validate_payload(json.loads(baseline_file.read_text()))

            # Same value: within band, exit 0, snapshot emitted.
            assert bench_main(common) == 0
            out = capsys.readouterr().out
            assert "within tolerance" in out
            snapshot_file = Path(out_dir) / "BENCH_clidemo.json"
            assert snapshot_file.exists()

        # Synthetically slowed spec: the gate exits 1 and names the
        # metric and delta.
        with scratch_registry():
            _register_cli_spec(value=2.0)
            assert bench_main(common) == 1
            out = capsys.readouterr().out
            assert "latency" in out
            assert "+100.0%" in out
            assert "REGRESSED" in out

    def test_json_report(self, tmp_path, capsys):
        out_dir = str(tmp_path / "out")
        base_dir = str(tmp_path / "base")
        common = ["--only", "clidemo", "--output-dir", out_dir,
                  "--baseline-dir", base_dir, "--json"]
        with scratch_registry():
            _register_cli_spec(value=1.0)
            assert bench_main(common + ["--update-baselines"]) == 0
            capsys.readouterr()
            assert bench_main(common) == 0
            report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        (spec_report,) = report["specs"]
        assert spec_report["name"] == "clidemo"
        assert spec_report["comparison"]["ok"] is True
        assert spec_report["metrics"]["latency"] == 1.0

    def test_repro_em_bench_verb_wired(self, capsys):
        from repro.cli import main as repro_main

        assert repro_main(["bench", "--list"]) == 0
        assert "analysis" in capsys.readouterr().out


# ----------------------------------------------- committed baselines


class TestCommittedBaselines:
    def test_quick_tier_baselines_committed_and_valid(self):
        """Every quick-tier spec ships a schema-valid baseline at the
        repo root, so CI's regression gate always has a reference."""
        load_suites()
        for spec in registered_specs(tier="quick"):
            path = baseline_path(REPO_ROOT, spec.name)
            assert path.exists(), (
                f"missing committed baseline {path.name}; run "
                f"`repro-em bench --only {spec.name} --update-baselines`"
            )
            payload = json.loads(path.read_text())
            validate_payload(payload)
            assert payload["name"] == spec.name
            assert payload["tier"] == "quick"
            assert payload["schema_version"] == SCHEMA_VERSION
            # Every gated declared metric is present in the baseline.
            gated = {p.name for p in spec.metrics if p.gate}
            assert gated <= payload["metrics"].keys()
