"""Tests for the classical model zoo: every family learns, clones, and
exposes calibrated-ish probabilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import NotFittedError
from repro.ml import (
    DecisionTreeClassifier,
    ExtraTreesClassifier,
    GaussianNaiveBayes,
    GradientBoostingClassifier,
    KNeighborsClassifier,
    LinearSVMClassifier,
    LogisticRegression,
    RandomForestClassifier,
    clone,
    f1_score,
)
from repro.ml.base import check_Xy

MODEL_FACTORIES = {
    "logreg": lambda: LogisticRegression(),
    "svm": lambda: LinearSVMClassifier(),
    "nb": lambda: GaussianNaiveBayes(),
    "knn": lambda: KNeighborsClassifier(n_neighbors=7),
    "tree": lambda: DecisionTreeClassifier(max_depth=8, seed=0),
    "rf": lambda: RandomForestClassifier(n_estimators=20, max_depth=8, seed=0),
    "xt": lambda: ExtraTreesClassifier(n_estimators=20, max_depth=8, seed=0),
    "gbm": lambda: GradientBoostingClassifier(n_estimators=60, max_depth=3, seed=0),
}


@pytest.mark.parametrize("name", MODEL_FACTORIES, ids=str)
class TestAllModels:
    def test_learns_linear_problem(self, name, linear_problem):
        X, y, X_test, y_test = linear_problem
        model = MODEL_FACTORIES[name]()
        model.fit(X, y)
        assert f1_score(y_test, model.predict(X_test)) > 0.6

    def test_proba_shape_and_sum(self, name, linear_problem):
        X, y, X_test, _ = linear_problem
        model = MODEL_FACTORIES[name]().fit(X, y)
        proba = model.predict_proba(X_test)
        assert proba.shape == (len(X_test), 2)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-6)
        assert (proba >= 0).all()

    def test_unfitted_raises(self, name, linear_problem):
        _, _, X_test, _ = linear_problem
        with pytest.raises(NotFittedError):
            MODEL_FACTORIES[name]().predict(X_test)

    def test_clone_is_unfitted_with_same_params(self, name, linear_problem):
        X, y, _, _ = linear_problem
        model = MODEL_FACTORIES[name]().fit(X, y)
        copy = clone(model)
        assert copy.get_params() == model.get_params()
        assert not copy.is_fitted

    def test_deterministic_given_seed(self, name, linear_problem):
        X, y, X_test, _ = linear_problem
        a = MODEL_FACTORIES[name]().fit(X, y).predict_proba(X_test)
        b = MODEL_FACTORIES[name]().fit(X, y).predict_proba(X_test)
        np.testing.assert_allclose(a, b)


class TestValidation:
    def test_check_xy_rejects_1d(self):
        with pytest.raises(ValueError):
            check_Xy(np.zeros(5), np.zeros(5))

    def test_check_xy_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            check_Xy(np.zeros((5, 2)), np.zeros(4))

    def test_logreg_rejects_bad_C(self):
        with pytest.raises(ValueError):
            LogisticRegression(C=0.0)

    def test_knn_rejects_nan(self):
        X = np.array([[1.0], [np.nan]])
        with pytest.raises(ValueError):
            KNeighborsClassifier().fit(X, np.array([0, 1]))

    def test_set_params_unknown_raises(self):
        with pytest.raises(ValueError):
            LogisticRegression().set_params(bogus=1)

    def test_set_params_updates(self):
        model = LogisticRegression().set_params(C=5.0)
        assert model.C == 5.0


class TestTreeSpecifics:
    def test_perfect_axis_aligned_split(self):
        X = np.array([[0.0], [0.1], [0.9], [1.0]] * 10)
        y = (X[:, 0] > 0.5).astype(int)
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert (tree.predict(X) == y).all()
        assert tree.depth == 1

    def test_max_depth_zero_is_stump_prior(self):
        X = np.array([[0.0], [1.0]] * 10)
        y = np.array([0, 1] * 10)
        tree = DecisionTreeClassifier(max_depth=0).fit(X, y)
        assert tree.node_count == 1

    def test_min_samples_leaf_prevents_split(self):
        X = np.array([[0.0], [1.0], [0.0], [1.0]])
        y = np.array([0, 1, 0, 1])
        tree = DecisionTreeClassifier(min_samples_leaf=3).fit(X, y)
        assert tree.node_count == 1

    def test_handles_nan_bins(self):
        X = np.array([[0.0], [np.nan], [1.0], [np.nan]] * 10)
        y = np.array([0, 0, 1, 0] * 10)
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        predictions = tree.predict(X)
        assert predictions.shape == (40,)

    def test_sample_weight_changes_tree(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 3))
        y = (X[:, 0] > 0).astype(int)
        w = np.where(y == 1, 10.0, 0.1)
        # Depth-0 stumps expose the (weighted) class prior directly.
        weighted = DecisionTreeClassifier(max_depth=0).fit(X, y, sample_weight=w)
        plain = DecisionTreeClassifier(max_depth=0).fit(X, y)
        assert weighted._values[0][1] > plain._values[0][1]


class TestBoostingSpecifics:
    def test_early_stopping_limits_trees(self, linear_problem):
        X, y, _, _ = linear_problem
        gbm = GradientBoostingClassifier(
            n_estimators=300, early_stopping_rounds=5, seed=0
        ).fit(X, y)
        assert gbm.n_trees_ < 300

    def test_single_class_training(self):
        X = np.zeros((20, 2))
        y = np.ones(20, dtype=int)
        gbm = GradientBoostingClassifier(n_estimators=5).fit(X, y)
        assert (gbm.predict(X) == 1).all()

    def test_subsample_and_colsample(self, linear_problem):
        X, y, X_test, y_test = linear_problem
        gbm = GradientBoostingClassifier(
            n_estimators=60, subsample=0.7, colsample=0.5, seed=1
        ).fit(X, y)
        assert f1_score(y_test, gbm.predict(X_test)) > 0.6

    def test_decision_function_monotone_with_proba(self, linear_problem):
        X, y, X_test, _ = linear_problem
        gbm = GradientBoostingClassifier(n_estimators=30).fit(X, y)
        raw = gbm.decision_function(X_test)
        proba = gbm.predict_proba(X_test)[:, 1]
        order_raw = np.argsort(raw)
        order_proba = np.argsort(proba)
        np.testing.assert_array_equal(order_raw, order_proba)


class TestForestSpecifics:
    def test_more_trees_not_worse(self, linear_problem):
        X, y, X_test, y_test = linear_problem
        small = RandomForestClassifier(n_estimators=3, max_depth=6, seed=0)
        large = RandomForestClassifier(n_estimators=40, max_depth=6, seed=0)
        f_small = f1_score(y_test, small.fit(X, y).predict(X_test))
        f_large = f1_score(y_test, large.fit(X, y).predict(X_test))
        assert f_large >= f_small - 0.05

    def test_class_weight_balanced_raises_recall(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(400, 5))
        y = (X[:, 0] + 0.8 * rng.normal(size=400) > 1.3).astype(int)  # ~10% pos
        plain = RandomForestClassifier(n_estimators=20, seed=0).fit(X, y)
        balanced = RandomForestClassifier(
            n_estimators=20, class_weight="balanced", seed=0
        ).fit(X, y)
        from repro.ml.metrics import recall_score

        assert recall_score(y, balanced.predict(X)) >= recall_score(
            y, plain.predict(X)
        )

    def test_extra_trees_differ_from_rf(self, linear_problem):
        X, y, X_test, _ = linear_problem
        rf = RandomForestClassifier(n_estimators=10, seed=0).fit(X, y)
        xt = ExtraTreesClassifier(n_estimators=10, seed=0).fit(X, y)
        assert not np.allclose(
            rf.predict_proba(X_test), xt.predict_proba(X_test)
        )
