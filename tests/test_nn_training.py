"""Tests for the trainable neural substrate: optimizers and the MLP."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import NotFittedError
from repro.nn.autograd import MLPClassifier
from repro.nn.optim import SGD, Adam


class TestOptimizers:
    def test_sgd_descends_quadratic(self):
        w = np.array([5.0])
        optimizer = SGD(lr=0.1)
        for _ in range(100):
            optimizer.step([w], [2.0 * w])
        assert abs(w[0]) < 1e-3

    def test_sgd_momentum_faster_on_ravine(self):
        def run(momentum):
            w = np.array([5.0, 5.0])
            optimizer = SGD(lr=0.02, momentum=momentum)
            for _ in range(50):
                grad = np.array([2.0 * w[0], 20.0 * w[1]])
                optimizer.step([w], [grad])
            return abs(w[0])

        assert run(0.9) < run(0.0)

    def test_adam_descends(self):
        w = np.array([3.0])
        optimizer = Adam(lr=0.1)
        for _ in range(200):
            optimizer.step([w], [2.0 * w])
        assert abs(w[0]) < 1e-2

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            Adam(lr=0.0)
        with pytest.raises(ValueError):
            SGD(lr=-1.0)

    def test_adam_updates_multiple_params(self):
        a = np.ones((2, 2))
        b = np.ones(2)
        Adam(lr=0.1).step([a, b], [np.ones((2, 2)), np.ones(2)])
        assert (a < 1).all() and (b < 1).all()


class TestMLPClassifier:
    def test_learns_xor(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(-1, 1, size=(600, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(np.float64)
        mlp = MLPClassifier(hidden=32, epochs=80, lr=5e-3, dropout=0.0, seed=1)
        mlp.fit(X, y)
        accuracy = (mlp.predict(X) == y).mean()
        assert accuracy > 0.9

    def test_predict_proba_shape(self):
        X = np.random.default_rng(0).normal(size=(50, 4))
        y = (X[:, 0] > 0).astype(np.float64)
        mlp = MLPClassifier(hidden=8, epochs=5).fit(X, y)
        proba = mlp.predict_proba(X)
        assert proba.shape == (50, 2)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            MLPClassifier().predict_proba(np.zeros((2, 2)))

    def test_early_stopping_restores_best(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 3))
        y = (X[:, 0] > 0).astype(np.float64)
        Xv = rng.normal(size=(50, 3))
        yv = (Xv[:, 0] > 0).astype(np.float64)
        mlp = MLPClassifier(hidden=16, epochs=40, patience=3, seed=0)
        mlp.fit(X, y, Xv, yv)
        assert (mlp.predict(Xv) == yv).mean() > 0.8

    def test_class_weighting_raises_minority_recall(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(500, 4))
        y = (X[:, 0] + 0.8 * rng.normal(size=500) > 1.4).astype(np.float64)
        weighted = MLPClassifier(
            hidden=16, epochs=30, class_weighted=True, dropout=0.0, seed=0
        ).fit(X, y)
        plain = MLPClassifier(
            hidden=16, epochs=30, class_weighted=False, dropout=0.0, seed=0
        ).fit(X, y)
        recall_w = ((weighted.predict(X) == 1) & (y == 1)).sum() / max(1, y.sum())
        recall_p = ((plain.predict(X) == 1) & (y == 1)).sum() / max(1, y.sum())
        assert recall_w >= recall_p

    def test_deterministic(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(100, 3))
        y = (X[:, 0] > 0).astype(np.float64)
        a = MLPClassifier(hidden=8, epochs=10, seed=5).fit(X, y)
        b = MLPClassifier(hidden=8, epochs=10, seed=5).fit(X, y)
        np.testing.assert_allclose(
            a.predict_proba(X), b.predict_proba(X)
        )

    def test_gradient_check(self):
        """Finite-difference check of the manual backward pass."""
        rng = np.random.default_rng(3)
        X = rng.normal(size=(8, 3))
        y = rng.integers(0, 2, size=8).astype(np.float64)
        mlp = MLPClassifier(hidden=4, epochs=1, dropout=0.0,
                            weight_decay=0.0, seed=0)
        mlp.fit(X[:2], y[:2])  # Initialize parameters.

        def loss():
            proba = mlp._forward(X)
            eps = 1e-12
            return -np.mean(
                y * np.log(proba + eps) + (1 - y) * np.log(1 - proba + eps)
            )

        grads = mlp._backward(X, y, 1.0, 1.0, rng)
        for p_idx in (0, 2, 4):  # Weight matrices W1, W2, w3.
            param = mlp._params[p_idx]
            flat_index = 0
            it = np.nditer(param, flags=["multi_index"])
            checked = 0
            while not it.finished and checked < 3:
                idx = it.multi_index
                old = param[idx]
                h = 1e-6
                param[idx] = old + h
                up = loss()
                param[idx] = old - h
                down = loss()
                param[idx] = old
                numeric = (up - down) / (2 * h)
                analytic = np.asarray(grads[p_idx])[idx]
                assert numeric == pytest.approx(analytic, abs=1e-4)
                checked += 1
                flat_index += 1
                it.iternext()
