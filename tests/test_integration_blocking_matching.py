"""Cross-subsystem integration tests: blocking + matching + clustering,
and phonetic keys as blocking keys."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.blocking import (
    SortedNeighborhoodBlocker,
    TokenBlocker,
    blocking_quality,
    cluster_matches,
    make_candidate_dataset,
)
from repro.data.generators import BeerGenerator
from repro.data.splits import split_dataset
from repro.matching import MagellanMatcher
from repro.ml.metrics import f1_score
from repro.text.phonetic import soundex


def build_tables(n_shared=60, n_only=30, seed=11):
    generator = BeerGenerator()
    rng = np.random.default_rng(seed)
    left, right, truth = [], [], set()
    for i in range(n_shared):
        entity = generator.sample_entity(rng)
        l_row, r_row = generator.render_pair(entity, rng)
        left.append(l_row)
        right.append(r_row)
        truth.add((i, i))
    for _ in range(n_only):
        left.append(generator.sample_entity(rng))
        right.append(generator.sample_entity(rng))
    return generator.schema, left, right, truth


class TestEndToEndER:
    @pytest.fixture(scope="class")
    def resolved(self):
        schema, left, right, truth = build_tables()
        blocker = TokenBlocker(["beer_name", "brew_factory_name"])
        candidates = blocker.candidates(left, right)
        dataset = make_candidate_dataset(
            schema, left, right, candidates, truth, name="beers"
        )
        splits = split_dataset(dataset)
        matcher = MagellanMatcher(n_estimators=60, seed=0)
        matcher.fit(splits.train, splits.valid)
        return matcher, dataset, candidates, truth, left

    def test_blocking_keeps_most_matches(self, resolved):
        _m, _d, candidates, truth, left = resolved
        quality = blocking_quality(candidates, truth, len(left), len(left))
        assert quality["pair_completeness"] > 0.8

    def test_matcher_learns_blocked_candidates(self, resolved):
        matcher, dataset, _c, _t, _l = resolved
        splits = split_dataset(dataset)
        f1 = f1_score(splits.test.labels, matcher.predict(splits.test))
        assert f1 > 0.5

    def test_clusters_align_with_truth(self, resolved):
        matcher, dataset, candidates, truth, _l = resolved
        predictions = matcher.predict(dataset)
        clusters = cluster_matches(candidates, predictions.tolist(), 0)
        # Most clusters should contain a true match pair.
        good = 0
        for cluster in clusters:
            lefts = {idx for side, idx in cluster if side == "L"}
            rights = {idx for side, idx in cluster if side == "R"}
            if any((i, j) in truth for i in lefts for j in rights):
                good += 1
        assert clusters
        assert good / len(clusters) > 0.6


class TestPhoneticBlocking:
    def test_soundex_key_blocks_misspelled_names(self):
        left = [{"name": "smith brewing", "key": soundex("smith")}]
        right = [
            {"name": "smyth brewing", "key": soundex("smyth")},
            {"name": "jones brewing", "key": soundex("jones")},
        ]
        blocker = SortedNeighborhoodBlocker("key", window=2)
        candidates = blocker.candidates(left, right)
        assert (0, 0) in candidates

    def test_soundex_keys_agree_for_variants(self):
        assert soundex("catherine") == soundex("katherine")[0].replace(
            "K", "C"
        ) + soundex("katherine")[1:]
