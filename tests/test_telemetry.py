"""Tests for ``repro.telemetry``: spans, metrics, events, exporters.

Covers the off-by-default no-op contract, span nesting and error
capture, metric determinism, the AutoML trial ledger produced by a real
``fit``, adapter instrumentation, JSONL round-trips, schema validation,
and the sync between ``TRACE_SCHEMA`` and ``docs/trace_schema.json``.
"""

from __future__ import annotations

import io
import json
from pathlib import Path

import numpy as np
import pytest

from repro import telemetry
from repro.telemetry import (
    BUDGET_HOURS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TRACE_SCHEMA,
    TelemetryRecorder,
    read_jsonl,
    render_text,
    snapshot,
    validate_instance,
    validate_trace,
    write_jsonl,
)
from repro.telemetry.metrics import NULL_INSTRUMENT
from repro.telemetry.spans import NULL_SPAN

REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture(autouse=True)
def telemetry_off():
    """Every test starts and ends with telemetry disabled."""
    telemetry.disable()
    yield
    telemetry.disable()


# ------------------------------------------------------------ disabled path


class TestDisabledByDefault:
    def test_no_active_recorder(self):
        assert telemetry.active() is None

    def test_span_is_shared_noop(self):
        handle = telemetry.span("anything", key="value")
        assert handle is NULL_SPAN
        with handle as inner:
            assert inner.set(more=1) is inner

    def test_instruments_are_shared_noop(self):
        assert telemetry.counter("c") is NULL_INSTRUMENT
        assert telemetry.gauge("g") is NULL_INSTRUMENT
        assert telemetry.histogram("h") is NULL_INSTRUMENT
        # All of these must silently do nothing.
        telemetry.counter("c").inc()
        telemetry.gauge("g").set(3.0)
        telemetry.histogram("h").observe(0.5)
        telemetry.event("e", detail=1)
        telemetry.trial("s", "gbm", "{}", 0.1, 0.9, True)

    def test_traced_passthrough(self):
        @telemetry.traced()
        def add(a, b):
            return a + b

        assert add(2, 3) == 5


# ------------------------------------------------------------- span capture


class TestSpans:
    def test_recording_restores_previous_state(self):
        assert telemetry.active() is None
        with telemetry.recording() as rec:
            assert telemetry.active() is rec
            with telemetry.recording() as inner:
                assert telemetry.active() is inner
            assert telemetry.active() is rec
        assert telemetry.active() is None

    def test_parent_child_ids_and_attributes(self):
        with telemetry.recording() as rec:
            with telemetry.span("parent", stage="outer") as p:
                with telemetry.span("child", index=3):
                    pass
                p.set(rows=10)
        spans = {s.name: s for s in rec.spans}
        parent, child = spans["parent"], spans["child"]
        assert parent.parent_id is None
        assert child.parent_id == parent.span_id
        assert child.span_id != parent.span_id
        assert parent.attributes == {"stage": "outer", "rows": 10}
        assert child.attributes == {"index": 3}
        # Children finish (and are recorded) before their parents.
        assert rec.spans[0].name == "child"
        assert parent.duration >= child.duration >= 0.0

    def test_sibling_spans_share_parent(self):
        with telemetry.recording() as rec:
            with telemetry.span("root") as root_handle:
                for index in range(3):
                    with telemetry.span("leaf", index=index):
                        pass
        root_id = root_handle.span_id
        leaves = [s for s in rec.spans if s.name == "leaf"]
        assert len(leaves) == 3
        assert all(leaf.parent_id == root_id for leaf in leaves)
        assert len({leaf.span_id for leaf in leaves}) == 3

    def test_error_capture_and_propagation(self):
        with telemetry.recording() as rec:
            with pytest.raises(KeyError):
                with telemetry.span("boom"):
                    raise KeyError("x")
        (span,) = rec.spans
        assert span.error == "KeyError"
        assert span.end >= span.start

    def test_traced_decorator_records_qualname(self):
        @telemetry.traced()
        def work():
            return 42

        @telemetry.traced("custom.name")
        def other():
            return 7

        with telemetry.recording() as rec:
            assert work() == 42
            assert other() == 7
        names = [s.name for s in rec.spans]
        assert any(name.endswith("work") for name in names)
        assert "custom.name" in names

    def test_ids_dense_and_deterministic(self):
        with telemetry.recording() as rec:
            for _ in range(5):
                with telemetry.span("s"):
                    pass
        assert sorted(s.span_id for s in rec.spans) == list(range(5))


# ----------------------------------------------------------------- metrics


class TestMetrics:
    def test_counter_monotonic(self):
        counter = Counter("hits")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_last_value_wins(self):
        gauge = Gauge("depth")
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5

    def test_histogram_bucketing(self):
        hist = Histogram("h", (0.1, 1.0, 10.0))
        for value in (0.05, 0.1, 0.5, 1.0, 2.0, 100.0):
            hist.observe(value)
        # v <= bound lands in that bucket; beyond the last bound overflows.
        assert hist.counts == [2, 2, 1, 1]
        assert hist.total == 6
        assert hist.sum == pytest.approx(103.65)
        assert hist.mean == pytest.approx(103.65 / 6)

    def test_histogram_requires_sorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram("bad", (1.0, 0.5))
        with pytest.raises(ValueError):
            Histogram("empty", ())

    def test_histogram_percentiles(self):
        hist = Histogram("h", (0.1, 1.0, 10.0))
        for value in (0.05, 0.2, 0.3, 0.9, 2.0):
            hist.observe(value)
        # counts = [1, 3, 1, 0]; the estimate is the upper bound of the
        # bucket holding the requested rank.
        assert hist.percentile(0) == 0.1
        assert hist.percentile(50) == 1.0
        assert hist.percentile(90) == 10.0
        assert hist.percentile(100) == 10.0

    def test_percentile_from_buckets_edges(self):
        from repro.telemetry import percentile_from_buckets

        # Empty distribution reports 0.0.
        assert percentile_from_buckets((1.0, 2.0), [0, 0, 0], 50) == 0.0
        # Overflow observations clamp to the largest finite bound.
        assert percentile_from_buckets((1.0, 2.0), [0, 0, 5], 99) == 2.0
        with pytest.raises(ValueError):
            percentile_from_buckets((1.0,), [1, 0], 101)
        with pytest.raises(ValueError):
            percentile_from_buckets((1.0,), [1, 0], -0.5)

    def test_render_text_includes_histogram_percentiles(self):
        with telemetry.recording() as recorder:
            for value in (0.05, 0.2, 0.7):
                telemetry.histogram("stage.seconds", (0.1, 0.5, 1.0)).observe(
                    value
                )
        report = render_text(snapshot(recorder))
        assert "p50<=0.5" in report
        assert "p99<=1" in report

    def test_registry_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c", (1.0,)) is registry.histogram("c", (1.0,))

    def test_registry_rejects_conflicting_histogram_bounds(self):
        registry = MetricsRegistry()
        registry.histogram("h", (1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("h", (1.0, 3.0))

    def test_concurrent_instrument_updates_lose_nothing(self):
        """Regression: unsynchronized read-modify-write in ``Counter.inc``
        / ``Histogram.observe`` dropped updates under the threaded
        serving daemon. Hammering one registry from many threads must
        account every single update."""
        import threading

        registry = MetricsRegistry()
        threads_n, rounds = 8, 1_998  # divisible by 3 for exact buckets
        barrier = threading.Barrier(threads_n)

        def hammer(slot: int) -> None:
            barrier.wait(timeout=30)
            for i in range(rounds):
                # Get-or-create raced too: every thread resolves the
                # instruments by name on every iteration.
                registry.counter("hammer.total").inc()
                registry.counter(f"hammer.slot.{slot}").inc(2.0)
                registry.histogram("hammer.hist", (0.5, 1.5)).observe(
                    float(i % 3)
                )
                registry.gauge("hammer.gauge").set(slot)

        threads = [
            threading.Thread(target=hammer, args=(slot,))
            for slot in range(threads_n)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)

        assert registry.counter("hammer.total").value == threads_n * rounds
        for slot in range(threads_n):
            assert registry.counter(f"hammer.slot.{slot}").value == 2.0 * rounds
        hist = registry.histogram("hammer.hist", (0.5, 1.5))
        assert hist.total == threads_n * rounds
        assert sum(hist.counts) == threads_n * rounds
        # i % 3 in {0, 1, 2}: one third in each of the three buckets.
        assert hist.counts == [
            threads_n * rounds // 3,
            threads_n * rounds // 3,
            threads_n * rounds // 3,
        ]
        assert registry.gauge("hammer.gauge").value in set(
            float(s) for s in range(threads_n)
        )

    def test_to_dicts_deterministic_order(self):
        registry = MetricsRegistry()
        registry.counter("z").inc()
        registry.counter("a").inc()
        registry.gauge("m").set(1)
        registry.histogram("h", (1.0,)).observe(0.5)
        names = [line["name"] for line in registry.to_dicts()]
        assert names == ["a", "z", "m", "h"]
        # Same observations => byte-identical serialization.
        other = MetricsRegistry()
        other.counter("z").inc()
        other.counter("a").inc()
        other.gauge("m").set(1)
        other.histogram("h", (1.0,)).observe(0.5)
        assert json.dumps(registry.to_dicts(), sort_keys=True) == json.dumps(
            other.to_dicts(), sort_keys=True
        )


# ------------------------------------------------- pipeline instrumentation


class TestAutoMLInstrumentation:
    def test_fit_emits_trials_and_spans(self, linear_problem):
        from repro.automl import H2OAutoMLLike

        X, y, _X_test, _y_test = linear_problem
        with telemetry.recording() as rec:
            system = H2OAutoMLLike(budget_hours=0.05, seed=0, max_models=4)
            system.fit(X, y)

        # One trial event per candidate the search considered; at least
        # one per trained (accepted) model.
        trials = rec.trials
        accepted = [t for t in trials if t.accepted]
        assert len(accepted) == len(system.leaderboard)
        assert all(t.system == system.name for t in trials)
        for t in accepted:
            assert t.hours > 0
            assert t.valid_f1 is not None
        for t in trials:
            if not t.accepted:
                assert t.reason in ("budget-exhausted", "max-models")

        names = [s.name for s in rec.spans]
        assert "automl.fit" in names
        assert "automl.search" in names
        fit_span = next(s for s in rec.spans if s.name == "automl.fit")
        assert fit_span.attributes["n_evaluated"] == len(accepted)
        assert fit_span.attributes["simulated_hours"] == pytest.approx(
            system.report_.simulated_hours
        )

        # Budget-charge histogram sums to the clock's elapsed hours.
        hist = rec.metrics.histograms["automl.budget.charge_hours"]
        assert hist.bounds == BUDGET_HOURS_BUCKETS
        assert hist.sum == pytest.approx(system.report_.simulated_hours)
        assert rec.metrics.counters["automl.candidates"].value == len(accepted)

    def test_fit_results_identical_with_and_without_telemetry(
        self, linear_problem
    ):
        from repro.automl import AutoSklearnLike

        X, y, X_test, _y_test = linear_problem
        plain = AutoSklearnLike(budget_hours=0.05, seed=7, max_models=3)
        plain.fit(X, y)
        with telemetry.recording():
            traced_system = AutoSklearnLike(budget_hours=0.05, seed=7, max_models=3)
            traced_system.fit(X, y)
        np.testing.assert_array_equal(
            plain.predict(X_test), traced_system.predict(X_test)
        )
        assert plain.report_.simulated_hours == pytest.approx(
            traced_system.report_.simulated_hours
        )


class TestAdapterInstrumentation:
    def test_transform_spans_and_cache_counters(self, tiny_sda, monkeypatch):
        from repro.adapter import EMAdapter, clear_adapter_cache

        monkeypatch.setenv("REPRO_CACHE_DIR", "off")
        clear_adapter_cache()
        adapter = EMAdapter("attr", "albert", "mean")
        with telemetry.recording() as rec:
            first = adapter.transform(tiny_sda)
            second = adapter.transform(tiny_sda)

        np.testing.assert_array_equal(first, second)
        names = [s.name for s in rec.spans]
        assert names.count("adapter.transform") == 2
        assert "adapter.tokenize" in names
        assert "adapter.embed" in names
        assert "adapter.combine" in names

        counters = rec.metrics.counters
        assert counters["adapter.cache.memory.misses"].value == 1
        assert counters["adapter.cache.memory.hits"].value == 1
        hit_span = [s for s in rec.spans if s.name == "adapter.transform"][-1]
        assert hit_span.attributes.get("cache") == "memory"
        clear_adapter_cache()


# --------------------------------------------------------------- exporters


def _sample_trace() -> dict:
    """A small but fully populated snapshot built from a live recorder."""
    with telemetry.recording() as rec:
        with telemetry.span("root", dataset="S-DA"):
            with telemetry.span("leaf", index=0):
                pass
        telemetry.counter("cache.hits").inc(2)
        telemetry.gauge("depth").set(3)
        telemetry.histogram("charge", (0.5, 1.0)).observe(0.2)
        telemetry.event("note", detail="x")
        telemetry.trial("h2o", "gbm", "depth=4", 0.01, 0.91, True)
        telemetry.trial("h2o", "gbm", "depth=9", 0.02, None, False, "budget-exhausted")
    return snapshot(rec)


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        trace = _sample_trace()
        path = tmp_path / "trace.jsonl"
        write_jsonl(trace, path)
        loaded = read_jsonl(path)
        assert loaded["meta"]["n_spans"] == 2
        assert loaded["meta"]["n_events"] == 3
        assert [s["name"] for s in loaded["spans"]] == ["leaf", "root"]
        assert len(loaded["metrics"]) == 3
        assert [e["name"] for e in loaded["events"]] == ["note", "trial", "trial"]

    def test_write_to_stream(self):
        trace = _sample_trace()
        stream = io.StringIO()
        write_jsonl(trace, stream)
        lines = stream.getvalue().splitlines()
        assert json.loads(lines[0])["kind"] == "meta"
        assert len(lines) == 1 + 2 + 3 + 3

    def test_read_rejects_malformed_json_mid_file(self, tmp_path):
        # Garbage *followed by* valid lines cannot be a torn final write,
        # so it still raises (only a truncated trailing line is excused).
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"kind": "meta"}\nnot json\n{"kind": "event", "name": "n", "attrs": {}}\n'
        )
        with pytest.raises(ValueError, match="line 2"):
            read_jsonl(path)

    def test_read_tolerates_truncated_final_line(self, tmp_path):
        # A process killed mid-write_jsonl tears exactly the last record:
        # the partial line is dropped and surfaced via the flag.
        path = tmp_path / "torn.jsonl"
        write_jsonl(_sample_trace(), path)
        whole = path.read_text()
        lines = whole.splitlines(keepends=True)
        path.write_text("".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2])
        loaded = read_jsonl(path)
        assert loaded["truncated"] is True
        assert [e["name"] for e in loaded["events"]] == ["note", "trial"]
        # An intact file reports truncated=False.
        path.write_text(whole)
        assert read_jsonl(path)["truncated"] is False

    def test_render_text_sections(self):
        report = render_text(_sample_trace())
        assert "== span tree ==" in report
        assert "== per-stage rollup ==" in report
        assert "== trial ledger ==" in report
        assert "== metrics ==" in report
        # Child spans indent under their parents.
        assert "\n  leaf" in report
        assert "1/2 trials accepted" in report
        assert "rejected:budget-exhausted" in report

    def test_render_text_empty_trace(self):
        with telemetry.recording() as rec:
            pass
        report = render_text(snapshot(rec))
        assert "(no spans recorded)" in report
        assert "(no AutoML trials recorded)" in report


# -------------------------------------------------------------- validation


class TestSchema:
    def test_live_trace_validates(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(_sample_trace(), path)
        assert validate_trace(path) == []

    def test_validate_instance_catches_bad_lines(self):
        assert validate_instance({"kind": "nope"}) != []
        assert validate_instance({"kind": "span", "id": 1}) != []
        assert (
            validate_instance(
                {
                    "kind": "metric",
                    "type": "counter",
                    "name": "c",
                    "value": "three",
                }
            )
            != []
        )

    def test_validate_trace_requires_single_leading_meta(self, tmp_path):
        no_meta = tmp_path / "no_meta.jsonl"
        no_meta.write_text('{"attrs": {}, "kind": "event", "name": "e"}\n')
        assert any("no meta line" in e for e in validate_trace(no_meta))

        meta = json.dumps({"kind": "meta", "version": 1})
        event = json.dumps({"kind": "event", "name": "e", "attrs": {}})
        late = tmp_path / "late_meta.jsonl"
        late.write_text(f"{event}\n{meta}\n")
        assert any("must be the first" in e for e in validate_trace(late))

        double = tmp_path / "double_meta.jsonl"
        double.write_text(f"{meta}\n{meta}\n")
        assert any("2 meta lines" in e for e in validate_trace(double))

    def test_committed_schema_is_current(self):
        """``docs/trace_schema.json`` must equal ``TRACE_SCHEMA``.

        Regenerate with::

            PYTHONPATH=src python - <<'EOF'
            import json
            from repro.telemetry.schema import TRACE_SCHEMA
            with open("docs/trace_schema.json", "w") as fh:
                json.dump(TRACE_SCHEMA, fh, indent=2, sort_keys=True)
                fh.write("\n")
            EOF
        """
        committed = json.loads(
            (REPO_ROOT / "docs" / "trace_schema.json").read_text()
        )
        assert committed == TRACE_SCHEMA


# ------------------------------------------------------------ cli surface


class TestTraceCli:
    def test_validate_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "trace.jsonl"
        write_jsonl(_sample_trace(), path)
        assert main(["trace", "--validate", str(path)]) == 0
        assert "valid trace" in capsys.readouterr().out

        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "bogus"}\n')
        assert main(["trace", "--validate", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_load_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "trace.jsonl"
        write_jsonl(_sample_trace(), path)
        assert main(["trace", "--load", str(path)]) == 0
        out = capsys.readouterr().out
        assert "== span tree ==" in out
        assert "== trial ledger ==" in out

    def test_trace_requires_dataset_or_file(self, capsys):
        from repro.cli import main

        assert main(["trace"]) == 2
        assert "--dataset" in capsys.readouterr().err
