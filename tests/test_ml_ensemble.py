"""Tests for model selection, preprocessing and ensembling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import NotFittedError
from repro.ml import (
    EnsembleSelectionClassifier,
    GradientBoostingClassifier,
    LogisticRegression,
    SimpleImputer,
    StackingClassifier,
    StandardScaler,
    StratifiedKFold,
    VotingClassifier,
    cross_val_predict_proba,
    f1_score,
    train_test_split,
)
from repro.ml.ensemble import caruana_selection
from repro.ml.model_selection import KFold, cross_val_f1
from repro.ml.preprocessing import MinMaxScaler, Pipeline


class TestSplitting:
    def test_train_test_split_sizes(self, linear_problem):
        X, y, _, _ = linear_problem
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, test_size=0.25)
        assert len(X_te) == pytest.approx(0.25 * len(X), rel=0.05)
        assert len(X_tr) + len(X_te) == len(X)

    def test_stratified_split_balance(self, linear_problem):
        X, y, _, _ = linear_problem
        _X_tr, _X_te, y_tr, y_te = train_test_split(X, y, test_size=0.3)
        assert y_te.mean() == pytest.approx(y.mean(), abs=0.05)

    def test_split_rejects_bad_size(self, linear_problem):
        X, y, _, _ = linear_problem
        with pytest.raises(ValueError):
            train_test_split(X, y, test_size=1.5)

    def test_kfold_covers_everything(self):
        y = np.arange(23)
        seen = []
        for _train, test in KFold(n_splits=4).split(y):
            seen.extend(test.tolist())
        assert sorted(seen) == list(range(23))

    def test_kfold_train_test_disjoint(self):
        y = np.arange(20)
        for train, test in KFold(n_splits=5).split(y):
            assert not set(train) & set(test)

    def test_stratified_kfold_balance(self):
        y = np.array([0] * 80 + [1] * 20)
        for _train, test in StratifiedKFold(n_splits=4).split(y):
            assert y[test].mean() == pytest.approx(0.2, abs=0.07)

    def test_kfold_rejects_one_split(self):
        with pytest.raises(ValueError):
            KFold(n_splits=1)

    def test_cross_val_predict_covers_all_rows(self, linear_problem):
        X, y, _, _ = linear_problem
        proba = cross_val_predict_proba(LogisticRegression(), X, y, n_splits=3)
        assert proba.shape == (len(y),)
        assert ((proba >= 0) & (proba <= 1)).all()

    def test_cross_val_f1_reasonable(self, linear_problem):
        X, y, _, _ = linear_problem
        assert cross_val_f1(LogisticRegression(), X, y, n_splits=3) > 0.7


class TestPreprocessing:
    def test_imputer_mean(self):
        X = np.array([[1.0, np.nan], [3.0, 4.0]])
        out = SimpleImputer("mean").fit_transform(X)
        assert out[0, 1] == 4.0

    def test_imputer_median_and_constant(self):
        X = np.array([[1.0], [np.nan], [9.0], [2.0]])
        assert SimpleImputer("median").fit_transform(X)[1, 0] == 2.0
        assert SimpleImputer("constant", fill_value=-1).fit_transform(X)[1, 0] == -1

    def test_imputer_all_nan_column(self):
        X = np.array([[np.nan], [np.nan]])
        out = SimpleImputer("mean").fit_transform(X)
        assert (out == 0.0).all()

    def test_imputer_unknown_strategy(self):
        with pytest.raises(ValueError):
            SimpleImputer("mode")

    def test_imputer_requires_fit(self):
        with pytest.raises(NotFittedError):
            SimpleImputer().transform(np.zeros((2, 2)))

    def test_standard_scaler(self):
        X = np.array([[1.0], [3.0]])
        out = StandardScaler().fit_transform(X)
        assert out.mean() == pytest.approx(0.0)
        assert out.std() == pytest.approx(1.0)

    def test_standard_scaler_constant_column(self):
        X = np.full((5, 1), 7.0)
        out = StandardScaler().fit_transform(X)
        assert (out == 0.0).all()

    def test_minmax_scaler(self):
        X = np.array([[0.0], [5.0], [10.0]])
        out = MinMaxScaler().fit_transform(X)
        np.testing.assert_allclose(out.ravel(), [0.0, 0.5, 1.0])

    def test_pipeline_end_to_end(self, linear_problem):
        X, y, X_test, y_test = linear_problem
        X_nan = X.copy()
        X_nan[::7, 0] = np.nan
        pipe = Pipeline(
            [
                ("impute", SimpleImputer()),
                ("scale", StandardScaler()),
                ("model", LogisticRegression()),
            ]
        )
        pipe.fit(X_nan, y)
        assert f1_score(y_test, pipe.predict(X_test)) > 0.7

    def test_pipeline_rejects_empty(self):
        with pytest.raises(ValueError):
            Pipeline([])


class TestEnsembles:
    def test_voting_averages(self, linear_problem):
        X, y, X_test, y_test = linear_problem
        voting = VotingClassifier(
            [LogisticRegression(), GradientBoostingClassifier(n_estimators=30)]
        )
        voting.fit(X, y)
        assert f1_score(y_test, voting.predict(X_test)) > 0.7

    def test_voting_rejects_empty(self, linear_problem):
        X, y, _, _ = linear_problem
        with pytest.raises(ValueError):
            VotingClassifier([]).fit(X, y)

    def test_voting_weights(self, linear_problem):
        X, y, X_test, _ = linear_problem
        strong = LogisticRegression()
        weak = LogisticRegression(C=0.0001)
        heavy = VotingClassifier([strong, weak], weights=[0.99, 0.01]).fit(X, y)
        solo = LogisticRegression().fit(X, y)
        np.testing.assert_allclose(
            heavy.predict_proba(X_test)[:, 1],
            solo.predict_proba(X_test)[:, 1],
            atol=0.05,
        )

    def test_stacking_beats_weak_base(self, linear_problem):
        X, y, X_test, y_test = linear_problem
        stack = StackingClassifier(
            [LogisticRegression(C=0.001), LogisticRegression(C=1.0)],
            n_splits=3,
        )
        stack.fit(X, y)
        weak = LogisticRegression(C=0.001).fit(X, y)
        assert f1_score(y_test, stack.predict(X_test)) >= f1_score(
            y_test, weak.predict(X_test)
        )

    def test_caruana_prefers_better_model(self):
        y = np.array([0, 1] * 50)
        good = y.astype(float) * 0.8 + 0.1
        bad = 0.9 - y.astype(float) * 0.8  # Actively inverted predictor.
        weights = caruana_selection(np.column_stack([bad, good]), y, n_rounds=10)
        assert weights[1] > weights[0]

    def test_caruana_weights_sum_to_one(self):
        y = np.array([0, 1] * 20)
        rng = np.random.default_rng(0)
        matrix = rng.random((40, 4))
        weights = caruana_selection(matrix, y, n_rounds=7)
        assert weights.sum() == pytest.approx(1.0)

    def test_caruana_rejects_1d(self):
        with pytest.raises(ValueError):
            caruana_selection(np.zeros(5), np.zeros(5))

    def test_ensemble_selection_from_validation(self, linear_problem):
        X, y, X_test, y_test = linear_problem
        models = [
            LogisticRegression().fit(X, y),
            GradientBoostingClassifier(n_estimators=30).fit(X, y),
        ]
        valid_proba = np.column_stack(
            [m.predict_proba(X_test)[:, 1] for m in models]
        )
        ensemble = EnsembleSelectionClassifier.from_validation(
            models, valid_proba, y_test, n_rounds=6
        )
        assert f1_score(y_test, ensemble.predict(X_test)) > 0.7

    def test_ensemble_selection_fit_is_disabled(self):
        with pytest.raises(NotImplementedError):
            EnsembleSelectionClassifier().fit(np.zeros((2, 2)), np.zeros(2))
