"""Tests for the reproduction report and the active-learning loop."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.data import load_dataset, split_dataset
from repro.exceptions import DataError
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import (
    build_report,
    collect_cached_results,
    write_report,
)
from repro.matching import MagellanMatcher
from repro.matching.active import ActiveLearningLoop
from repro.ml.metrics import f1_score


def _fake_record(system, dataset, f1):
    return {
        "system": system,
        "dataset": dataset,
        "f1": f1,
        "precision": f1,
        "recall": f1,
        "simulated_hours": 1.0,
        "wall_seconds": 1.0,
    }


class TestReport:
    @pytest.fixture
    def populated_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        config = ExperimentConfig(scale=0.5, max_models=4)
        entries = {
            config.cache_key("raw", "autosklearn", "S-DA", "1"): _fake_record(
                "autosklearn(raw)", "S-DA", 40.0
            ),
            config.cache_key("deepmatcher", "S-DA"): _fake_record(
                "deepmatcher", "S-DA", 90.0
            ),
            config.cache_key(
                "adapted", "autosklearn", "S-DA", "hybrid", "albert", "1"
            ): _fake_record("autosklearn+hybrid+albert", "S-DA", 85.0),
            config.cache_key(
                "adapted", "autosklearn", "S-DA", "hybrid", "albert", "6"
            ): _fake_record("autosklearn+hybrid+albert", "S-DA", 88.0),
        }
        for key, record in entries.items():
            (tmp_path / f"{key}.json").write_text(json.dumps(record))
        return config

    def test_collects_only_matching_config(self, populated_cache, tmp_path):
        records = collect_cached_results(populated_cache)
        assert len(records) == 4
        other = ExperimentConfig(scale=0.25, max_models=4)
        assert collect_cached_results(other) == []

    def test_report_contains_aggregates(self, populated_cache):
        text = build_report(populated_cache)
        assert "DeepMatcher" in text and "90.0" in text
        assert "Adapter impact" in text
        assert "+45.0" in text  # 85 adapted - 40 raw.
        assert "Budget effect" in text and "+3.00" in text

    def test_empty_cache_report(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "empty"))
        text = build_report(ExperimentConfig(scale=0.5))
        assert "cached results: 0" in text

    def test_write_report(self, populated_cache, tmp_path):
        path = write_report(tmp_path / "out" / "report.md", populated_cache)
        assert path.exists()
        assert "Reproduction report" in path.read_text()


class TestActiveLearning:
    @pytest.fixture(scope="class")
    def pool_and_valid(self):
        splits = split_dataset(load_dataset("S-DA", scale=0.04))
        return splits.train, splits.valid, splits.test

    def test_loop_improves_over_seed(self, pool_and_valid):
        pool, valid, test = pool_and_valid

        def factory():
            return MagellanMatcher(n_estimators=40, seed=0)

        loop = ActiveLearningLoop(
            matcher_factory=factory, seed_size=40, batch_size=25,
            n_rounds=3, seed=1,
        )
        final = loop.run(pool, valid)
        final_f1 = f1_score(test.labels, final.predict(test))

        seed_only = factory()
        rng = np.random.default_rng(1)
        seed_idx = rng.choice(len(pool), size=40, replace=False)
        seed_only.fit(pool.subset(sorted(seed_idx.tolist())), valid)
        seed_f1 = f1_score(test.labels, seed_only.predict(test))

        assert final_f1 >= seed_f1 - 0.02
        assert loop.labels_used <= 40 + 3 * 25

    def test_history_recorded(self, pool_and_valid):
        pool, valid, _ = pool_and_valid
        loop = ActiveLearningLoop(
            matcher_factory=lambda: MagellanMatcher(n_estimators=30, seed=0),
            seed_size=30, batch_size=10, n_rounds=2, seed=0,
        )
        loop.run(pool, valid)
        assert len(loop.history) == 2
        assert loop.history[0].n_labelled < loop.history[1].n_labelled
        assert all(0 <= r.mean_uncertainty <= 1 for r in loop.history)

    def test_rejects_oversized_seed(self, pool_and_valid):
        pool, valid, _ = pool_and_valid
        loop = ActiveLearningLoop(
            matcher_factory=lambda: MagellanMatcher(),
            seed_size=len(pool) + 1,
        )
        with pytest.raises(DataError):
            loop.run(pool, valid)

    def test_queried_ids_unique_and_fresh(self, pool_and_valid):
        pool, valid, _ = pool_and_valid
        loop = ActiveLearningLoop(
            matcher_factory=lambda: MagellanMatcher(n_estimators=30, seed=0),
            seed_size=30, batch_size=15, n_rounds=2, seed=2,
        )
        loop.run(pool, valid)
        seen: set[int] = set()
        for round_info in loop.history:
            ids = set(round_info.queried_ids)
            assert not ids & seen  # Never re-query a labelled pair.
            seen |= ids
