"""Tests for the benchmark registry, splits, dirty corruption, and CSV IO."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SPLIT_PROPORTIONS
from repro.data import (
    DATASET_NAMES,
    dataset_spec,
    dataset_statistics,
    load_dataset,
    split_dataset,
)
from repro.data.corruption import make_dirty
from repro.data.io import load_csv, save_csv
from repro.exceptions import DataError, UnknownDatasetError


class TestRegistry:
    def test_twelve_datasets(self):
        assert len(DATASET_NAMES) == 12

    def test_paper_order(self):
        assert DATASET_NAMES[0] == "S-DG"
        assert DATASET_NAMES[-1] == "D-WA"

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownDatasetError):
            dataset_spec("S-XX")

    def test_table1_sizes(self):
        rows = {r["dataset"]: r for r in dataset_statistics()}
        assert rows["S-DG"]["size"] == 28707
        assert rows["S-FZ"]["size"] == 946
        assert rows["T-AB"]["match_percent"] == 10.74

    def test_types(self):
        rows = {r["dataset"]: r for r in dataset_statistics()}
        assert rows["T-AB"]["type"] == "Textual"
        assert rows["D-DA"]["type"] == "Dirty"
        assert rows["S-BR"]["type"] == "Structured"

    def test_scale_validation(self):
        with pytest.raises(UnknownDatasetError):
            load_dataset("S-BR", scale=0.0)
        with pytest.raises(UnknownDatasetError):
            load_dataset("S-BR", scale=1.5)


class TestLoadDataset:
    def test_generated_match_rate_close_to_registry(self):
        dataset = load_dataset("S-DA", scale=0.05)
        assert dataset.match_fraction == pytest.approx(0.1796, abs=0.01)

    def test_small_datasets_keep_full_size(self):
        assert len(load_dataset("S-BR", scale=0.05)) == 450

    def test_deterministic(self):
        a = load_dataset("S-IA", scale=0.5)
        b = load_dataset("S-IA", scale=0.5)
        assert a[0].left == b[0].left
        assert (a.labels == b.labels).all()

    def test_seed_changes_data(self):
        a = load_dataset("S-IA", scale=0.5, seed=1)
        b = load_dataset("S-IA", scale=0.5, seed=2)
        assert a[0].left != b[0].left

    def test_dirty_variant_derives_from_structured(self):
        clean = load_dataset("S-WA", scale=0.05)
        dirty = load_dataset("D-WA", scale=0.05)
        assert len(clean) == len(dirty)
        assert (clean.labels == dirty.labels).all()
        assert dirty.dataset_type == "Dirty"

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_every_dataset_generates(self, name):
        dataset = load_dataset(name, scale=0.02)
        assert len(dataset) >= 450 * 0.9
        assert 0.0 < dataset.match_fraction < 0.5


class TestSplits:
    def test_proportions(self, tiny_sda):
        splits = split_dataset(tiny_sda)
        total = len(tiny_sda)
        assert sum(splits.sizes) == total
        assert splits.sizes[0] == pytest.approx(
            SPLIT_PROPORTIONS[0] * total, rel=0.05
        )

    def test_stratification(self, tiny_sda):
        splits = split_dataset(tiny_sda)
        for part in splits:
            assert part.match_fraction == pytest.approx(
                tiny_sda.match_fraction, abs=0.03
            )

    def test_partitions_disjoint_and_complete(self, tiny_sda):
        splits = split_dataset(tiny_sda)
        ids = [p.pair_id for part in splits for p in part]
        assert sorted(ids) == sorted(p.pair_id for p in tiny_sda)

    def test_deterministic(self, tiny_sda):
        a = split_dataset(tiny_sda)
        b = split_dataset(tiny_sda)
        assert [p.pair_id for p in a.train] == [p.pair_id for p in b.train]

    def test_rejects_bad_proportions(self, tiny_sda):
        with pytest.raises(DataError):
            split_dataset(tiny_sda, proportions=(0.5, 0.2, 0.2))


class TestDirtyCorruption:
    def test_values_move_to_anchor(self):
        clean = load_dataset("S-WA", scale=0.05)
        dirty = make_dirty(clean, move_probability=1.0,
                           rng=np.random.default_rng(0))
        moved = 0
        for c, d in zip(clean.pairs, dirty.pairs):
            for side_c, side_d in ((c.left, d.left), (c.right, d.right)):
                brand = str(side_c.get("brand", ""))
                if brand and side_d["brand"] == "":
                    moved += 1
                    assert brand in str(side_d["title"])
        assert moved > 0

    def test_zero_probability_is_identity(self):
        clean = load_dataset("S-IA", scale=0.5)
        dirty = make_dirty(clean, move_probability=0.0,
                           rng=np.random.default_rng(0))
        assert dirty.pairs[0].left == clean.pairs[0].left

    def test_labels_preserved(self):
        clean = load_dataset("S-IA", scale=0.5)
        dirty = make_dirty(clean, rng=np.random.default_rng(0))
        assert (clean.labels == dirty.labels).all()

    def test_token_multiset_preserved_per_record(self):
        clean = load_dataset("S-WA", scale=0.05)
        dirty = make_dirty(clean, rng=np.random.default_rng(1))
        for c, d in zip(clean.pairs[:50], dirty.pairs[:50]):
            def bag(entity):
                tokens = []
                for value in entity.values():
                    if value not in (None, ""):
                        tokens.extend(str(value).split())
                return sorted(tokens)

            assert bag(c.left) == bag(d.left)


class TestCsvIO:
    def test_roundtrip(self, tmp_path, tiny_sda):
        path = save_csv(tiny_sda, tmp_path / "sda.csv")
        loaded = load_csv(path)
        assert loaded.name == tiny_sda.name
        assert loaded.dataset_type == tiny_sda.dataset_type
        assert len(loaded) == len(tiny_sda)
        assert (loaded.labels == tiny_sda.labels).all()
        assert loaded.schema.attribute_names == tiny_sda.schema.attribute_names

    def test_roundtrip_preserves_text_values(self, tmp_path, tiny_sda):
        path = save_csv(tiny_sda, tmp_path / "sda.csv")
        loaded = load_csv(path)
        assert loaded[0].left["title"] == tiny_sda[0].left["title"]

    def test_missing_numeric_roundtrips_as_none(self, tmp_path):
        dataset = load_dataset("S-WA", scale=0.05)
        path = save_csv(dataset, tmp_path / "wa.csv")
        loaded = load_csv(path)
        originals = [p.left["price"] for p in dataset]
        reloaded = [p.left["price"] for p in loaded]
        assert (originals.count(None) or True) and originals.count(
            None
        ) == reloaded.count(None)

    def test_truncated_file_raises(self, tmp_path):
        path = tmp_path / "broken.csv"
        path.write_text("")
        with pytest.raises(DataError):
            load_csv(path)

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "noheader.csv"
        path.write_text("id,label\n1,0\n")
        with pytest.raises(DataError):
            load_csv(path)
