"""Tests for the neural substrate and the simulated pre-trained encoders."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import UnknownModelError
from repro.nn.functional import gelu, hard_gelu, layer_norm, sigmoid, softmax
from repro.nn.transformer import EncoderConfig, TransformerEncoder
from repro.transformers import EMBEDDER_NAMES, load_pretrained


class TestFunctional:
    def test_softmax_sums_to_one(self):
        out = softmax(np.array([[1.0, 2.0, 3.0]]))
        assert out.sum() == pytest.approx(1.0)

    def test_softmax_stable_for_large_inputs(self):
        out = softmax(np.array([1000.0, 1000.0]))
        np.testing.assert_allclose(out, [0.5, 0.5])

    def test_gelu_fixed_points(self):
        assert gelu(np.array([0.0]))[0] == 0.0
        assert gelu(np.array([10.0]))[0] == pytest.approx(10.0, abs=1e-3)

    def test_hard_gelu_tracks_gelu(self):
        x = np.linspace(-3, 3, 50)
        assert np.max(np.abs(hard_gelu(x) - gelu(x))) < 0.3

    def test_layer_norm_moments(self):
        x = np.random.default_rng(0).normal(size=(4, 16)) * 5 + 3
        out = layer_norm(x)
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_sigmoid_clips(self):
        assert sigmoid(np.array([1e6]))[0] == pytest.approx(1.0)
        assert sigmoid(np.array([-1e6]))[0] == pytest.approx(0.0)

    @given(st.integers(0, 1000))
    @settings(max_examples=20)
    def test_softmax_invariant_to_shift(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=8)
        np.testing.assert_allclose(softmax(x), softmax(x + 100.0), atol=1e-9)


class TestTransformerEncoder:
    @pytest.fixture(scope="class")
    def encoder(self):
        return TransformerEncoder(EncoderConfig(dim=32, n_layers=2, n_heads=4))

    def test_output_shape(self, encoder):
        x = np.random.default_rng(0).normal(size=(3, 7, 32)).astype(np.float32)
        out = encoder.encode(x)
        assert out.shape == (3, 7, 32)

    def test_padding_positions_zeroed(self, encoder):
        x = np.random.default_rng(0).normal(size=(2, 5, 32)).astype(np.float32)
        mask = np.ones((2, 5), dtype=bool)
        mask[0, 3:] = False
        out = encoder.encode(x, mask)
        assert np.allclose(out[0, 3:], 0.0)

    def test_padding_does_not_leak_into_real_tokens(self, encoder):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, 4, 32)).astype(np.float32)
        mask_short = np.array([[True, True, False, False]])
        padded = np.concatenate([x, rng.normal(size=(1, 2, 32))], axis=1)
        padded = padded.astype(np.float32)
        mask_long = np.array([[True, True, False, False, False, False]])
        out_short = encoder.encode(x, mask_short)[0, :2]
        out_long = encoder.encode(padded, mask_long)[0, :2]
        np.testing.assert_allclose(out_short, out_long, atol=1e-4)

    def test_deterministic(self):
        cfg = EncoderConfig(dim=32, n_layers=2, n_heads=4, seed=9)
        x = np.random.default_rng(0).normal(size=(1, 5, 32)).astype(np.float32)
        a = TransformerEncoder(cfg).encode(x)
        b = TransformerEncoder(cfg).encode(x)
        np.testing.assert_allclose(a, b)

    def test_dim_head_mismatch_rejected(self):
        with pytest.raises(ValueError):
            EncoderConfig(dim=30, n_heads=4)

    def test_all_layers_returned(self, encoder):
        x = np.random.default_rng(0).normal(size=(1, 4, 32)).astype(np.float32)
        layers = encoder.encode_all_layers(x)
        assert len(layers) == 2

    def test_single_token_segment_no_nan(self, encoder):
        # One-token segments would fully mask a row without the guard.
        x = np.random.default_rng(0).normal(size=(1, 2, 32)).astype(np.float32)
        segments = np.array([[0, 1]])
        out = encoder.encode(x, segments=segments)
        assert np.isfinite(out).all()

    def test_shared_layers_have_one_weight_set(self):
        cfg = EncoderConfig(dim=32, n_layers=4, n_heads=4, share_layers=True)
        assert len(TransformerEncoder(cfg)._layers) == 1


class TestPretrained:
    def test_five_architectures(self):
        assert EMBEDDER_NAMES == ("bert", "dbert", "albert", "roberta", "xlnet")

    def test_unknown_raises(self):
        with pytest.raises(UnknownModelError):
            load_pretrained("gpt5")

    def test_memoized(self):
        assert load_pretrained("bert") is load_pretrained("bert")

    def test_token_similarity_structure(self):
        enc = load_pretrained("albert")
        same = enc._token_vector("sony") @ enc._token_vector("sony")
        typo = enc._token_vector("sony") @ enc._token_vector("somy")
        unrelated = enc._token_vector("sony") @ enc._token_vector("kitchen")
        assert same == pytest.approx(1.0)
        assert typo > unrelated

    def test_sep_survives_tokenization(self):
        enc = load_pretrained("bert")
        tokens = enc.tokenize(enc.pair_text("a b", "c"))
        assert tokens == ["a", "b", "[sep]", "c"]

    def test_segment_ids_flip_after_sep(self):
        enc = load_pretrained("bert")
        _matrix, segments = enc._sequence_matrix(enc.pair_text("a b", "c d"))
        np.testing.assert_array_equal(segments, [0, 0, 0, 1, 1])

    def test_embed_sequences_shapes(self):
        enc = load_pretrained("dbert")
        out = enc.embed_sequences(["alpha beta", "", "gamma"])
        assert out.shape == (3, enc.output_dim("mean"))
        assert np.isfinite(out).all()
        # Empty texts all embed to the same constant vector.
        again = enc.embed_sequences([""])
        # float32 batch composition perturbs the last bits only.
        np.testing.assert_allclose(out[1], again[0], atol=1e-5)

    def test_last4_pooling_dim(self):
        enc = load_pretrained("bert")
        out = enc.embed_sequences(["hello world"], pooling="last4")
        assert out.shape == (1, enc.output_dim("last4"))

    def test_architectures_differ(self):
        texts = ["sony wireless headset"]
        a = load_pretrained("bert").embed_sequences(texts)
        b = load_pretrained("roberta").embed_sequences(texts)
        assert not np.allclose(a, b)

    def test_match_pairs_more_similar_than_nonmatch(self):
        enc = load_pretrained("albert")
        match = enc.pair_text("canon eos camera 5d", "canon eos camera 5d")
        nonmatch = enc.pair_text("canon eos camera 5d", "dell laptop xps 13")
        matrix_m, seg_m = enc._sequence_matrix(match)
        matrix_n, seg_n = enc._sequence_matrix(nonmatch)

        def segment_cosine(matrix, seg):
            left = matrix[seg == 0][:-1].mean(axis=0)  # Drop [sep] row later.
            right = matrix[seg == 1].mean(axis=0)
            return float(
                left @ right / (np.linalg.norm(left) * np.linalg.norm(right))
            )

        assert segment_cosine(matrix_m, seg_m) > segment_cosine(matrix_n, seg_n)
