"""The repro.analysis engine: per-rule unit tests, suppression, baseline,
reporters, graphs, cache, CLI — and the tier-1 self-lint gate over ``src/``."""

from __future__ import annotations

import ast
import json
import shutil
import subprocess
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    AnalysisCache,
    Baseline,
    ContractError,
    EFFECT_TAGS,
    LayeringContract,
    Severity,
    all_rules,
    analysis_salt,
    analyze_project,
    apply_baseline,
    effect_analysis,
    iter_rng_flow_violations,
    render_json,
    render_text,
    suppressed_rules,
)
from repro.analysis.core import RULE_REGISTRY, SUPPRESS_ALL, Project
from repro.analysis.rules import fork_policy, seam_catalog
from repro.cli import main as cli_main

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC_ROOT = REPO_ROOT / "src"
BASELINE_PATH = REPO_ROOT / "lint_baseline.json"


def lint_snippet(tmp_path, code, rules=None, filename="mod.py"):
    """Write one snippet and run selected rules over it."""
    target = tmp_path / filename
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(code))
    if rules is not None:
        rules = [RULE_REGISTRY[r] for r in rules]
    return analyze_project([tmp_path], rules=rules)


def rule_ids(findings):
    return [f.rule for f in findings]


def write_tree(root, files):
    """Materialize a {relative_path: source} mapping under ``root``."""
    for rel, code in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(code))
    return root


class TestRngRules:
    def test_np_random_seed_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            import numpy as np
            np.random.seed(42)
            """,
            rules=["RNG001"],
        )
        assert rule_ids(findings) == ["RNG001"]
        assert "global" in findings[0].message

    def test_legacy_global_draw_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            import numpy as np
            x = np.random.rand(3)
            state = np.random.RandomState(0)
            """,
            rules=["RNG001"],
        )
        assert rule_ids(findings) == ["RNG001", "RNG001"]

    def test_hardcoded_default_rng_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            import numpy as np
            a = np.random.default_rng(0)
            b = np.random.default_rng()
            c = np.random.default_rng(-7)
            """,
            rules=["RNG002"],
        )
        assert rule_ids(findings) == ["RNG002"] * 3
        assert findings[0].severity is Severity.ERROR

    def test_variable_and_scoped_seeds_clean(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            import numpy as np
            from repro.config import rng_for, stable_hash

            def f(seed, cfg):
                a = np.random.default_rng(seed)
                b = np.random.default_rng(cfg.seed)
                c = np.random.default_rng(stable_hash("scope", seed))
                d = rng_for("scope", 3)
                return a, b, c, d
            """,
            rules=["RNG001", "RNG002"],
        )
        assert findings == []

    def test_repro_config_is_exempt(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            import numpy as np
            RNG = np.random.default_rng(0)
            """,
            rules=["RNG002"],
            filename="src/repro/config.py",
        )
        assert findings == []


class TestEstimatorRules:
    def test_fit_returning_non_self_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            class Model:
                def fit(self, X, y):
                    self.coef_ = X.mean()
                    return self.coef_
            """,
            rules=["EST001"],
        )
        assert rule_ids(findings) == ["EST001"]

    def test_fit_falling_off_the_end_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            class Model:
                def fit(self, X, y):
                    self.coef_ = X.mean()
            """,
            rules=["EST001"],
        )
        assert rule_ids(findings) == ["EST001"]

    def test_fit_nested_function_returns_ignored(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            class Model:
                def fit(self, X, y):
                    def objective(w):
                        return w * 2
                    self.w_ = objective(1.0)
                    return self
            """,
            rules=["EST001"],
        )
        assert findings == []

    def test_abstract_fit_clean(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            class Base:
                def fit(self, X, y):
                    raise NotImplementedError
            """,
            rules=["EST001"],
        )
        assert findings == []

    def test_unguarded_predict_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            class Model:
                def fit(self, X, y):
                    self.coef_ = X.mean()
                    return self

                def predict(self, X):
                    return X @ self.coef_
            """,
            rules=["EST002"],
        )
        assert rule_ids(findings) == ["EST002"]

    @pytest.mark.parametrize(
        "body",
        [
            "check_is_fitted(self); return X",
            "self._check_fitted(); return X",
            "if not self.is_fitted: raise NotFittedError('unfitted')",
            "return self.predict_proba(X)",
            "return self.final_estimator.predict(X)",
        ],
    )
    def test_guarded_predict_clean(self, tmp_path, body):
        findings = lint_snippet(
            tmp_path,
            f"""
            class Model:
                def fit(self, X, y):
                    return self

                def predict(self, X):
                    {body}
            """,
            rules=["EST002"],
        )
        assert findings == []

    def test_private_class_skipped(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            class _Internal:
                def fit(self, X, y):
                    return self

                def predict(self, X):
                    return X
            """,
            rules=["EST002"],
        )
        assert findings == []


MINI_ESTIMATOR = """
class GoodModel:
    def __init__(self, depth: int = 3, rate: float = 0.1, seed: int = 0):
        self.depth = depth
        self.rate = rate
        self.seed = seed
"""

MINI_SEARCH_SPACE = """
from repro.ml.mini import GoodModel

_SHARED = CategoricalDim("rate", (0.1, 0.2))

FAMILY_SPACES = {{
    "good": ConfigSpace(
        "good",
        (IntDim("{dim}", 1, 8), _SHARED),
        defaults={{"{dim}": 3, "rate": 0.1}},
    ),
}}


def _build_model(family, params, seed):
    p = dict(params)
    if family == "good":
        return GoodModel(
            depth=int(p.get("{dim}", 3)),
            rate=float(p.get("rate", 0.1)),
            seed=seed,
        )
    raise ValueError(family)
"""


class TestSearchSpaceRule:
    def _mini_project(self, tmp_path, dim):
        automl = tmp_path / "src" / "repro" / "automl"
        ml = tmp_path / "src" / "repro" / "ml"
        automl.mkdir(parents=True)
        ml.mkdir(parents=True)
        (automl / "search_space.py").write_text(
            MINI_SEARCH_SPACE.format(dim=dim)
        )
        (ml / "mini.py").write_text(MINI_ESTIMATOR)
        return analyze_project([tmp_path], rules=[RULE_REGISTRY["SSP001"]])

    def test_conforming_space_clean(self, tmp_path):
        assert self._mini_project(tmp_path, "depth") == []

    def test_misnamed_hyperparameter_flagged(self, tmp_path):
        findings = self._mini_project(tmp_path, "depht")
        assert findings, "misnamed dimension must be flagged"
        assert all(f.rule == "SSP001" for f in findings)
        assert any("'depht'" in f.message for f in findings)

    def test_misnaming_in_real_search_space_fails_gate(self, tmp_path):
        """Acceptance: a typo'd hyperparameter in the real search_space.py
        must fail the lint gate."""
        root = tmp_path / "src" / "repro"
        shutil.copytree(SRC_ROOT / "repro" / "automl", root / "automl")
        shutil.copytree(SRC_ROOT / "repro" / "ml", root / "ml")
        space = root / "automl" / "search_space.py"
        text = space.read_text()
        assert 'FloatDim("learning_rate"' in text
        space.write_text(
            text.replace('FloatDim("learning_rate"', 'FloatDim("learn_rate"')
        )
        findings = analyze_project(
            [tmp_path], rules=[RULE_REGISTRY["SSP001"]]
        )
        assert [f.rule for f in findings] == ["SSP001"]
        assert "learn_rate" in findings[0].message
        # And the gate (exit code) fails for the same tree.
        code = cli_main(
            ["lint", str(tmp_path), "--select", "SSP001", "--baseline",
             str(tmp_path / "absent.json")]
        )
        assert code == 1

    def test_real_search_space_is_conformant(self):
        findings = analyze_project(
            [SRC_ROOT], rules=[RULE_REGISTRY["SSP001"]]
        )
        assert findings == []


class TestExportRules:
    def test_undefined_export_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            __all__ = ["present", "absent"]

            def present():
                return 1
            """,
            rules=["EXP001"],
        )
        assert rule_ids(findings) == ["EXP001"]
        assert "'absent'" in findings[0].message

    def test_missing_reexport_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            from repro.sub.mod import exported, forgotten

            __all__ = ["exported"]
            """,
            rules=["EXP002"],
            filename="src/repro/sub/__init__.py",
        )
        assert rule_ids(findings) == ["EXP002"]
        assert "'forgotten'" in findings[0].message
        assert findings[0].severity is Severity.WARNING

    def test_plain_module_not_checked_for_missing(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            from repro.sub.mod import exported, forgotten

            __all__ = ["exported"]
            """,
            rules=["EXP002"],
            filename="src/repro/sub/mod2.py",
        )
        assert findings == []

    def test_dynamic_all_skipped(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            names = ["a", "b"]
            __all__ = sorted(names)
            """,
            rules=["EXP001", "EXP002"],
        )
        assert findings == []


class TestGenericRules:
    def test_mutable_default_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            def f(items=[], lookup={}, seen=set(), ok=None, n=3):
                return items, lookup, seen, ok, n
            """,
            rules=["GEN001"],
        )
        assert rule_ids(findings) == ["GEN001"] * 3

    def test_bare_and_broad_except_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            try:
                x = 1
            except:
                pass
            try:
                y = 2
            except Exception:
                pass
            except (ValueError, BaseException):
                pass
            """,
            rules=["GEN002", "GEN003"],
        )
        assert sorted(rule_ids(findings)) == ["GEN002", "GEN003", "GEN003"]

    def test_shadowed_builtin_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            def f(list, id=3):
                type = "x"
                return list, id, type
            """,
            rules=["GEN004"],
        )
        assert rule_ids(findings) == ["GEN004"] * 3

    def test_class_attribute_named_like_builtin_clean(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            class Rule:
                id = "RNG001"
                format: str = "text"
            """,
            rules=["GEN004"],
        )
        assert findings == []


class TestObservabilityRule:
    def test_print_in_library_code_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            def transform(rows):
                print("transforming", len(rows))
                return rows
            """,
            rules=["OBS001"],
        )
        assert rule_ids(findings) == ["OBS001"]

    def test_cli_and_reporter_modules_exempt(self, tmp_path):
        for filename in ("cli.py", "__main__.py", "reporter.py", "report.py"):
            findings = lint_snippet(
                tmp_path / filename[:-3],
                'print("stdout is my API")\n',
                rules=["OBS001"],
                filename=filename,
            )
            assert findings == [], filename

    def test_main_guard_exempt(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            def work():
                return 1

            if __name__ == "__main__":
                print(work())
            """,
            rules=["OBS001"],
        )
        assert findings == []

    def test_print_outside_guard_still_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            print("module import side effect")

            if __name__ == "__main__":
                print("fine here")
            """,
            rules=["OBS001"],
        )
        assert len(findings) == 1
        assert findings[0].line == 2

    def test_shadowed_print_not_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            import logging

            logger = logging.getLogger(__name__)
            log = logger.info
            log("not a print")
            """,
            rules=["OBS001"],
        )
        assert findings == []

    def test_noqa_suppresses(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            print("deliberate")  # repro: noqa[OBS001]
            """,
            rules=["OBS001"],
        )
        assert findings == []


class TestSuppression:
    def test_bare_noqa_suppresses_everything(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            import numpy as np
            rng = np.random.default_rng(0)  # repro: noqa
            """,
            rules=["RNG002"],
        )
        assert findings == []

    def test_rule_scoped_noqa(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            import numpy as np
            a = np.random.default_rng(0)  # repro: noqa[RNG002]
            b = np.random.default_rng(0)  # repro: noqa[GEN001]
            """,
            rules=["RNG002"],
        )
        # Only the line whose noqa names a different rule still fires.
        assert len(findings) == 1
        assert findings[0].line == 4

    def test_suppressed_rules_parsing(self):
        assert suppressed_rules("x = 1") == frozenset()
        assert suppressed_rules("x = 1  # repro: noqa") is SUPPRESS_ALL
        assert suppressed_rules(
            "x = 1  # repro: noqa[RNG001, est002]"
        ) == {"RNG001", "EST002"}


class TestBaseline:
    def _findings(self, tmp_path):
        return lint_snippet(
            tmp_path,
            """
            import numpy as np
            rng = np.random.default_rng(0)
            """,
            rules=["RNG002"],
        )

    def test_round_trip(self, tmp_path):
        findings = self._findings(tmp_path)
        path = tmp_path / "baseline.json"
        Baseline.from_findings(findings).save(path)
        loaded = Baseline.load(path)
        result = apply_baseline(findings, loaded)
        assert result.new == []
        assert len(result.matched) == 1
        assert result.stale == []

    def test_unbaselined_finding_gates(self, tmp_path):
        findings = self._findings(tmp_path)
        result = apply_baseline(findings, Baseline())
        assert len(result.new) == 1

    def test_stale_entries_reported(self, tmp_path):
        findings = self._findings(tmp_path)
        baseline = Baseline.from_findings(findings)
        result = apply_baseline([], baseline)
        assert result.new == []
        assert len(result.stale) == 1

    def test_missing_file_is_empty(self, tmp_path):
        assert Baseline.load(tmp_path / "nope.json").entries == []

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError):
            Baseline.load(path)


class TestReporters:
    def _result(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            import numpy as np
            rng = np.random.default_rng(0)
            """,
            rules=["RNG002"],
        )
        return apply_baseline(findings, Baseline())

    def test_json_reporter_structure(self, tmp_path):
        payload = json.loads(render_json(self._result(tmp_path)))
        assert payload["summary"]["new"] == 1
        assert payload["summary"]["errors"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "RNG002"
        assert finding["path"].endswith("mod.py")
        assert finding["line"] == 3

    def test_text_reporter_is_compiler_style(self, tmp_path):
        text = render_text(self._result(tmp_path))
        assert "mod.py:3:" in text
        assert "RNG002" in text
        assert "1 finding(s)" in text

    def test_clean_run_summary(self):
        text = render_text(apply_baseline([], Baseline()))
        assert "clean" in text

    def test_json_reporter_is_schema_shaped(self, tmp_path):
        """The JSON payload exposes exactly the documented keys/types,
        with findings in stable (path, line, col) order."""
        findings = lint_snippet(
            tmp_path,
            """
            import numpy as np
            rng = np.random.default_rng(0)
            np.random.seed(1)
            """,
            rules=["RNG001", "RNG002"],
        )
        payload = json.loads(render_json(apply_baseline(findings, Baseline())))
        assert set(payload) == {
            "findings", "baselined", "stale_baseline_entries", "summary"
        }
        assert set(payload["summary"]) == {
            "new", "baselined", "stale_baseline_entries",
            "errors", "warnings",
        }
        assert all(
            isinstance(value, int) for value in payload["summary"].values()
        )
        for section in ("findings", "baselined"):
            for finding in payload[section]:
                assert set(finding) == {
                    "path", "line", "col", "rule", "severity", "message"
                }
                assert isinstance(finding["line"], int)
                assert isinstance(finding["col"], int)
                assert finding["severity"] in {"error", "warning"}
                assert finding["rule"] and finding["message"]
        for stale in payload["stale_baseline_entries"]:
            assert set(stale) == {"rule", "path", "message"}
        keys = [
            (f["path"], f["line"], f["col"]) for f in payload["findings"]
        ]
        assert len(keys) == 2
        assert keys == sorted(keys)


class TestCliIntegration:
    def test_lint_clean_tree_exits_zero(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert cli_main(["lint", str(tmp_path)]) == 0

    def test_lint_dirty_tree_exits_one(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(
            "import numpy as np\nnp.random.seed(1)\n"
        )
        assert cli_main(["lint", str(tmp_path)]) == 1
        assert "RNG001" in capsys.readouterr().out

    def test_select_unknown_rule_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            cli_main(["lint", str(tmp_path), "--select", "NOPE99"])

    def test_list_rules(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.id in out

    def test_update_baseline_writes_file(self, tmp_path):
        (tmp_path / "bad.py").write_text(
            "import numpy as np\nnp.random.seed(1)\n"
        )
        baseline = tmp_path / "baseline.json"
        assert cli_main(
            ["lint", str(tmp_path), "--baseline", str(baseline),
             "--update-baseline"]
        ) == 0
        assert len(Baseline.load(baseline).entries) == 1
        # With the baseline in place the same tree now gates clean.
        assert cli_main(
            ["lint", str(tmp_path), "--baseline", str(baseline)]
        ) == 0

    def test_nonexistent_path_exits_two(self, tmp_path, capsys):
        code = cli_main(["lint", str(tmp_path / "no_such_dir")])
        assert code == 2
        assert "no such path" in capsys.readouterr().err

    def test_empty_target_exits_two(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        code = cli_main(["lint", str(empty), "--no-cache"])
        assert code == 2
        assert "no python files" in capsys.readouterr().err

    def test_exit_two_is_distinct_from_findings_exit(self, tmp_path):
        """Usage errors (2) never collide with lint failures (1)."""
        (tmp_path / "bad.py").write_text(
            "import numpy as np\nnp.random.seed(1)\n"
        )
        assert cli_main(["lint", str(tmp_path), "--no-cache"]) == 1
        assert cli_main(["lint", str(tmp_path / "gone")]) == 2

    def test_corrupt_baseline_rejected(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        baseline = tmp_path / "baseline.json"
        baseline.write_text("{not json")
        with pytest.raises(SystemExit, match="invalid baseline"):
            cli_main(
                ["lint", str(tmp_path), "--baseline", str(baseline)]
            )


class TestSelfLintGate:
    """Tier-1 gate: the repo's own src/ must lint clean vs the baseline."""

    def test_src_has_zero_nonbaselined_findings(self):
        findings = analyze_project([SRC_ROOT])
        baseline = Baseline.load(BASELINE_PATH)
        result = apply_baseline(findings, baseline)
        assert result.new == [], "\n" + "\n".join(
            f.render() for f in result.new
        )

    def test_baseline_has_no_stale_entries(self):
        findings = analyze_project([SRC_ROOT])
        result = apply_baseline(findings, Baseline.load(BASELINE_PATH))
        assert result.stale == []

    def test_rng_rules_ship_with_empty_baseline(self):
        """The RNG findings were fixed, not grandfathered."""
        baseline = Baseline.load(BASELINE_PATH)
        rng_entries = [
            e for e in baseline.entries if e["rule"].startswith("RNG")
        ]
        assert rng_entries == []


class TestImportGraphs:
    def _graph(self, tmp_path, files):
        write_tree(tmp_path, files)
        return Project.load([tmp_path]).import_graph()

    def test_plain_and_from_imports_become_edges(self, tmp_path):
        graph = self._graph(tmp_path, {
            "src/repro/pkg/__init__.py": """
                from repro.pkg.mod import helper

                __all__ = ["helper"]
                """,
            "src/repro/pkg/mod.py": """
                def helper():
                    return 1
                """,
            "src/repro/use.py": """
                import repro.pkg

                X = repro.pkg.helper()
                """,
        })
        edges = {(e.source, e.target) for e in graph.internal_edges()}
        assert ("repro.pkg", "repro.pkg.mod") in edges
        assert ("repro.use", "repro.pkg") in edges

    def test_from_import_of_submodule_resolves_to_it(self, tmp_path):
        """``from pkg import mod`` targets the submodule, not the package —
        otherwise every facade import would look like a package cycle."""
        graph = self._graph(tmp_path, {
            "src/repro/pkg/__init__.py": "",
            "src/repro/pkg/mod.py": "def f():\n    return 1\n",
            "src/repro/use.py": """
                from repro.pkg import mod

                Y = mod.f()
                """,
        })
        edges = {(e.source, e.target) for e in graph.internal_edges()}
        assert ("repro.use", "repro.pkg.mod") in edges
        assert ("repro.use", "repro.pkg") not in edges

    def test_external_imports_are_not_internal_edges(self, tmp_path):
        graph = self._graph(tmp_path, {
            "src/repro/solo.py": "import numpy as np\nZ = np.zeros(1)\n",
        })
        assert graph.internal_edges() == []

    def test_top_level_cycle_detected(self, tmp_path):
        graph = self._graph(tmp_path, {
            "src/repro/a.py": "import repro.b\n",
            "src/repro/b.py": "import repro.a\n",
        })
        assert graph.cycles() == [["repro.a", "repro.b"]]

    def test_lazy_import_breaks_the_cycle(self, tmp_path):
        graph = self._graph(tmp_path, {
            "src/repro/a.py": "import repro.b\n",
            "src/repro/b.py": """
                def late():
                    import repro.a
                    return repro.a
                """,
        })
        assert graph.cycles() == []

    def test_to_dot_is_valid_graphviz(self, tmp_path):
        dot = self._graph(tmp_path, {
            "src/repro/a.py": "import repro.b\n",
            "src/repro/b.py": "x = 1\n",
        }).to_dot()
        lines = dot.splitlines()
        assert lines[0] == "digraph repro_imports_module {"
        assert lines[-1] == "}"
        assert '  "repro.a" -> "repro.b";' in lines
        assert dot.count("{") == dot.count("}") == 1

    def test_to_json_shape(self, tmp_path):
        payload = json.loads(self._graph(tmp_path, {
            "src/repro/a.py": "import repro.b\n",
            "src/repro/b.py": "x = 1\n",
        }).to_json())
        assert set(payload) == {"level", "nodes", "edges", "cycles"}
        assert payload["level"] == "module"
        assert payload["nodes"] == ["repro.a", "repro.b"]
        assert payload["edges"] == [
            {"source": "repro.a", "target": "repro.b"}
        ]
        assert payload["cycles"] == []

    def test_package_level_aggregation(self, tmp_path):
        payload = json.loads(self._graph(tmp_path, {
            "src/repro/pkg/__init__.py": "",
            "src/repro/pkg/inner.py": "import repro.other.mod\n",
            "src/repro/other/__init__.py": "",
            "src/repro/other/mod.py": "x = 1\n",
        }).to_json(level="package"))
        assert payload["nodes"] == ["repro.other", "repro.pkg"]
        assert payload["edges"] == [
            {"source": "repro.pkg", "target": "repro.other"}
        ]

    def test_module_summary_round_trips_through_json(self, tmp_path):
        write_tree(tmp_path, {
            "src/repro/m.py": """
                import numpy as np
                from repro.other import thing

                __all__ = ["run"]

                def run(data, rng=None):
                    out = thing(data, rng=rng)
                    return np.asarray(out)
                """,
        })
        summary = Project.load([tmp_path]).summaries["repro.m"]
        clone = type(summary).from_dict(
            json.loads(json.dumps(summary.to_dict()))
        )
        assert clone == summary


class TestLayeringContract:
    def test_parse_and_longest_prefix_wins(self):
        contract = LayeringContract.parse(
            "# comment\n"
            "layer low: repro.base\n"
            "layer high: repro.base.special repro.top\n"
        )
        assert contract.layer_of("repro.base.mod") == (0, "low")
        assert contract.layer_of("repro.base.special.mod") == (1, "high")
        assert contract.layer_of("repro.top") == (1, "high")
        assert contract.layer_of("unrelated.mod") is None

    def test_malformed_line_rejected(self):
        with pytest.raises(ContractError, match="expected 'layer"):
            LayeringContract.parse("stratum low: repro.base\n")

    def test_duplicate_package_rejected(self):
        with pytest.raises(ContractError, match="already assigned"):
            LayeringContract.parse(
                "layer a: repro.x\nlayer b: repro.x\n"
            )

    def test_find_walks_upward(self, tmp_path):
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "ARCHITECTURE_CONTRACT").write_text(
            "layer only: repro\n"
        )
        nested = tmp_path / "src" / "repro"
        nested.mkdir(parents=True)
        contract = LayeringContract.find(nested)
        assert contract is not None
        assert contract.layer_of("repro.mod") == (0, "only")
        assert LayeringContract.find(Path("/nonexistent-root")) is None

    def test_real_contract_covers_every_module(self):
        """Every module under src/ must belong to some declared layer."""
        contract = LayeringContract.find(REPO_ROOT)
        assert contract is not None
        for module in Project.load([SRC_ROOT]).summaries:
            assert contract.layer_of(module) is not None, module


class TestArchitectureRules:
    CONTRACT = "layer low: repro.base\nlayer high: repro.top\n"

    def _lint(self, tmp_path, files, rule):
        write_tree(tmp_path, files)
        return analyze_project([tmp_path], rules=[RULE_REGISTRY[rule]])

    def test_layering_inversion_flagged(self, tmp_path):
        findings = self._lint(tmp_path, {
            "docs/ARCHITECTURE_CONTRACT": self.CONTRACT,
            "src/repro/base.py": "import repro.top\n",
            "src/repro/top.py": "x = 1\n",
        }, "ARC001")
        assert rule_ids(findings) == ["ARC001"]
        assert "layering inversion" in findings[0].message
        assert "repro.base" in findings[0].message
        assert findings[0].severity is Severity.ERROR

    def test_downward_import_conforms(self, tmp_path):
        findings = self._lint(tmp_path, {
            "docs/ARCHITECTURE_CONTRACT": self.CONTRACT,
            "src/repro/base.py": "x = 1\n",
            "src/repro/top.py": "import repro.base\n",
        }, "ARC001")
        assert findings == []

    def test_missing_contract_skips_arc001(self, tmp_path):
        findings = self._lint(tmp_path, {
            "src/repro/base.py": "import repro.top\n",
            "src/repro/top.py": "x = 1\n",
        }, "ARC001")
        assert findings == []

    def test_unparseable_contract_is_a_finding(self, tmp_path):
        findings = self._lint(tmp_path, {
            "docs/ARCHITECTURE_CONTRACT": "not a layer line\n",
            "src/repro/base.py": "x = 1\n",
        }, "ARC001")
        assert rule_ids(findings) == ["ARC001"]
        assert "unparseable layering contract" in findings[0].message

    def test_import_cycle_flagged_once_per_scc(self, tmp_path):
        findings = self._lint(tmp_path, {
            "src/repro/a.py": "import repro.b\n",
            "src/repro/b.py": "import repro.a\n",
        }, "ARC002")
        assert rule_ids(findings) == ["ARC002"]
        assert "repro.a -> repro.b -> repro.a" in findings[0].message

    def test_lazy_import_cycle_not_flagged(self, tmp_path):
        findings = self._lint(tmp_path, {
            "src/repro/a.py": "import repro.b\n",
            "src/repro/b.py": (
                "def late():\n    import repro.a\n    return repro.a\n"
            ),
        }, "ARC002")
        assert findings == []


CONSUMER_MODULE = """
def consume(data, rng=None):
    return data
"""


class TestRngFlow:
    def _violations(self, tmp_path, files):
        write_tree(tmp_path, files)
        return list(
            iter_rng_flow_violations(Project.load([tmp_path]).summaries)
        )

    def test_dropped_rng_across_modules_flagged(self, tmp_path):
        violations = self._violations(tmp_path, {
            "src/repro/maker.py": CONSUMER_MODULE,
            "src/repro/driver.py": """
                from repro.maker import consume

                def run(rng):
                    return consume([1])
                """,
        })
        (violation,) = violations
        assert violation.caller == "run"
        assert violation.callee_module == "repro.maker"
        assert violation.callee_qualname == "consume"
        assert violation.held == ("rng",)
        assert violation.dropped == ("rng",)

    def test_forwarded_rng_clean(self, tmp_path):
        assert self._violations(tmp_path, {
            "src/repro/maker.py": CONSUMER_MODULE,
            "src/repro/driver.py": """
                from repro.maker import consume

                def run(rng):
                    return consume([1], rng=rng)
                """,
        }) == []

    def test_positional_forwarding_counts(self, tmp_path):
        assert self._violations(tmp_path, {
            "src/repro/maker.py": CONSUMER_MODULE,
            "src/repro/driver.py": """
                from repro.maker import consume

                def run(rng):
                    return consume([1], rng)
                """,
        }) == []

    def test_explicit_rng_none_counts_as_a_decision(self, tmp_path):
        assert self._violations(tmp_path, {
            "src/repro/maker.py": CONSUMER_MODULE,
            "src/repro/driver.py": """
                from repro.maker import consume

                def run(rng):
                    return consume([1], rng=None)
                """,
        }) == []

    def test_local_seeded_state_is_held(self, tmp_path):
        violations = self._violations(tmp_path, {
            "src/repro/maker.py": CONSUMER_MODULE,
            "src/repro/driver.py": """
                import numpy as np
                from repro.maker import consume

                def run(seed):
                    rng = np.random.default_rng(seed)
                    return consume([1])
                """,
        })
        assert len(violations) == 1
        assert set(violations[0].held) == {"rng", "seed"}

    def test_self_method_call_resolved(self, tmp_path):
        violations = self._violations(tmp_path, {
            "src/repro/sampler.py": """
                class Sampler:
                    def draw(self, n, rng=None):
                        return n

                    def run(self, rng):
                        return self.draw(3)
                """,
        })
        (violation,) = violations
        assert violation.caller == "Sampler.run"
        assert violation.callee_qualname == "Sampler.draw"

    def test_constructor_call_resolves_to_init(self, tmp_path):
        violations = self._violations(tmp_path, {
            "src/repro/maker.py": """
                class Gen:
                    def __init__(self, seed=0):
                        self.seed = seed
                """,
            "src/repro/driver.py": """
                from repro.maker import Gen

                def build(seed):
                    return Gen()
                """,
        })
        (violation,) = violations
        assert violation.callee_qualname == "Gen.__init__"
        assert violation.callee_display == "Gen()"

    def test_repro_config_callees_exempt(self, tmp_path):
        assert self._violations(tmp_path, {
            "src/repro/config.py": """
                def rng_for(scope, seed=None):
                    return (scope, seed)
                """,
            "src/repro/driver.py": """
                from repro.config import rng_for

                def run(seed):
                    return rng_for("scope")
                """,
        }) == []

    def test_rng010_fires_through_the_rule_pack(self, tmp_path):
        write_tree(tmp_path, {
            "src/repro/maker.py": CONSUMER_MODULE,
            "src/repro/driver.py": """
                from repro.maker import consume

                def run(rng):
                    return consume([1])
                """,
        })
        findings = analyze_project(
            [tmp_path], rules=[RULE_REGISTRY["RNG010"]]
        )
        assert rule_ids(findings) == ["RNG010"]
        assert findings[0].severity is Severity.ERROR
        assert "without forwarding" in findings[0].message


class TestDeadCodeRules:
    def _lint(self, tmp_path, files, rule):
        write_tree(tmp_path, files)
        return analyze_project([tmp_path], rules=[RULE_REGISTRY[rule]])

    def test_unreferenced_private_function_flagged(self, tmp_path):
        findings = self._lint(tmp_path, {
            "src/repro/util.py": """
                def _orphan():
                    return 1

                def public():
                    return 2
                """,
        }, "DEAD001")
        assert rule_ids(findings) == ["DEAD001"]
        assert "'_orphan'" in findings[0].message

    def test_unclaimed_public_symbol_flagged_with_all(self, tmp_path):
        findings = self._lint(tmp_path, {
            "src/repro/util.py": """
                __all__ = ["keep"]

                def keep():
                    return 1

                def gone():
                    return 2
                """,
        }, "DEAD001")
        assert rule_ids(findings) == ["DEAD001"]
        assert "'gone'" in findings[0].message

    def test_reference_from_any_module_keeps_alive(self, tmp_path):
        assert self._lint(tmp_path, {
            "src/repro/util.py": "def _helper():\n    return 1\n",
            "src/repro/use.py": """
                from repro.util import _helper

                X = _helper()
                """,
        }, "DEAD001") == []

    def test_decorated_symbols_exempt(self, tmp_path):
        assert self._lint(tmp_path, {
            "src/repro/util.py": """
                import functools

                @functools.cache
                def _registered():
                    return 1
                """,
        }, "DEAD001") == []

    def test_unreachable_export_flagged(self, tmp_path):
        findings = self._lint(tmp_path, {
            "src/repro/pkg/__init__.py": """
                from repro.pkg.mod import shared

                __all__ = ["shared"]
                """,
            "src/repro/pkg/mod.py": """
                __all__ = ["lonely", "shared"]

                def lonely():
                    return 1

                def shared():
                    return 2
                """,
        }, "DEAD002")
        assert rule_ids(findings) == ["DEAD002"]
        assert "'lonely'" in findings[0].message

    def test_parent_reexport_makes_export_reachable(self, tmp_path):
        assert self._lint(tmp_path, {
            "src/repro/pkg/__init__.py": """
                from repro.pkg.mod import shared

                __all__ = ["shared"]
                """,
            "src/repro/pkg/mod.py": """
                __all__ = ["shared"]

                def shared():
                    return 2
                """,
        }, "DEAD002") == []

    def test_package_init_exports_exempt(self, tmp_path):
        assert self._lint(tmp_path, {
            "src/repro/pkg/__init__.py": """
                __all__ = ["facade_only"]

                def facade_only():
                    return 1
                """,
        }, "DEAD002") == []

    def test_private_module_exports_exempt(self, tmp_path):
        assert self._lint(tmp_path, {
            "src/repro/pkg/__init__.py": "",
            "src/repro/pkg/_impl.py": """
                __all__ = ["internal"]

                def internal():
                    return 1
                """,
        }, "DEAD002") == []


class TestAnalysisCacheBehavior:
    BAD = "import numpy as np\nnp.random.seed(1)\n"

    def _run(self, src, cache_dir, rules=("RNG001",)):
        cache = AnalysisCache(cache_dir)
        findings = analyze_project(
            [src],
            rules=[RULE_REGISTRY[r] for r in rules],
            cache=cache,
        )
        return findings, cache

    def test_warm_run_replays_identical_findings(self, tmp_path):
        src = write_tree(tmp_path / "proj", {"src/mod.py": self.BAD})
        cache_dir = tmp_path / "cache"
        cold, first = self._run(src, cache_dir)
        assert first.misses > 0
        assert (cache_dir / "analysis-cache.json").is_file()
        warm, second = self._run(src, cache_dir)
        assert second.hits == 1
        assert second.misses == 0
        assert [f.to_dict() for f in warm] == [f.to_dict() for f in cold]

    def test_pure_hit_run_does_not_rewrite_cache(self, tmp_path):
        src = write_tree(tmp_path / "proj", {"src/mod.py": self.BAD})
        cache_dir = tmp_path / "cache"
        self._run(src, cache_dir)
        payload = (cache_dir / "analysis-cache.json").read_bytes()
        _, second = self._run(src, cache_dir)
        assert second.dirty is False
        assert (cache_dir / "analysis-cache.json").read_bytes() == payload

    def test_edited_file_invalidates_entry(self, tmp_path):
        src = write_tree(tmp_path / "proj", {"src/mod.py": self.BAD})
        cache_dir = tmp_path / "cache"
        cold, _ = self._run(src, cache_dir)
        assert len(cold) == 1
        (src / "src" / "mod.py").write_text(
            self.BAD + "np.random.seed(2)  # second offense\n"
        )
        warm, cache = self._run(src, cache_dir)
        assert cache.misses == 1
        assert len(warm) == 2

    def test_corrupt_cache_degrades_to_cold_run(self, tmp_path):
        src = write_tree(tmp_path / "proj", {"src/mod.py": self.BAD})
        cache_dir = tmp_path / "cache"
        self._run(src, cache_dir)
        (cache_dir / "analysis-cache.json").write_text("{not json")
        findings, cache = self._run(src, cache_dir)
        assert cache.hits == 0
        assert len(findings) == 1

    def test_cached_summaries_rebuild_whole_program_rules(self, tmp_path):
        """Project rules must see identical graphs from cache-served
        summaries — no reparse, same findings."""
        src = write_tree(tmp_path / "proj", {
            "src/repro/a.py": "import repro.b\n",
            "src/repro/b.py": "import repro.a\n",
        })
        cache_dir = tmp_path / "cache"
        cold, _ = self._run(src, cache_dir, rules=("ARC002",))
        warm, cache = self._run(src, cache_dir, rules=("ARC002",))
        assert cache.hits == 2 and cache.misses == 0
        assert [f.to_dict() for f in warm] == [f.to_dict() for f in cold]
        assert rule_ids(warm) == ["ARC002"]


GIT_ENV = ["git", "-c", "user.email=em@repro.test", "-c", "user.name=repro"]


class TestChangedMode:
    def _git(self, cwd, *argv):
        proc = subprocess.run(
            [*GIT_ENV, *argv], cwd=cwd, capture_output=True, text=True
        )
        assert proc.returncode == 0, proc.stderr
        return proc.stdout

    def _repo(self, tmp_path):
        self._git(tmp_path, "init", "-q")
        (tmp_path / "committed.py").write_text(
            "import numpy as np\nnp.random.seed(1)\n"
        )
        self._git(tmp_path, "add", ".")
        self._git(tmp_path, "commit", "-qm", "seed")
        return tmp_path

    def test_untouched_findings_out_of_scope(self, tmp_path, monkeypatch,
                                             capsys):
        """A committed, unchanged offender is invisible to --changed but
        still caught by a full run."""
        repo = self._repo(tmp_path)
        monkeypatch.chdir(repo)
        assert cli_main(["lint", ".", "--changed", "--no-cache"]) == 0
        capsys.readouterr()
        assert cli_main(["lint", ".", "--no-cache"]) == 1
        assert "RNG001" in capsys.readouterr().out

    def test_changed_file_is_linted(self, tmp_path, monkeypatch, capsys):
        repo = self._repo(tmp_path)
        (repo / "fresh.py").write_text(
            "import numpy as np\nnp.random.seed(2)\n"
        )
        monkeypatch.chdir(repo)
        assert cli_main(["lint", ".", "--changed", "--no-cache"]) == 1
        out = capsys.readouterr().out
        assert "fresh.py" in out
        assert "committed.py" not in out

    def test_changed_scopes_to_requested_paths(self, tmp_path, monkeypatch,
                                               capsys):
        repo = self._repo(tmp_path)
        write_tree(repo, {
            "inside/bad.py": "import numpy as np\nnp.random.seed(3)\n",
            "outside/bad.py": "import numpy as np\nnp.random.seed(4)\n",
        })
        monkeypatch.chdir(repo)
        assert cli_main(["lint", "inside", "--changed", "--no-cache"]) == 1
        out = capsys.readouterr().out
        assert "inside" in out and "outside" not in out

    def test_changed_update_baseline_rejected(self, tmp_path, monkeypatch,
                                              capsys):
        repo = self._repo(tmp_path)
        monkeypatch.chdir(repo)
        code = cli_main(
            ["lint", ".", "--changed", "--update-baseline", "--no-cache"]
        )
        assert code == 2
        assert "cannot update the baseline" in capsys.readouterr().err

    def test_outside_git_falls_back_to_full_run(self, tmp_path, monkeypatch,
                                                capsys):
        (tmp_path / "bad.py").write_text(
            "import numpy as np\nnp.random.seed(1)\n"
        )
        monkeypatch.chdir(tmp_path)
        assert cli_main(["lint", ".", "--changed", "--no-cache"]) == 1
        assert "RNG001" in capsys.readouterr().out


class TestGraphCli:
    FILES = {
        "src/repro/a.py": "import repro.b\n",
        "src/repro/b.py": "x = 1\n",
    }

    def test_graph_dot_emits_valid_graphviz(self, tmp_path, capsys):
        write_tree(tmp_path, self.FILES)
        code = cli_main(["lint", str(tmp_path), "--graph", "dot",
                         "--no-cache"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph repro_imports_module {")
        assert '"repro.a" -> "repro.b";' in out
        assert out.rstrip().endswith("}")

    def test_graph_json_parses(self, tmp_path, capsys):
        write_tree(tmp_path, self.FILES)
        code = cli_main(["lint", str(tmp_path), "--graph", "json",
                         "--no-cache"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["edges"] == [
            {"source": "repro.a", "target": "repro.b"}
        ]

    def test_graph_package_level(self, tmp_path, capsys):
        write_tree(tmp_path, {
            "src/repro/pkg/__init__.py": "",
            "src/repro/pkg/inner.py": "import repro.other.mod\n",
            "src/repro/other/__init__.py": "",
            "src/repro/other/mod.py": "x = 1\n",
        })
        code = cli_main(["lint", str(tmp_path), "--graph", "json",
                         "--graph-level", "package", "--no-cache"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["level"] == "package"
        assert payload["nodes"] == ["repro.other", "repro.pkg"]

    def test_committed_dot_diagram_is_current(self, capsys):
        """docs/import_graph.dot must match the graph the code produces."""
        committed = (REPO_ROOT / "docs" / "import_graph.dot").read_text()
        graph = Project.load([SRC_ROOT]).import_graph()
        assert committed == graph.to_dot(level="package")

# --------------------------------------------------------------------------
# Effect lattice + fixpoint propagation (the DET/SEAM/FORK substrate)


class TestEffectEngine:
    def _analysis(self, tmp_path, files):
        write_tree(tmp_path, files)
        project = Project.load([tmp_path])
        return project, effect_analysis(project)

    def test_effect_tags_are_the_documented_lattice(self):
        assert EFFECT_TAGS == (
            "clock", "env", "random", "order", "io", "process"
        )

    def test_direct_sites_classified(self, tmp_path):
        _, analysis = self._analysis(tmp_path, {
            "src/repro/util.py": """
                import os
                import time

                def stamp():
                    return time.time()

                def knob():
                    return os.environ.get("X")

                def listing(d):
                    return os.listdir(d)
                """,
        })
        fx = analysis.function_effects
        assert fx("repro.util", "stamp") == frozenset({"clock"})
        assert fx("repro.util", "knob") == frozenset({"env"})
        assert fx("repro.util", "listing") == frozenset({"order"})

    def test_effects_propagate_to_callers(self, tmp_path):
        _, analysis = self._analysis(tmp_path, {
            "src/repro/util.py": """
                import time

                def leaf():
                    return time.time()

                def middle():
                    return leaf()

                def top():
                    return middle()
                """,
        })
        assert "clock" in analysis.function_effects("repro.util", "top")
        assert ("repro.util", "top") not in {
            (m, q)
            for m, q in []
        }  # direct sites stay at the leaf:
        owners = [s.owner for s in analysis.direct_sites("repro.util")]
        assert owners == ["repro.util.leaf"]

    def test_sorted_wrapper_exempts_order_effect(self, tmp_path):
        _, analysis = self._analysis(tmp_path, {
            "src/repro/util.py": """
                import os

                def tidy(d):
                    return sorted(os.listdir(d))

                def messy(d):
                    return os.listdir(d)
                """,
        })
        assert analysis.function_effects("repro.util", "tidy") == frozenset()
        assert analysis.function_effects("repro.util", "messy") == {"order"}

    def test_set_iteration_is_an_order_effect(self, tmp_path):
        _, analysis = self._analysis(tmp_path, {
            "src/repro/util.py": """
                def walk(items):
                    for item in set(items):
                        yield item
                """,
        })
        (site,) = analysis.direct_sites("repro.util")
        assert site.tag == "order"
        assert "set" in site.detail

    def test_unseeded_default_rng_is_random_seeded_is_not(self, tmp_path):
        _, analysis = self._analysis(tmp_path, {
            "src/repro/util.py": """
                import numpy as np

                def ambient():
                    return np.random.default_rng()

                def pinned(seed):
                    return np.random.default_rng(seed)
                """,
        })
        assert analysis.function_effects("repro.util", "ambient") == {"random"}
        assert analysis.function_effects("repro.util", "pinned") == frozenset()

    def test_unknown_tag_rejected(self, tmp_path):
        _, analysis = self._analysis(tmp_path, {
            "src/repro/util.py": "x = 1\n",
        })
        with pytest.raises(ValueError):
            analysis.effect_functions("spooky")

    def test_summary_new_fields_round_trip_through_json(self, tmp_path):
        write_tree(tmp_path, {
            "src/repro/util.py": """
                import time

                from repro import faults

                _CACHE = {}

                def seam(path):
                    def _write():
                        faults.checkpoint("store.write", path=path)
                    faults.io_retry(_write, "store")

                def stamp():
                    try:
                        return time.time()
                    except OSError:
                        return 0.0
                """,
        })
        project = Project.load([tmp_path])
        summary = project.summaries["repro.util"]
        from repro.analysis import ModuleSummary

        clone = ModuleSummary.from_dict(
            json.loads(json.dumps(summary.to_dict()))
        )
        assert clone == summary
        assert clone.globals_info == (("_CACHE", "mutable", 6),)
        info = clone.functions["stamp"]
        assert info.caught == ("OSError",)
        assert any(tag == "clock" for tag, *_ in info.effects)
        seam_info = clone.functions["seam"]
        assert seam_info.retry_wraps == (("_write", "store", 11),)


# --------------------------------------------------------------------------
# Contract directives


class TestContractDirectives:
    def test_directives_parse_and_accumulate(self):
        contract = LayeringContract.parse(
            """
            layer base: repro.config
            core determinism: repro.experiments
            core determinism: repro.parallel
            seam raises: store report.store
            """,
            source="inline",
        )
        assert contract.directive("core determinism") == (
            "repro.experiments", "repro.parallel"
        )
        assert contract.directive("seam raises") == ("store", "report.store")
        assert contract.directive("fork entrypoints") == ()

    def test_empty_directive_value_rejected(self):
        with pytest.raises(ContractError):
            LayeringContract.parse("core determinism:\n", source="inline")

    def test_unknown_keyword_still_reports_layer_expectation(self):
        with pytest.raises(ContractError, match="expected 'layer"):
            LayeringContract.parse("flavor town: repro\n", source="inline")


# --------------------------------------------------------------------------
# DET001-DET004: determinism taint over the core's import closure

DET_FILES = {
    "src/repro/experiments/runner.py": """
        from repro.util import stamp

        def run():
            return stamp()
        """,
    "src/repro/util.py": """
        import time

        def stamp():
            return time.time()
        """,
}


class TestDeterminismRules:
    def test_clock_reachable_from_core_flagged_at_source(self, tmp_path):
        write_tree(tmp_path, DET_FILES)
        findings = analyze_project([tmp_path], rules=[RULE_REGISTRY["DET001"]])
        (finding,) = findings
        assert finding.rule == "DET001"
        assert finding.path == "src/repro/util.py"
        assert finding.line == 5  # the time.time() call, not the caller
        assert "repro.util.stamp" in finding.message
        assert "telemetry.wallclock()" in finding.message

    def test_propagation_chain_rendered_from_core(self, tmp_path):
        write_tree(tmp_path, DET_FILES)
        (finding,) = analyze_project(
            [tmp_path], rules=[RULE_REGISTRY["DET001"]]
        )
        assert (
            "repro.experiments.runner.run -> repro.util.stamp"
            in finding.message
        )

    def test_module_unreachable_from_core_not_flagged(self, tmp_path):
        write_tree(tmp_path, {
            "src/repro/offline.py": DET_FILES["src/repro/util.py"],
        })
        assert analyze_project(
            [tmp_path], rules=[RULE_REGISTRY["DET001"]]
        ) == []

    def test_exempt_package_not_flagged(self, tmp_path):
        write_tree(tmp_path, {
            "src/repro/experiments/runner.py": """
                from repro.telemetry.spans import stamp

                def run():
                    return stamp()
                """,
            "src/repro/telemetry/spans.py": DET_FILES["src/repro/util.py"],
        })
        assert analyze_project(
            [tmp_path], rules=[RULE_REGISTRY["DET001"]]
        ) == []

    def test_contract_core_directive_overrides_default(self, tmp_path):
        write_tree(tmp_path, {
            "src/repro/offline.py": DET_FILES["src/repro/util.py"],
            "src/repro/driver.py": """
                import repro.offline
                """,
            "docs/ARCHITECTURE_CONTRACT": """
                core determinism: repro.driver
                """,
        })
        (finding,) = analyze_project(
            [tmp_path], rules=[RULE_REGISTRY["DET001"]]
        )
        assert finding.path == "src/repro/offline.py"

    def test_env_random_and_order_families_fire(self, tmp_path):
        write_tree(tmp_path, {
            "src/repro/experiments/runner.py": """
                from repro.util import knob, roll, walk

                def run(d):
                    return knob(), roll(), walk(d)
                """,
            "src/repro/util.py": """
                import os
                import random

                def knob():
                    return os.environ.get("X")

                def roll():
                    return random.random()

                def walk(d):
                    return list(os.listdir(d))
                """,
        })
        findings = analyze_project(
            [tmp_path],
            rules=[RULE_REGISTRY[r] for r in ("DET002", "DET003", "DET004")],
        )
        assert sorted(rule_ids(findings)) == ["DET002", "DET003", "DET004"]


# --------------------------------------------------------------------------
# noqa placement for inter-procedural findings

class TestInterProceduralSuppression:
    def test_rng010_noqa_sits_on_the_caller_call_site(self, tmp_path):
        files = {
            "src/repro/maker.py": CONSUMER_MODULE,
            "src/repro/driver.py": """
                from repro.maker import consume

                def run(rng):
                    return consume([1])  # repro: noqa[RNG010]
                """,
        }
        write_tree(tmp_path, files)
        assert analyze_project(
            [tmp_path], rules=[RULE_REGISTRY["RNG010"]]
        ) == []

    def test_det_noqa_sits_on_the_propagation_source(self, tmp_path):
        files = dict(DET_FILES)
        files["src/repro/util.py"] = """
            import time

            def stamp():
                return time.time()  # repro: noqa[DET001]
            """
        write_tree(tmp_path, files)
        assert analyze_project(
            [tmp_path], rules=[RULE_REGISTRY["DET001"]]
        ) == []

    def test_det_noqa_on_the_caller_does_not_suppress(self, tmp_path):
        files = dict(DET_FILES)
        files["src/repro/experiments/runner.py"] = """
            from repro.util import stamp

            def run():
                return stamp()  # repro: noqa[DET001]
            """
        write_tree(tmp_path, files)
        findings = analyze_project(
            [tmp_path], rules=[RULE_REGISTRY["DET001"]]
        )
        assert rule_ids(findings) == ["DET001"]

    def test_seam_noqa_sits_on_the_io_call(self, tmp_path):
        write_tree(tmp_path, {
            "src/repro/faults/plan.py": SEAM_PLAN,
            "src/repro/store.py": """
                def dump(path, text):
                    with open(path, "w") as handle:  # repro: noqa[SEAM001]
                        handle.write(text)
                """,
        })
        assert analyze_project(
            [tmp_path], rules=[RULE_REGISTRY["SEAM001"]]
        ) == []

    def test_fork_noqa_sits_on_the_global_binding(self, tmp_path):
        files = dict(FORK_FILES)
        files["src/repro/pool/worker.py"] = """
            _CACHE = {}  # repro: noqa[FORK001]

            def run_cell(x):
                _CACHE[x] = x
                return _CACHE[x]
            """
        write_tree(tmp_path, files)
        assert analyze_project(
            [tmp_path], rules=[RULE_REGISTRY["FORK001"]]
        ) == []

# --------------------------------------------------------------------------
# SEAM001-SEAM003: fault-seam coverage

SEAM_PLAN = """
    CATALOG: dict[str, str] = {
        "store.write": "io",
        "store.replace": "io",
        "cache.read": "corrupt",
    }
    """


class TestSeamRules:
    def test_family_disarmed_without_a_fault_catalog(self, tmp_path):
        write_tree(tmp_path, {
            "src/repro/store.py": """
                def dump(path, text):
                    with open(path, "w") as handle:
                        handle.write(text)
                """,
        })
        assert analyze_project(
            [tmp_path], rules=[RULE_REGISTRY["SEAM001"]]
        ) == []

    def test_unseamed_io_flagged(self, tmp_path):
        write_tree(tmp_path, {
            "src/repro/faults/plan.py": SEAM_PLAN,
            "src/repro/store.py": """
                def dump(path, text):
                    with open(path, "w") as handle:
                        handle.write(text)
                """,
        })
        (finding,) = analyze_project(
            [tmp_path], rules=[RULE_REGISTRY["SEAM001"]]
        )
        assert finding.rule == "SEAM001"
        assert finding.path == "src/repro/store.py"
        assert "repro.store.dump" in finding.message

    def test_checkpointed_function_clean(self, tmp_path):
        write_tree(tmp_path, {
            "src/repro/faults/plan.py": SEAM_PLAN,
            "src/repro/store.py": """
                from repro import faults

                def dump(path, text):
                    faults.checkpoint("store.write", path=str(path))
                    with open(path, "w") as handle:
                        handle.write(text)
                """,
        })
        assert analyze_project(
            [tmp_path], rules=[RULE_REGISTRY["SEAM001"]]
        ) == []

    def test_io_retry_operand_clean(self, tmp_path):
        write_tree(tmp_path, {
            "src/repro/faults/plan.py": SEAM_PLAN,
            "src/repro/store.py": """
                from repro import faults

                def dump(path, text):
                    def _write():
                        with open(path, "w") as handle:
                            handle.write(text)
                    faults.io_retry(_write, "store")
                """,
        })
        assert analyze_project(
            [tmp_path], rules=[RULE_REGISTRY["SEAM001"]]
        ) == []

    def test_module_level_io_flagged(self, tmp_path):
        write_tree(tmp_path, {
            "src/repro/faults/plan.py": SEAM_PLAN,
            "src/repro/store.py": """
                BANNER = open("/etc/hostname").read()
                """,
        })
        (finding,) = analyze_project(
            [tmp_path], rules=[RULE_REGISTRY["SEAM001"]]
        )
        assert "import time" in finding.message

    def test_uncataloged_checkpoint_is_drift(self, tmp_path):
        write_tree(tmp_path, {
            "src/repro/faults/plan.py": SEAM_PLAN,
            "src/repro/store.py": """
                from repro import faults

                def read(path):
                    faults.checkpoint("mystery.read", path=str(path))
                    return path
                """,
        })
        findings = analyze_project(
            [tmp_path], rules=[RULE_REGISTRY["SEAM002"]]
        )
        assert any(
            f.path == "src/repro/store.py" and "mystery.read" in f.message
            for f in findings
        )

    def test_dead_catalog_entry_fails_lint(self, tmp_path):
        """Catalog/code drift is a lint error anchored in the plan file."""
        write_tree(tmp_path, {
            "src/repro/faults/plan.py": SEAM_PLAN,
            "src/repro/store.py": """
                from repro import faults

                def dump(path, text):
                    faults.checkpoint("store.write", path=str(path))
                    faults.checkpoint("store.replace", path=str(path))
                    return text
                """,
        })
        (finding,) = analyze_project(
            [tmp_path], rules=[RULE_REGISTRY["SEAM002"]]
        )
        assert finding.path == "src/repro/faults/plan.py"
        assert "'cache.read'" in finding.message
        assert "no live checkpoint" in finding.message

    def test_catalog_and_code_in_sync_clean(self, tmp_path):
        write_tree(tmp_path, {
            "src/repro/faults/plan.py": SEAM_PLAN,
            "src/repro/store.py": """
                from repro import faults

                def dump(path, text):
                    def _write():
                        return text
                    faults.io_retry(_write, "store")

                def read(path):
                    faults.checkpoint("cache.read", path=str(path))
                    return path
                """,
        })
        assert analyze_project(
            [tmp_path], rules=[RULE_REGISTRY["SEAM002"]]
        ) == []

    def test_corrupt_seam_needs_in_function_recovery(self, tmp_path):
        write_tree(tmp_path, {
            "src/repro/faults/plan.py": SEAM_PLAN,
            "src/repro/store.py": """
                from repro import faults

                def read(path):
                    faults.checkpoint("cache.read", path=str(path))
                    return path.read_text()
                """,
        })
        (finding,) = analyze_project(
            [tmp_path], rules=[RULE_REGISTRY["SEAM003"]]
        )
        assert "mark_recovered" in finding.message

    def test_corrupt_seam_with_recovery_clean(self, tmp_path):
        write_tree(tmp_path, {
            "src/repro/faults/plan.py": SEAM_PLAN,
            "src/repro/store.py": """
                from repro import faults

                def read(path):
                    faults.checkpoint("cache.read", path=str(path))
                    try:
                        return path.read_text()
                    except UnicodeDecodeError:
                        faults.mark_recovered("cache.read", path=str(path))
                        return None
                """,
        })
        assert analyze_project(
            [tmp_path], rules=[RULE_REGISTRY["SEAM003"]]
        ) == []

    def test_io_retry_with_no_handler_anywhere_flagged(self, tmp_path):
        write_tree(tmp_path, {
            "src/repro/faults/plan.py": SEAM_PLAN,
            "src/repro/store.py": """
                from repro import faults

                def dump(path, text):
                    def _write():
                        return text
                    faults.io_retry(_write, "store")
                """,
        })
        (finding,) = analyze_project(
            [tmp_path], rules=[RULE_REGISTRY["SEAM003"]]
        )
        assert "seam raises: store" in finding.message

    def test_io_retry_declared_raise_by_contract_clean(self, tmp_path):
        write_tree(tmp_path, {
            "docs/ARCHITECTURE_CONTRACT": """
                seam raises: store
                """,
            "src/repro/faults/plan.py": SEAM_PLAN,
            "src/repro/store.py": """
                from repro import faults

                def dump(path, text):
                    def _write():
                        return text
                    faults.io_retry(_write, "store")
                """,
        })
        assert analyze_project(
            [tmp_path], rules=[RULE_REGISTRY["SEAM003"]]
        ) == []

    def test_io_retry_caller_catching_oserror_clean(self, tmp_path):
        write_tree(tmp_path, {
            "src/repro/faults/plan.py": SEAM_PLAN,
            "src/repro/store.py": """
                from repro import faults

                def dump(path, text):
                    def _write():
                        return text
                    faults.io_retry(_write, "store")

                def safe_dump(path, text):
                    try:
                        return dump(path, text)
                    except OSError:
                        return None
                """,
        })
        assert analyze_project(
            [tmp_path], rules=[RULE_REGISTRY["SEAM003"]]
        ) == []


# --------------------------------------------------------------------------
# FORK001-FORK002: fork safety

FORK_CONTRACT = """
    fork entrypoints: repro.pool.worker:run_cell
    fork initializers: repro.pool.worker:init
    """

FORK_FILES = {
    "docs/ARCHITECTURE_CONTRACT": FORK_CONTRACT,
    "src/repro/pool/worker.py": """
        _CACHE = {}

        def run_cell(x):
            _CACHE[x] = x
            return _CACHE[x]
        """,
}


class TestForkRules:
    def test_family_disarmed_without_entry_points(self, tmp_path):
        write_tree(tmp_path, {
            "src/repro/pool/worker.py": "_CACHE = {}\n",
        })
        assert analyze_project(
            [tmp_path], rules=[RULE_REGISTRY["FORK001"]]
        ) == []

    def test_unreinitialized_cache_flagged(self, tmp_path):
        write_tree(tmp_path, FORK_FILES)
        (finding,) = analyze_project(
            [tmp_path], rules=[RULE_REGISTRY["FORK001"]]
        )
        assert finding.rule == "FORK001"
        assert "repro.pool.worker._CACHE" in finding.message
        assert "repro.pool.worker:run_cell" in finding.message

    def test_initializer_rebinding_clears_the_finding(self, tmp_path):
        files = dict(FORK_FILES)
        files["src/repro/pool/worker.py"] = """
            _CACHE = {}

            def run_cell(x):
                _CACHE[x] = x
                return _CACHE[x]

            def init():
                global _CACHE
                _CACHE = {}
            """
        write_tree(tmp_path, files)
        assert analyze_project(
            [tmp_path], rules=[RULE_REGISTRY["FORK001"]]
        ) == []

    def test_rebinding_through_a_called_helper_counts(self, tmp_path):
        files = dict(FORK_FILES)
        files["src/repro/pool/worker.py"] = """
            _CACHE = {}

            def run_cell(x):
                _CACHE[x] = x
                return _CACHE[x]

            def _reset():
                global _CACHE
                _CACHE = {}

            def init():
                _reset()
            """
        write_tree(tmp_path, files)
        assert analyze_project(
            [tmp_path], rules=[RULE_REGISTRY["FORK001"]]
        ) == []

    def test_populated_literal_table_is_not_state(self, tmp_path):
        files = dict(FORK_FILES)
        files["src/repro/pool/worker.py"] = """
            _TABLE = {"a": 1, "b": 2}

            def run_cell(x):
                return _TABLE[x]
            """
        write_tree(tmp_path, files)
        assert analyze_project(
            [tmp_path], rules=[RULE_REGISTRY["FORK001"]]
        ) == []

    def test_reachable_import_state_flagged(self, tmp_path):
        files = dict(FORK_FILES)
        files["src/repro/pool/worker.py"] = """
            from repro.pool import shared

            def run_cell(x):
                return shared.get(x)
            """
        files["src/repro/pool/shared.py"] = """
            _MEMO = {}

            def get(x):
                return _MEMO.get(x)
            """
        write_tree(tmp_path, files)
        (finding,) = analyze_project(
            [tmp_path], rules=[RULE_REGISTRY["FORK001"]]
        )
        assert "repro.pool.shared._MEMO" in finding.message

    def test_module_level_lock_flagged(self, tmp_path):
        files = dict(FORK_FILES)
        files["src/repro/pool/worker.py"] = """
            import threading

            _LOCK = threading.Lock()

            def run_cell(x):
                with _LOCK:
                    return x
            """
        write_tree(tmp_path, files)
        (finding,) = analyze_project(
            [tmp_path], rules=[RULE_REGISTRY["FORK002"]]
        )
        assert finding.rule == "FORK002"
        assert "lock" in finding.message

    def test_fork_policy_resolves_only_existing_functions(self, tmp_path):
        write_tree(tmp_path, {
            "docs/ARCHITECTURE_CONTRACT": """
                fork entrypoints: repro.pool.worker:missing
                """,
            "src/repro/pool/worker.py": "_CACHE = {}\n",
        })
        project = Project.load([tmp_path])
        entrypoints, initializers = fork_policy(project)
        assert entrypoints == ()


# --------------------------------------------------------------------------
# Cache salt (analyzer/contract content, not just file mtime+size)


class TestCacheSalt:
    BAD = "import numpy as np\nnp.random.seed(1)\n"

    def _run(self, src, cache_dir, salt):
        cache = AnalysisCache(cache_dir, salt=salt)
        findings = analyze_project(
            [src], rules=[RULE_REGISTRY["RNG001"]], cache=cache
        )
        return findings, cache

    def test_same_salt_hits(self, tmp_path):
        src = write_tree(tmp_path / "proj", {"src/mod.py": self.BAD})
        cache_dir = tmp_path / "cache"
        self._run(src, cache_dir, salt="rulepack-v1")
        _, warm = self._run(src, cache_dir, salt="rulepack-v1")
        assert warm.hits == 1 and warm.misses == 0

    def test_changed_salt_invalidates_whole_cache(self, tmp_path):
        """mtime+size alone cannot see rule edits; the salt must."""
        src = write_tree(tmp_path / "proj", {"src/mod.py": self.BAD})
        cache_dir = tmp_path / "cache"
        self._run(src, cache_dir, salt="rulepack-v1")
        findings, cache = self._run(src, cache_dir, salt="rulepack-v2")
        assert cache.hits == 0 and cache.misses == 1
        assert len(findings) == 1  # still correct, just recomputed

    def test_salt_persisted_in_cache_payload(self, tmp_path):
        src = write_tree(tmp_path / "proj", {"src/mod.py": self.BAD})
        cache_dir = tmp_path / "cache"
        self._run(src, cache_dir, salt="rulepack-v1")
        payload = json.loads(
            (cache_dir / "analysis-cache.json").read_text()
        )
        assert payload["salt"] == "rulepack-v1"

    def test_analysis_salt_tracks_contract_content(self, tmp_path):
        a = write_tree(tmp_path / "a", {
            "docs/ARCHITECTURE_CONTRACT": "layer base: repro.config\n",
        })
        b = write_tree(tmp_path / "b", {
            "docs/ARCHITECTURE_CONTRACT": "layer base: repro.exceptions\n",
        })
        c = write_tree(tmp_path / "c", {
            "docs/ARCHITECTURE_CONTRACT": "layer base: repro.config\n",
        })
        assert analysis_salt(a) != analysis_salt(b)
        assert analysis_salt(a) == analysis_salt(c)

    def test_lint_cli_salts_the_cache(self, tmp_path, monkeypatch, capsys):
        src = write_tree(tmp_path, {"src/mod.py": self.BAD})
        monkeypatch.chdir(src)
        cache_dir = src / ".cache"
        assert cli_main(
            ["lint", "src", "--cache-dir", str(cache_dir)]
        ) == 1
        capsys.readouterr()
        payload = json.loads(
            (cache_dir / "analysis-cache.json").read_text()
        )
        assert payload["salt"] == analysis_salt(src / "src")


# --------------------------------------------------------------------------
# --changed re-analyzes the reverse-dependency closure


class TestChangedClosure:
    def _git(self, cwd, *argv):
        proc = subprocess.run(
            [*GIT_ENV, *argv], cwd=cwd, capture_output=True, text=True
        )
        assert proc.returncode == 0, proc.stderr
        return proc.stdout

    def _repo(self, tmp_path):
        self._git(tmp_path, "init", "-q")
        write_tree(tmp_path, {
            "src/repro/maker.py": """
                def consume(items):
                    return items
                """,
            "src/repro/driver.py": """
                from repro.maker import consume

                def run(rng):
                    return consume([1])
                """,
            "src/repro/bystander.py": """
                import numpy as np
                np.random.seed(9)
                """,
        })
        self._git(tmp_path, "add", ".")
        self._git(tmp_path, "commit", "-qm", "seed")
        return tmp_path

    def test_changed_callee_surfaces_finding_on_unchanged_caller(
        self, tmp_path, monkeypatch, capsys
    ):
        """Growing an rng parameter on the callee creates an RNG010 in
        the *unchanged* caller; --changed must not miss it."""
        repo = self._repo(tmp_path)
        monkeypatch.chdir(repo)
        assert cli_main(["lint", "src", "--changed", "--no-cache"]) == 0
        capsys.readouterr()
        (repo / "src/repro/maker.py").write_text(
            "def consume(items, rng=None):\n    return items\n"
        )
        assert cli_main(["lint", "src", "--changed", "--no-cache"]) == 1
        out = capsys.readouterr().out
        assert "RNG010" in out
        assert "driver.py" in out

    def test_out_of_closure_findings_stay_invisible(
        self, tmp_path, monkeypatch, capsys
    ):
        """The committed bystander offender is not in the changed
        closure, so --changed keeps ignoring it."""
        repo = self._repo(tmp_path)
        monkeypatch.chdir(repo)
        (repo / "src/repro/maker.py").write_text(
            "def consume(items, rng=None):\n    return items\n"
        )
        cli_main(["lint", "src", "--changed", "--no-cache"])
        out = capsys.readouterr().out
        assert "bystander.py" not in out

    def test_full_run_still_sees_everything(
        self, tmp_path, monkeypatch, capsys
    ):
        repo = self._repo(tmp_path)
        monkeypatch.chdir(repo)
        assert cli_main(["lint", "src", "--no-cache"]) == 1
        out = capsys.readouterr().out
        assert "bystander.py" in out


# --------------------------------------------------------------------------
# Loop-nest extraction: the LoopInfo/LoopCall inputs of the cost analysis


def _function(code, qualname="f"):
    tree = ast.parse(textwrap.dedent(code))
    from repro.analysis import summarize_module

    return summarize_module(tree, "m", "m.py", False).functions[qualname]


class TestLoopExtraction:
    def test_kinds_parents_and_bounds(self):
        info = _function("""
            def f(xs):
                for x in xs:
                    while x:
                        g(x)
                ys = [g(v) for v in xs]
                return ys
            """)
        kinds = [(loop.kind, loop.parent) for loop in info.loops]
        assert kinds == [("for", -1), ("while", 0), ("listcomp", -1)]
        assert info.loops[0].bound == ("x",)
        assert info.loops[0].iter_name == "xs"
        assert info.loops[2].bound == ("v",)
        stacks = {c.callee_repr: c.loops for c in info.loop_calls}
        assert stacks["g"] in ({(0, 1), (2,)}, stacks["g"])  # per-call below
        by_line = sorted(info.loop_calls, key=lambda c: c.lineno)
        assert by_line[0].loops == (0, 1)
        assert by_line[1].loops == (2,)

    def test_constant_trip_counts_detected(self):
        info = _function("""
            def f(n, xs):
                for i in range(3):
                    g(i)
                for j in range(n):
                    g(j)
                for t in (1, 2, 3):
                    g(t)
            """)
        assert [loop.is_const for loop in info.loops] == [True, False, True]

    def test_break_marks_the_nearest_loop(self):
        info = _function("""
            def f(xs):
                for x in xs:
                    for y in xs:
                        if y:
                            break
            """)
        assert not info.loops[0].has_break
        assert info.loops[1].has_break

    def test_else_clause_is_outside_the_frame(self):
        info = _function("""
            def f(xs):
                for x in xs:
                    pass
                else:
                    g(1)
            """)
        assert info.loop_calls == ()  # outside every frame: no record
        (site,) = info.calls
        assert site.loops == ()

    def test_first_comp_iterable_evaluated_outside(self):
        info = _function("""
            def f(ys):
                return [g(x) for x in h(ys)]
            """)
        by_name = {c.callee_repr: c.loops for c in info.loop_calls}
        assert "h" not in by_name  # evaluated once, outside the frame
        assert len(by_name["g"]) == 1
        frames = {site.callee[-1]: site.loops for site in info.calls}
        assert frames["h"] == ()
        assert len(frames["g"]) == 1

    def test_later_comp_iterables_inside_earlier_frames(self):
        info = _function("""
            def f(xs):
                return [x for x in xs for y in g(x)]
            """)
        (call,) = info.loop_calls
        assert len(call.loops) == 1  # inside the x frame only

    def test_nested_defs_get_their_own_loops(self):
        tree = ast.parse(textwrap.dedent("""
            def f(xs):
                def inner(ys):
                    for y in ys:
                        g(y)
                for x in xs:
                    inner(x)
            """))
        from repro.analysis import summarize_module

        functions = summarize_module(tree, "m", "m.py", False).functions
        assert len(functions["f"].loops) == 1  # inner's loop not counted
        assert len(functions["f.inner"].loops) == 1
        (outer_call,) = functions["f"].loop_calls
        assert outer_call.callee_repr == "inner"

    def test_lambda_bodies_attributed_to_the_enclosing_function(self):
        info = _function("""
            def f(xs):
                for x in xs:
                    k = lambda v: g(v)
            """)
        reprs = [c.callee_repr for c in info.loop_calls]
        assert "g" in reprs

    def test_loop_invariance_per_frame(self):
        info = _function("""
            def f(xs, ys, cfg):
                for i in xs:
                    for j in ys:
                        g(cfg)
                        h(j)
            """)
        by_name = {c.callee_repr: c for c in info.loop_calls}
        assert by_name["g"].invariant == (0, 1)  # cfg never varies
        assert by_name["h"].invariant == (0,)  # j is fresh per i? no:
        # ys does not depend on i, so h(j)'s sweep repeats per i — the
        # loop-interchange hoist — and frame 0 counts as invariant.

    def test_carried_dependence_defeats_interchange(self):
        info = _function("""
            def f(xs, ys):
                for i in xs:
                    for j in ys[i]:
                        h(j)
            """)
        (call,) = info.loop_calls
        assert call.invariant == ()  # j's sweep really changes with i

    def test_assignment_varies_all_open_frames(self):
        info = _function("""
            def f(xs, ys):
                for i in xs:
                    acc = step(i)
                    for j in ys:
                        h(acc)
            """)
        by_name = {c.callee_repr: c for c in info.loop_calls}
        assert by_name["h"].invariant == (1,)  # acc changes per i

    def test_loop_fields_round_trip_through_json(self, tmp_path):
        write_tree(tmp_path, {
            "src/repro/m.py": """
                import numpy as np

                def f(xs, table):
                    out = []
                    arr = np.zeros(3)
                    for i in xs:
                        out.append(arr[i])
                    while xs:
                        g(xs)
                        break
                    return np.vstack([g(x) for x in xs])
                """,
        })
        summary = Project.load([tmp_path]).summaries["repro.m"]
        info = summary.functions["f"]
        assert any(loop.subscript_by_bound for loop in info.loops)
        assert any(call.numpy_ctor_comp for call in info.loop_calls)
        clone = type(summary).from_dict(
            json.loads(json.dumps(summary.to_dict()))
        )
        assert clone == summary


# --------------------------------------------------------------------------
# The multiplicity lattice and the cost fixpoint


class TestMultiplicityLattice:
    def test_ordering_is_the_join(self):
        from repro.analysis import Multiplicity

        once = Multiplicity(0)
        per_pair = Multiplicity(2)
        assert max(once, per_pair) == per_pair
        assert max(Multiplicity(2, k=True), per_pair) == Multiplicity(2, True)

    def test_bump_and_render(self):
        from repro.analysis import Multiplicity

        m = Multiplicity(0)
        assert m.render() == "once"
        assert m.bump(1).render() == "per-record"
        assert m.bump(2).render() == "per-pair"
        assert m.bump(2, const_loops=1).render() == "per-pair×k"
        assert m.bump(7).render() == "per-pair×k"  # overflow caps with ×k
        assert m.bump(7).rank == Multiplicity.MAX_RANK

    def test_spec_matches_shapes(self):
        from repro.analysis import spec_matches

        assert spec_matches("repro.a:C.m", "repro.a", "C.m")
        assert spec_matches("repro.a:C", "repro.a", "C.m")  # class covers
        assert not spec_matches("repro.a:C.m", "repro.b", "C.m")
        assert spec_matches("repro.a", "repro.a.sub", "f")  # module subtree
        assert not spec_matches("repro.a", "repro.ab", "f")
        assert spec_matches("embed", "anything", "Encoder.embed")  # bare
        assert not spec_matches("embed", "anything", "Encoder.embed_all")


COST_CONTRACT = """
layer base: repro
cost entrypoints: repro.app:main
cost expensive: repro.heavy:embed
cost hot loops: repro.blocking
"""


class TestCostAnalysis:
    def _cost(self, tmp_path, files):
        from repro.analysis import cost_analysis

        write_tree(tmp_path, files)
        return cost_analysis(Project.load([tmp_path]))

    def test_propagation_through_loop_frames(self, tmp_path):
        cost = self._cost(tmp_path, {
            "docs/ARCHITECTURE_CONTRACT": COST_CONTRACT,
            "src/repro/app.py": """
                from repro.util import per_record, per_pair

                def main(pairs):
                    for pair in pairs:
                        per_record(pair)
                        for side in pair:
                            per_pair(side)
                """,
            "src/repro/util.py": """
                def per_record(x):
                    return x

                def per_pair(x):
                    return x
                """,
        })
        assert cost.multiplicity("repro.app", "main").render() == "once"
        assert cost.multiplicity("repro.util", "per_record").render() == "per-record"
        assert cost.multiplicity("repro.util", "per_pair").render() == "per-pair"

    def test_constant_loops_ride_as_k(self, tmp_path):
        cost = self._cost(tmp_path, {
            "docs/ARCHITECTURE_CONTRACT": COST_CONTRACT,
            "src/repro/app.py": """
                from repro.util import leaf

                def main(pairs):
                    for pair in pairs:
                        for layer in range(4):
                            leaf(pair)
                """,
            "src/repro/util.py": "def leaf(x):\n    return x\n",
        })
        assert cost.multiplicity("repro.util", "leaf").render() == "per-record×k"

    def test_recursion_caps_at_the_lattice_top(self, tmp_path):
        cost = self._cost(tmp_path, {
            "docs/ARCHITECTURE_CONTRACT": COST_CONTRACT,
            "src/repro/app.py": """
                def main(xs):
                    for x in xs:
                        main(xs)
                """,
        })
        assert cost.multiplicity("repro.app", "main").render() == "per-pair×k"

    def test_duck_resolution_reaches_receiver_typed_methods(self, tmp_path):
        cost = self._cost(tmp_path, {
            "docs/ARCHITECTURE_CONTRACT": (
                "layer base: repro\ncost entrypoints: repro.app:App.run\n"
            ),
            "src/repro/enc.py": """
                class Encoder:
                    def embed_rows(self, x):
                        return x
                """,
            "src/repro/app.py": """
                class App:
                    def run(self, items):
                        for item in items:
                            self.encoder.embed_rows(item)
                """,
        })
        mult = cost.multiplicity("repro.enc", "Encoder.embed_rows")
        assert mult is not None and mult.render() == "per-record"

    def test_unreached_site_assumed_once(self, tmp_path):
        cost = self._cost(tmp_path, {
            "docs/ARCHITECTURE_CONTRACT": COST_CONTRACT,
            "src/repro/orphan.py": """
                def lonely(xs):
                    for x in xs:
                        for y in x:
                            g(y)
                """,
        })
        assert cost.multiplicity("repro.orphan", "lonely") is None
        site = cost.site_multiplicity("repro.orphan", "lonely", (0, 1))
        assert site.render() == "per-pair"

    def test_chain_renders_loop_frames(self, tmp_path):
        cost = self._cost(tmp_path, {
            "docs/ARCHITECTURE_CONTRACT": COST_CONTRACT,
            "src/repro/heavy.py": "def embed(batch):\n    return batch\n",
            "src/repro/app.py": """
                from repro.heavy import embed

                def main(pairs):
                    for pair in pairs:
                        embed(pair)
                """,
        })
        chain = cost.chain("repro.heavy", "embed")
        assert chain[0] == "repro.app:main"
        assert "-[for pair in pairs]->" in chain[1]

    def test_hotspots_rank_expensive_first(self, tmp_path):
        cost = self._cost(tmp_path, {
            "docs/ARCHITECTURE_CONTRACT": COST_CONTRACT,
            "src/repro/heavy.py": "def embed(batch):\n    return batch\n",
            "src/repro/util.py": "def cheap(x):\n    return x\n",
            "src/repro/app.py": """
                from repro.heavy import embed
                from repro.util import cheap

                def main(pairs):
                    for pair in pairs:
                        cheap(pair)
                        for side in pair:
                            embed(side)
                """,
        })
        spots = cost.hotspots()
        assert (spots[0].module, spots[0].qualname) == ("repro.heavy", "embed")
        assert spots[0].reason == "declared expensive"
        assert spots[0].multiplicity.render() == "per-pair"
        top = cost.hotspots(top=1)
        assert len(top) == 1
        payload = spots[0].to_dict()
        assert set(payload) == {
            "module", "qualname", "lineno", "multiplicity", "weight",
            "score", "reason", "chain",
        }


# --------------------------------------------------------------------------
# PERF001-PERF004: the hot-path rule family


class TestPerfRules:
    def _lint(self, tmp_path, files, rule):
        write_tree(tmp_path, files)
        return analyze_project([tmp_path], rules=[RULE_REGISTRY[rule]])

    def test_perf001_expensive_call_with_invariant_args(self, tmp_path):
        findings = self._lint(tmp_path, {
            "docs/ARCHITECTURE_CONTRACT": COST_CONTRACT,
            "src/repro/heavy.py": "def embed(batch):\n    return batch\n",
            "src/repro/app.py": """
                from repro.heavy import embed

                def main(pairs, model):
                    out = []
                    for pair in pairs:
                        for side in pair:
                            out.append(embed(model))
                    return out
                """,
        }, "PERF001")
        assert rule_ids(findings) == ["PERF001"]
        assert findings[0].severity is Severity.ERROR
        assert "per-pair" in findings[0].message
        assert "hoist" in findings[0].message

    def test_perf001_varying_args_clean(self, tmp_path):
        findings = self._lint(tmp_path, {
            "docs/ARCHITECTURE_CONTRACT": COST_CONTRACT,
            "src/repro/heavy.py": "def embed(batch):\n    return batch\n",
            "src/repro/app.py": """
                from repro.heavy import embed

                def main(pairs):
                    out = []
                    for pair in pairs:
                        for side in pair:
                            out.append(embed(side))
                    return out
                """,
        }, "PERF001")
        assert findings == []

    def test_perf001_noqa_at_the_call_site(self, tmp_path):
        findings = self._lint(tmp_path, {
            "docs/ARCHITECTURE_CONTRACT": COST_CONTRACT,
            "src/repro/heavy.py": "def embed(batch):\n    return batch\n",
            "src/repro/app.py": """
                from repro.heavy import embed

                def main(pairs, model):
                    out = []
                    for pair in pairs:
                        for side in pair:
                            out.append(embed(model))  # repro: noqa[PERF001]
                    return out
                """,
        }, "PERF001")
        assert findings == []

    def test_perf002_loop_invariant_pure_call(self, tmp_path):
        findings = self._lint(tmp_path, {
            "docs/ARCHITECTURE_CONTRACT": COST_CONTRACT,
            "src/repro/util.py": "def norm(cfg):\n    return cfg\n",
            "src/repro/app.py": """
                from repro.util import norm

                def main(pairs, cfg):
                    acc = []
                    for pair in pairs:
                        for item in pair:
                            acc.append(norm(cfg))
                    return acc
                """,
        }, "PERF002")
        assert rule_ids(findings) == ["PERF002"]
        assert findings[0].severity is Severity.WARNING
        assert "invariant" in findings[0].message

    def test_perf002_loop_interchange_case(self, tmp_path):
        """The sweep over pairs repeats identically per position — the
        exact shape fixed in the adapter pipeline this PR."""
        findings = self._lint(tmp_path, {
            "docs/ARCHITECTURE_CONTRACT": COST_CONTRACT,
            "src/repro/util.py": "def tok(p, s):\n    return (p, s)\n",
            "src/repro/app.py": """
                from repro.util import tok

                def main(pairs, schema, n):
                    return [
                        [tok(pair, schema)[pos] for pair in pairs]
                        for pos in range(n)
                    ]
                """,
        }, "PERF002")
        assert rule_ids(findings) == ["PERF002"]
        assert "for pos in range(n)" in findings[0].message

    def test_perf002_rng_fed_calls_exempt(self, tmp_path):
        findings = self._lint(tmp_path, {
            "docs/ARCHITECTURE_CONTRACT": COST_CONTRACT,
            "src/repro/util.py": "def draw(rng):\n    return rng\n",
            "src/repro/app.py": """
                from repro.util import draw

                def main(pairs, rng):
                    acc = []
                    for pair in pairs:
                        for item in pair:
                            acc.append(draw(rng))
                    return acc
                """,
        }, "PERF002")
        assert findings == []

    def test_perf002_constructors_exempt(self, tmp_path):
        findings = self._lint(tmp_path, {
            "docs/ARCHITECTURE_CONTRACT": COST_CONTRACT,
            "src/repro/app.py": """
                class Model:
                    def __init__(self, depth=3):
                        self.depth = depth

                def main(pairs, depth):
                    acc = []
                    for pair in pairs:
                        for item in pair:
                            acc.append(Model(depth))
                    return acc
                """,
        }, "PERF002")
        assert findings == []

    def test_perf003_numpy_ctor_over_comprehension(self, tmp_path):
        findings = self._lint(tmp_path, {
            "docs/ARCHITECTURE_CONTRACT": COST_CONTRACT,
            "src/repro/util.py": "def encode(r):\n    return r\n",
            "src/repro/app.py": """
                import numpy as np

                from repro.feats import featurize

                def main(rows):
                    for row in rows:
                        featurize(row)
                """,
            "src/repro/feats.py": """
                import numpy as np

                from repro.util import encode

                def featurize(row):
                    return np.vstack([encode(r) for r in row])
                """,
        }, "PERF003")
        assert rule_ids(findings) == ["PERF003"]
        assert "np.vstack" in findings[0].message
        assert "vectorized" in findings[0].message

    def test_perf003_cheap_elements_clean(self, tmp_path):
        findings = self._lint(tmp_path, {
            "docs/ARCHITECTURE_CONTRACT": COST_CONTRACT,
            "src/repro/app.py": """
                import numpy as np

                def main(rows):
                    out = []
                    for row in rows:
                        out.append(np.asarray([len(r) for r in row]))
                    return out
                """,
        }, "PERF003")
        assert findings == []

    def test_perf003_append_loop_with_numpy_subscripts(self, tmp_path):
        findings = self._lint(tmp_path, {
            "docs/ARCHITECTURE_CONTRACT": COST_CONTRACT,
            "src/repro/app.py": """
                import numpy as np

                def gather(ids):
                    table = np.zeros((4, 4))
                    out = []
                    for i in ids:
                        out.append(table[i])
                    return out
                """,
        }, "PERF003")
        assert rule_ids(findings) == ["PERF003"]
        assert "`out`" in findings[0].message
        assert "fancy-indexed" in findings[0].message

    def test_perf003_break_bounded_loop_clean(self, tmp_path):
        findings = self._lint(tmp_path, {
            "docs/ARCHITECTURE_CONTRACT": COST_CONTRACT,
            "src/repro/app.py": """
                import numpy as np

                def gather(ids):
                    table = np.zeros((4, 4))
                    out = []
                    for i in ids:
                        out.append(table[i])
                        break
                    return out
                """,
        }, "PERF003")
        assert findings == []

    def test_perf003_non_numpy_subscripts_clean(self, tmp_path):
        findings = self._lint(tmp_path, {
            "docs/ARCHITECTURE_CONTRACT": COST_CONTRACT,
            "src/repro/app.py": """
                def gather(ids, table):
                    out = []
                    for i in ids:
                        out.append(table[i])
                    return out
                """,
        }, "PERF003")
        assert findings == []

    def test_perf003_sanctioned_hot_module_exempt(self, tmp_path):
        findings = self._lint(tmp_path, {
            "docs/ARCHITECTURE_CONTRACT": COST_CONTRACT,
            "src/repro/blocking.py": """
                import numpy as np

                def gather(ids):
                    table = np.zeros((4, 4))
                    out = []
                    for i in ids:
                        out.append(table[i])
                    return out
                """,
        }, "PERF003")
        assert findings == []

    def test_perf004_nested_parameter_iteration(self, tmp_path):
        findings = self._lint(tmp_path, {
            "docs/ARCHITECTURE_CONTRACT": COST_CONTRACT,
            "src/repro/app.py": """
                def cross(left, right):
                    hits = []
                    for a in left:
                        for b in right:
                            hits.append((a, b))
                    return hits
                """,
        }, "PERF004")
        assert rule_ids(findings) == ["PERF004"]
        assert findings[0].severity is Severity.ERROR
        assert "quadratic" in findings[0].message
        assert "blocking" in findings[0].message

    def test_perf004_same_parameter_twice_clean(self, tmp_path):
        findings = self._lint(tmp_path, {
            "docs/ARCHITECTURE_CONTRACT": COST_CONTRACT,
            "src/repro/app.py": """
                def pairs_of(items):
                    hits = []
                    for a in items:
                        for b in items:
                            hits.append((a, b))
                    return hits
                """,
        }, "PERF004")
        assert findings == []

    def test_perf004_blessed_blocking_module_exempt(self, tmp_path):
        findings = self._lint(tmp_path, {
            "docs/ARCHITECTURE_CONTRACT": COST_CONTRACT,
            "src/repro/blocking.py": """
                def cross(left, right):
                    hits = []
                    for a in left:
                        for b in right:
                            hits.append((a, b))
                    return hits
                """,
        }, "PERF004")
        assert findings == []

    def test_perf001_message_renders_the_call_chain(self, tmp_path):
        findings = self._lint(tmp_path, {
            "docs/ARCHITECTURE_CONTRACT": COST_CONTRACT,
            "src/repro/heavy.py": "def embed(batch):\n    return batch\n",
            "src/repro/app.py": """
                from repro.heavy import embed
                from repro.work import stage

                def main(pairs, model):
                    for pair in pairs:
                        stage(pair, model)
                """,
            "src/repro/work.py": """
                from repro.heavy import embed

                def stage(pair, model):
                    for side in pair:
                        embed(model)
                """,
        }, "PERF001")
        assert rule_ids(findings) == ["PERF001"]
        assert "repro.app:main" in findings[0].message
        assert "-[for pair in pairs]->" in findings[0].message


# --------------------------------------------------------------------------
# The --hotspots report: library ranking on src/ plus the CLI surface


class TestHotspotReport:
    def test_adapter_embed_path_ranks_hot_on_src(self):
        from repro.analysis import cost_analysis

        project = Project.load([SRC_ROOT])
        cost = cost_analysis(project)
        # Since the entity-store refactor, the adapter's hot primitive is
        # the per-entity tokenize+embed (entity_half); _sequence_matrix
        # remains hot only on the embed_sequences path.
        mult = cost.multiplicity(
            "repro.transformers.pretrained",
            "PretrainedEncoder.entity_half",
        )
        assert mult is not None and mult.rank >= 2
        top = {
            (spot.module, spot.qualname) for spot in cost.hotspots(top=5)
        }
        assert (
            "repro.transformers.pretrained",
            "PretrainedEncoder.entity_half",
        ) in top
        embed = cost.multiplicity(
            "repro.adapter.embedder", "TransformerEmbedder.embed_pairs"
        )
        assert embed is not None and embed.rank >= 2

    def test_cli_hotspots_text(self, tmp_path, monkeypatch, capsys):
        write_tree(tmp_path, {
            "docs/ARCHITECTURE_CONTRACT": COST_CONTRACT,
            "src/repro/heavy.py": "def embed(batch):\n    return batch\n",
            "src/repro/app.py": """
                from repro.heavy import embed

                def main(pairs):
                    for pair in pairs:
                        embed(pair)
                """,
        })
        monkeypatch.chdir(tmp_path)
        assert cli_main(["lint", "src", "--hotspots", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "repro.heavy:embed" in out
        assert "[per-record]" in out
        assert "declared expensive" in out

    def test_cli_hotspots_json(self, tmp_path, monkeypatch, capsys):
        write_tree(tmp_path, {
            "docs/ARCHITECTURE_CONTRACT": COST_CONTRACT,
            "src/repro/heavy.py": "def embed(batch):\n    return batch\n",
            "src/repro/app.py": """
                from repro.heavy import embed

                def main(pairs):
                    for pair in pairs:
                        embed(pair)
                """,
        })
        monkeypatch.chdir(tmp_path)
        assert cli_main([
            "lint", "src", "--hotspots", "--format", "json",
            "--top", "1", "--no-cache",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["shown"] == 1
        assert payload["total"] >= 2
        spot = payload["hotspots"][0]
        assert spot["module"] == "repro.heavy"
        assert spot["multiplicity"] == "per-record"
        assert isinstance(spot["chain"], list)
