"""The repro.analysis engine: per-rule unit tests, suppression, baseline,
reporters, CLI — and the tier-1 self-lint gate over ``src/``."""

from __future__ import annotations

import json
import shutil
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    Severity,
    all_rules,
    analyze_project,
    apply_baseline,
    render_json,
    render_text,
    suppressed_rules,
)
from repro.analysis.core import RULE_REGISTRY, SUPPRESS_ALL
from repro.cli import main as cli_main

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC_ROOT = REPO_ROOT / "src"
BASELINE_PATH = REPO_ROOT / "lint_baseline.json"


def lint_snippet(tmp_path, code, rules=None, filename="mod.py"):
    """Write one snippet and run selected rules over it."""
    target = tmp_path / filename
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(code))
    if rules is not None:
        rules = [RULE_REGISTRY[r] for r in rules]
    return analyze_project([tmp_path], rules=rules)


def rule_ids(findings):
    return [f.rule for f in findings]


class TestRngRules:
    def test_np_random_seed_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            import numpy as np
            np.random.seed(42)
            """,
            rules=["RNG001"],
        )
        assert rule_ids(findings) == ["RNG001"]
        assert "global" in findings[0].message

    def test_legacy_global_draw_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            import numpy as np
            x = np.random.rand(3)
            state = np.random.RandomState(0)
            """,
            rules=["RNG001"],
        )
        assert rule_ids(findings) == ["RNG001", "RNG001"]

    def test_hardcoded_default_rng_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            import numpy as np
            a = np.random.default_rng(0)
            b = np.random.default_rng()
            c = np.random.default_rng(-7)
            """,
            rules=["RNG002"],
        )
        assert rule_ids(findings) == ["RNG002"] * 3
        assert findings[0].severity is Severity.ERROR

    def test_variable_and_scoped_seeds_clean(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            import numpy as np
            from repro.config import rng_for, stable_hash

            def f(seed, cfg):
                a = np.random.default_rng(seed)
                b = np.random.default_rng(cfg.seed)
                c = np.random.default_rng(stable_hash("scope", seed))
                d = rng_for("scope", 3)
                return a, b, c, d
            """,
            rules=["RNG001", "RNG002"],
        )
        assert findings == []

    def test_repro_config_is_exempt(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            import numpy as np
            RNG = np.random.default_rng(0)
            """,
            rules=["RNG002"],
            filename="src/repro/config.py",
        )
        assert findings == []


class TestEstimatorRules:
    def test_fit_returning_non_self_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            class Model:
                def fit(self, X, y):
                    self.coef_ = X.mean()
                    return self.coef_
            """,
            rules=["EST001"],
        )
        assert rule_ids(findings) == ["EST001"]

    def test_fit_falling_off_the_end_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            class Model:
                def fit(self, X, y):
                    self.coef_ = X.mean()
            """,
            rules=["EST001"],
        )
        assert rule_ids(findings) == ["EST001"]

    def test_fit_nested_function_returns_ignored(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            class Model:
                def fit(self, X, y):
                    def objective(w):
                        return w * 2
                    self.w_ = objective(1.0)
                    return self
            """,
            rules=["EST001"],
        )
        assert findings == []

    def test_abstract_fit_clean(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            class Base:
                def fit(self, X, y):
                    raise NotImplementedError
            """,
            rules=["EST001"],
        )
        assert findings == []

    def test_unguarded_predict_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            class Model:
                def fit(self, X, y):
                    self.coef_ = X.mean()
                    return self

                def predict(self, X):
                    return X @ self.coef_
            """,
            rules=["EST002"],
        )
        assert rule_ids(findings) == ["EST002"]

    @pytest.mark.parametrize(
        "body",
        [
            "check_is_fitted(self); return X",
            "self._check_fitted(); return X",
            "if not self.is_fitted: raise NotFittedError('unfitted')",
            "return self.predict_proba(X)",
            "return self.final_estimator.predict(X)",
        ],
    )
    def test_guarded_predict_clean(self, tmp_path, body):
        findings = lint_snippet(
            tmp_path,
            f"""
            class Model:
                def fit(self, X, y):
                    return self

                def predict(self, X):
                    {body}
            """,
            rules=["EST002"],
        )
        assert findings == []

    def test_private_class_skipped(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            class _Internal:
                def fit(self, X, y):
                    return self

                def predict(self, X):
                    return X
            """,
            rules=["EST002"],
        )
        assert findings == []


MINI_ESTIMATOR = """
class GoodModel:
    def __init__(self, depth: int = 3, rate: float = 0.1, seed: int = 0):
        self.depth = depth
        self.rate = rate
        self.seed = seed
"""

MINI_SEARCH_SPACE = """
from repro.ml.mini import GoodModel

_SHARED = CategoricalDim("rate", (0.1, 0.2))

FAMILY_SPACES = {{
    "good": ConfigSpace(
        "good",
        (IntDim("{dim}", 1, 8), _SHARED),
        defaults={{"{dim}": 3, "rate": 0.1}},
    ),
}}


def _build_model(family, params, seed):
    p = dict(params)
    if family == "good":
        return GoodModel(
            depth=int(p.get("{dim}", 3)),
            rate=float(p.get("rate", 0.1)),
            seed=seed,
        )
    raise ValueError(family)
"""


class TestSearchSpaceRule:
    def _mini_project(self, tmp_path, dim):
        automl = tmp_path / "src" / "repro" / "automl"
        ml = tmp_path / "src" / "repro" / "ml"
        automl.mkdir(parents=True)
        ml.mkdir(parents=True)
        (automl / "search_space.py").write_text(
            MINI_SEARCH_SPACE.format(dim=dim)
        )
        (ml / "mini.py").write_text(MINI_ESTIMATOR)
        return analyze_project([tmp_path], rules=[RULE_REGISTRY["SSP001"]])

    def test_conforming_space_clean(self, tmp_path):
        assert self._mini_project(tmp_path, "depth") == []

    def test_misnamed_hyperparameter_flagged(self, tmp_path):
        findings = self._mini_project(tmp_path, "depht")
        assert findings, "misnamed dimension must be flagged"
        assert all(f.rule == "SSP001" for f in findings)
        assert any("'depht'" in f.message for f in findings)

    def test_misnaming_in_real_search_space_fails_gate(self, tmp_path):
        """Acceptance: a typo'd hyperparameter in the real search_space.py
        must fail the lint gate."""
        root = tmp_path / "src" / "repro"
        shutil.copytree(SRC_ROOT / "repro" / "automl", root / "automl")
        shutil.copytree(SRC_ROOT / "repro" / "ml", root / "ml")
        space = root / "automl" / "search_space.py"
        text = space.read_text()
        assert 'FloatDim("learning_rate"' in text
        space.write_text(
            text.replace('FloatDim("learning_rate"', 'FloatDim("learn_rate"')
        )
        findings = analyze_project(
            [tmp_path], rules=[RULE_REGISTRY["SSP001"]]
        )
        assert [f.rule for f in findings] == ["SSP001"]
        assert "learn_rate" in findings[0].message
        # And the gate (exit code) fails for the same tree.
        code = cli_main(
            ["lint", str(tmp_path), "--select", "SSP001", "--baseline",
             str(tmp_path / "absent.json")]
        )
        assert code == 1

    def test_real_search_space_is_conformant(self):
        findings = analyze_project(
            [SRC_ROOT], rules=[RULE_REGISTRY["SSP001"]]
        )
        assert findings == []


class TestExportRules:
    def test_undefined_export_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            __all__ = ["present", "absent"]

            def present():
                return 1
            """,
            rules=["EXP001"],
        )
        assert rule_ids(findings) == ["EXP001"]
        assert "'absent'" in findings[0].message

    def test_missing_reexport_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            from repro.sub.mod import exported, forgotten

            __all__ = ["exported"]
            """,
            rules=["EXP002"],
            filename="src/repro/sub/__init__.py",
        )
        assert rule_ids(findings) == ["EXP002"]
        assert "'forgotten'" in findings[0].message
        assert findings[0].severity is Severity.WARNING

    def test_plain_module_not_checked_for_missing(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            from repro.sub.mod import exported, forgotten

            __all__ = ["exported"]
            """,
            rules=["EXP002"],
            filename="src/repro/sub/mod2.py",
        )
        assert findings == []

    def test_dynamic_all_skipped(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            names = ["a", "b"]
            __all__ = sorted(names)
            """,
            rules=["EXP001", "EXP002"],
        )
        assert findings == []


class TestGenericRules:
    def test_mutable_default_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            def f(items=[], lookup={}, seen=set(), ok=None, n=3):
                return items, lookup, seen, ok, n
            """,
            rules=["GEN001"],
        )
        assert rule_ids(findings) == ["GEN001"] * 3

    def test_bare_and_broad_except_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            try:
                x = 1
            except:
                pass
            try:
                y = 2
            except Exception:
                pass
            except (ValueError, BaseException):
                pass
            """,
            rules=["GEN002", "GEN003"],
        )
        assert sorted(rule_ids(findings)) == ["GEN002", "GEN003", "GEN003"]

    def test_shadowed_builtin_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            def f(list, id=3):
                type = "x"
                return list, id, type
            """,
            rules=["GEN004"],
        )
        assert rule_ids(findings) == ["GEN004"] * 3

    def test_class_attribute_named_like_builtin_clean(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            class Rule:
                id = "RNG001"
                format: str = "text"
            """,
            rules=["GEN004"],
        )
        assert findings == []


class TestSuppression:
    def test_bare_noqa_suppresses_everything(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            import numpy as np
            rng = np.random.default_rng(0)  # repro: noqa
            """,
            rules=["RNG002"],
        )
        assert findings == []

    def test_rule_scoped_noqa(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            import numpy as np
            a = np.random.default_rng(0)  # repro: noqa[RNG002]
            b = np.random.default_rng(0)  # repro: noqa[GEN001]
            """,
            rules=["RNG002"],
        )
        # Only the line whose noqa names a different rule still fires.
        assert len(findings) == 1
        assert findings[0].line == 4

    def test_suppressed_rules_parsing(self):
        assert suppressed_rules("x = 1") == frozenset()
        assert suppressed_rules("x = 1  # repro: noqa") is SUPPRESS_ALL
        assert suppressed_rules(
            "x = 1  # repro: noqa[RNG001, est002]"
        ) == {"RNG001", "EST002"}


class TestBaseline:
    def _findings(self, tmp_path):
        return lint_snippet(
            tmp_path,
            """
            import numpy as np
            rng = np.random.default_rng(0)
            """,
            rules=["RNG002"],
        )

    def test_round_trip(self, tmp_path):
        findings = self._findings(tmp_path)
        path = tmp_path / "baseline.json"
        Baseline.from_findings(findings).save(path)
        loaded = Baseline.load(path)
        result = apply_baseline(findings, loaded)
        assert result.new == []
        assert len(result.matched) == 1
        assert result.stale == []

    def test_unbaselined_finding_gates(self, tmp_path):
        findings = self._findings(tmp_path)
        result = apply_baseline(findings, Baseline())
        assert len(result.new) == 1

    def test_stale_entries_reported(self, tmp_path):
        findings = self._findings(tmp_path)
        baseline = Baseline.from_findings(findings)
        result = apply_baseline([], baseline)
        assert result.new == []
        assert len(result.stale) == 1

    def test_missing_file_is_empty(self, tmp_path):
        assert Baseline.load(tmp_path / "nope.json").entries == []

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError):
            Baseline.load(path)


class TestReporters:
    def _result(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            """
            import numpy as np
            rng = np.random.default_rng(0)
            """,
            rules=["RNG002"],
        )
        return apply_baseline(findings, Baseline())

    def test_json_reporter_structure(self, tmp_path):
        payload = json.loads(render_json(self._result(tmp_path)))
        assert payload["summary"]["new"] == 1
        assert payload["summary"]["errors"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "RNG002"
        assert finding["path"].endswith("mod.py")
        assert finding["line"] == 3

    def test_text_reporter_is_compiler_style(self, tmp_path):
        text = render_text(self._result(tmp_path))
        assert "mod.py:3:" in text
        assert "RNG002" in text
        assert "1 finding(s)" in text

    def test_clean_run_summary(self):
        text = render_text(apply_baseline([], Baseline()))
        assert "clean" in text


class TestCliIntegration:
    def test_lint_clean_tree_exits_zero(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert cli_main(["lint", str(tmp_path)]) == 0

    def test_lint_dirty_tree_exits_one(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(
            "import numpy as np\nnp.random.seed(1)\n"
        )
        assert cli_main(["lint", str(tmp_path)]) == 1
        assert "RNG001" in capsys.readouterr().out

    def test_select_unknown_rule_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            cli_main(["lint", str(tmp_path), "--select", "NOPE99"])

    def test_list_rules(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.id in out

    def test_update_baseline_writes_file(self, tmp_path):
        (tmp_path / "bad.py").write_text(
            "import numpy as np\nnp.random.seed(1)\n"
        )
        baseline = tmp_path / "baseline.json"
        assert cli_main(
            ["lint", str(tmp_path), "--baseline", str(baseline),
             "--update-baseline"]
        ) == 0
        assert len(Baseline.load(baseline).entries) == 1
        # With the baseline in place the same tree now gates clean.
        assert cli_main(
            ["lint", str(tmp_path), "--baseline", str(baseline)]
        ) == 0

    def test_nonexistent_path_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="no such path"):
            cli_main(["lint", str(tmp_path / "no_such_dir")])

    def test_corrupt_baseline_rejected(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        baseline = tmp_path / "baseline.json"
        baseline.write_text("{not json")
        with pytest.raises(SystemExit, match="invalid baseline"):
            cli_main(
                ["lint", str(tmp_path), "--baseline", str(baseline)]
            )


class TestSelfLintGate:
    """Tier-1 gate: the repo's own src/ must lint clean vs the baseline."""

    def test_src_has_zero_nonbaselined_findings(self):
        findings = analyze_project([SRC_ROOT])
        baseline = Baseline.load(BASELINE_PATH)
        result = apply_baseline(findings, baseline)
        assert result.new == [], "\n" + "\n".join(
            f.render() for f in result.new
        )

    def test_baseline_has_no_stale_entries(self):
        findings = analyze_project([SRC_ROOT])
        result = apply_baseline(findings, Baseline.load(BASELINE_PATH))
        assert result.stale == []

    def test_rng_rules_ship_with_empty_baseline(self):
        """The RNG findings were fixed, not grandfathered."""
        baseline = Baseline.load(BASELINE_PATH)
        rng_entries = [
            e for e in baseline.entries if e["rule"].startswith("RNG")
        ]
        assert rng_entries == []
