"""Additional coverage: cost model shape, evaluation harness, word2vec
featurizer edge cases, and CLI table rendering at tiny scale."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.automl.resources import model_cost_hours
from repro.data import load_dataset, split_dataset
from repro.matching import MagellanMatcher, evaluate_matcher
from repro.matching.evaluation import EvaluationResult


class TestCostModel:
    def test_tree_families_cost_more_than_linear(self):
        linear = model_cost_hours("logreg", 10_000, 100)
        forest = model_cost_hours("random_forest", 10_000, 100)
        boost = model_cost_hours("gbm", 10_000, 100)
        assert boost > forest > linear

    def test_feature_scaling(self):
        narrow = model_cost_hours("gbm", 5_000, 50)
        wide = model_cost_hours("gbm", 5_000, 500)
        assert wide == pytest.approx(10 * narrow)

    def test_complexity_scaling(self):
        base = model_cost_hours("gbm", 5_000, 100, complexity=1.0)
        double = model_cost_hours("gbm", 5_000, 100, complexity=2.0)
        assert double == pytest.approx(2 * base)

    def test_unknown_family_gets_default_cost(self):
        assert model_cost_hours("mystery", 1_000, 100) > 0

    def test_floors_prevent_zero_cost(self):
        assert model_cost_hours("logreg", 1, 1) > 0

    def test_deepmatcher_full_scale_matches_paper_magnitude(self):
        """Full-scale S-DG DeepMatcher should cost near the paper's 8.5h."""
        from repro.matching.deepmatcher import _COST_PER_KROW_ATTR

        train_rows = int(28_707 * 0.6)
        n_attrs = 4 + 1  # schema + record-level path
        hours = _COST_PER_KROW_ATTR * train_rows / 1000.0 * n_attrs
        assert 6.0 < hours < 11.0


class TestEvaluationHarness:
    def test_result_string_rendering(self):
        result = EvaluationResult(
            system="x", dataset="S-DA", f1=91.234, precision=90.0,
            recall=92.5, simulated_hours=1.5, wall_seconds=12.0,
        )
        text = str(result)
        assert "x on S-DA" in text and "91.23" in text

    def test_evaluate_magellan(self):
        splits = split_dataset(load_dataset("S-BR", scale=0.02))
        result = evaluate_matcher(MagellanMatcher(seed=0), splits)
        assert result.system == "magellan"
        assert result.dataset == "S-BR"
        assert math.isfinite(result.f1)
        assert result.wall_seconds > 0


class TestWord2VecFeaturizerEdgeCases:
    def test_all_empty_text_rows(self):
        from repro.adapter import Word2VecFeaturizer
        from repro.data.schema import EMDataset, PairRecord, Schema

        schema = Schema.of("s", "a")
        pairs = [
            PairRecord(i, {"a": ""}, {"a": ""}, i % 2) for i in range(4)
        ]
        dataset = EMDataset("empty", schema, pairs)
        features = Word2VecFeaturizer(dim=4, epochs=1).fit_transform(dataset)
        assert features.shape == (4, 8)
        assert np.allclose(features, 0.0)
