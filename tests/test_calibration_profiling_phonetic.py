"""Tests for calibration, dataset profiling, and phonetic encodings."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.profiling import profile_dataset
from repro.exceptions import NotFittedError
from repro.ml.calibration import (
    IsotonicCalibrator,
    PlattCalibrator,
    expected_calibration_error,
)
from repro.text.phonetic import metaphone, phonetic_equal, soundex

words = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122), max_size=12
)


class TestPlatt:
    def test_recovers_shifted_sigmoid(self):
        rng = np.random.default_rng(0)
        scores = rng.normal(size=2000)
        true_p = 1.0 / (1.0 + np.exp(-(2.0 * scores - 1.0)))
        y = (rng.random(2000) < true_p).astype(float)
        calibrated = PlattCalibrator().fit(scores, y).transform(scores)
        ece_raw = expected_calibration_error(
            y, 1.0 / (1.0 + np.exp(-scores))
        )
        ece_cal = expected_calibration_error(y, calibrated)
        assert ece_cal < ece_raw

    def test_requires_fit(self):
        with pytest.raises(NotFittedError):
            PlattCalibrator().transform(np.zeros(3))

    def test_output_in_unit_interval(self):
        cal = PlattCalibrator().fit(
            np.array([-2.0, -1.0, 1.0, 2.0]), np.array([0, 0, 1, 1])
        )
        out = cal.transform(np.linspace(-10, 10, 50))
        assert ((out >= 0) & (out <= 1)).all()


class TestIsotonic:
    def test_monotone_output(self):
        rng = np.random.default_rng(1)
        scores = rng.random(300)
        y = (rng.random(300) < scores).astype(float)
        cal = IsotonicCalibrator().fit(scores, y)
        grid = np.linspace(0, 1, 100)
        out = cal.transform(grid)
        assert (np.diff(out) >= -1e-12).all()

    def test_perfectly_separable(self):
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        y = np.array([0, 0, 1, 1])
        cal = IsotonicCalibrator().fit(scores, y)
        assert cal.transform(np.array([0.15]))[0] == pytest.approx(0.0)
        assert cal.transform(np.array([0.85]))[0] == pytest.approx(1.0)

    def test_violations_pooled(self):
        # All labels equal -> single pooled block.
        scores = np.array([0.1, 0.5, 0.9])
        y = np.array([1, 1, 1])
        cal = IsotonicCalibrator().fit(scores, y)
        out = cal.transform(np.array([0.0, 0.5, 1.0]))
        np.testing.assert_allclose(out, 1.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            IsotonicCalibrator().fit(np.zeros(3), np.zeros(4))

    def test_requires_fit(self):
        with pytest.raises(NotFittedError):
            IsotonicCalibrator().transform(np.zeros(2))

    @given(st.integers(0, 1000))
    @settings(max_examples=25)
    def test_calibrated_mean_matches_base_rate(self, seed):
        rng = np.random.default_rng(seed)
        scores = rng.random(100)
        y = rng.integers(0, 2, 100).astype(float)
        cal = IsotonicCalibrator().fit(scores, y)
        # PAV approximately preserves the base rate on the training
        # points (exact at block ends; interpolation inside blocks).
        assert cal.transform(scores).mean() == pytest.approx(
            y.mean(), abs=0.08
        )


class TestECE:
    def test_perfect_calibration_zero(self):
        proba = np.array([0.0, 1.0, 0.0, 1.0])
        y = np.array([0, 1, 0, 1])
        assert expected_calibration_error(y, proba) == pytest.approx(0.0)

    def test_overconfident_penalized(self):
        y = np.array([0, 0, 0, 1])
        proba = np.full(4, 0.95)
        assert expected_calibration_error(y, proba) > 0.5


class TestProfiling:
    def test_profile_shapes(self, tiny_sda):
        profile = profile_dataset(tiny_sda)
        assert profile.n_pairs == len(tiny_sda)
        assert len(profile.attributes) == len(tiny_sda.schema.attributes)
        assert profile.imbalance_ratio > 1.0  # EM data is imbalanced.

    def test_overlap_gap_positive_on_discriminative_attr(self, tiny_sda):
        profile = profile_dataset(tiny_sda)
        best = profile.most_discriminative()
        assert best.overlap_gap > 0.15
        assert best.overlap_match > best.overlap_nonmatch

    def test_summary_renders(self, tiny_sda):
        text = profile_dataset(tiny_sda).summary()
        assert "S-DA" in text and "title" in text

    def test_missing_rate_bounds(self, tiny_sda):
        for attr in profile_dataset(tiny_sda).attributes:
            assert 0.0 <= attr.missing_rate <= 1.0


class TestPhonetic:
    def test_soundex_classic(self):
        assert soundex("Robert") == "R163"
        assert soundex("Rupert") == "R163"
        assert soundex("Ashcraft") == soundex("Ashcroft")

    def test_soundex_padding(self):
        assert soundex("Lee") == "L000"

    def test_soundex_empty(self):
        assert soundex("") == ""
        assert soundex("123") == ""

    def test_metaphone_transformations(self):
        assert metaphone("phone") == metaphone("fone")
        assert metaphone("shark")[0] == "x"
        assert metaphone("city")[0] == "s"
        assert metaphone("cat")[0] == "k"

    def test_metaphone_silent_e(self):
        assert metaphone("kate") == metaphone("kat")

    def test_phonetic_equal(self):
        assert phonetic_equal("smith", "smyth")
        assert not phonetic_equal("smith", "jones")
        assert not phonetic_equal("", "smith")

    @given(words)
    @settings(max_examples=40)
    def test_soundex_shape(self, word):
        code = soundex(word)
        assert code == "" or (len(code) == 4 and code[0].isupper())
