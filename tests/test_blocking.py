"""Tests for the blocking subsystem and match clustering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.blocking import (
    MinHashBlocker,
    SortedNeighborhoodBlocker,
    TokenBlocker,
    blocking_quality,
    cluster_matches,
    make_candidate_dataset,
)
from repro.data.generators import RestaurantGenerator
from repro.data.schema import Schema
from repro.exceptions import DataError


def make_tables(n=40, seed=0):
    """Two tables describing overlapping restaurants + true match pairs."""
    generator = RestaurantGenerator()
    rng = np.random.default_rng(seed)
    left, right, matches = [], [], set()
    for i in range(n):
        entity = generator.sample_entity(rng)
        l_row, r_row = generator.render_pair(entity, rng)
        left.append(l_row)
        if i % 2 == 0:  # Half the left entities exist on the right too.
            right.append(r_row)
            matches.add((i, len(right) - 1))
    # Plus right-only entities.
    for _ in range(n // 2):
        entity = generator.sample_entity(rng)
        _l, r_row = generator.render_pair(entity, rng)
        right.append(r_row)
    return left, right, matches, generator.schema


class TestTokenBlocker:
    def test_finds_most_true_matches(self):
        left, right, matches, _schema = make_tables()
        blocker = TokenBlocker(["name", "phone"], min_shared=1)
        quality = blocking_quality(
            blocker.candidates(left, right), matches, len(left), len(right)
        )
        assert quality["pair_completeness"] > 0.8
        assert quality["reduction_ratio"] > 0.3

    def test_min_shared_two_shrinks_candidates(self):
        left, right, _matches, _schema = make_tables()
        loose = TokenBlocker(["name", "addr"], min_shared=1)
        strict = TokenBlocker(["name", "addr"], min_shared=2)
        assert len(strict.candidates(left, right)) <= len(
            loose.candidates(left, right)
        )

    def test_rejects_no_attributes(self):
        with pytest.raises(DataError):
            TokenBlocker([])

    def test_rejects_bad_min_shared(self):
        with pytest.raises(DataError):
            TokenBlocker(["a"], min_shared=0)

    def test_pairs_are_sorted_and_unique(self):
        left, right, _m, _s = make_tables(20)
        candidates = TokenBlocker(["name"]).candidates(left, right)
        assert candidates == sorted(set(candidates))


class TestSortedNeighborhood:
    def test_window_blocks_neighbours(self):
        left = [{"k": "aaa"}, {"k": "zzz"}]
        right = [{"k": "aab"}, {"k": "zzy"}]
        blocker = SortedNeighborhoodBlocker("k", window=2)
        candidates = blocker.candidates(left, right)
        assert (0, 0) in candidates
        assert (1, 1) in candidates
        assert (0, 1) not in candidates

    def test_larger_window_superset(self):
        left, right, _m, _s = make_tables(20)
        small = SortedNeighborhoodBlocker("name", window=3)
        large = SortedNeighborhoodBlocker("name", window=9)
        assert set(small.candidates(left, right)) <= set(
            large.candidates(left, right)
        )

    def test_rejects_tiny_window(self):
        with pytest.raises(DataError):
            SortedNeighborhoodBlocker("k", window=1)


class TestMinHash:
    def test_high_jaccard_pairs_collide(self):
        left = [{"t": "golden dragon palace restaurant downtown"}]
        right = [
            {"t": "golden dragon palace restaurant uptown"},
            {"t": "completely unrelated sushi bar"},
        ]
        blocker = MinHashBlocker(["t"], bands=16, rows_per_band=1, seed=1)
        candidates = blocker.candidates(left, right)
        assert (0, 0) in candidates

    def test_deterministic(self):
        left, right, _m, _s = make_tables(20)
        a = MinHashBlocker(["name", "addr"], seed=3).candidates(left, right)
        b = MinHashBlocker(["name", "addr"], seed=3).candidates(left, right)
        assert a == b

    def test_empty_rows_skipped(self):
        blocker = MinHashBlocker(["t"])
        assert blocker.candidates([{"t": ""}], [{"t": "x"}]) == []

    def test_recall_on_generated_tables(self):
        left, right, matches, _s = make_tables(30)
        blocker = MinHashBlocker(
            ["name", "addr", "phone"], bands=12, rows_per_band=1
        )
        quality = blocking_quality(
            blocker.candidates(left, right), matches, len(left), len(right)
        )
        assert quality["pair_completeness"] > 0.7


class TestCandidateDataset:
    def test_labels_from_truth(self):
        left, right, matches, schema = make_tables(10)
        blocker = TokenBlocker(["name", "phone"])
        candidates = blocker.candidates(left, right)
        dataset = make_candidate_dataset(
            schema, left, right, candidates, matches
        )
        assert len(dataset) == len(candidates)
        assert dataset.labels.sum() == len(set(candidates) & matches)

    def test_unlabelled_defaults_to_zero(self):
        left, right, _m, schema = make_tables(6)
        dataset = make_candidate_dataset(schema, left, right, [(0, 0)])
        assert dataset.labels.sum() == 0


class TestClustering:
    def test_transitive_clusters(self):
        pairs = [(0, 0), (1, 0), (2, 5)]
        predictions = [1, 1, 0]
        clusters = cluster_matches(pairs, predictions, n_left=3)
        assert len(clusters) == 1
        assert clusters[0] == {("L", 0), ("L", 1), ("R", 0)}

    def test_no_matches_no_clusters(self):
        assert cluster_matches([(0, 0)], [0], n_left=1) == []
