"""Tests for the experiment harness: config, caching, tables, CLI."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.experiments import ExperimentConfig, ExperimentRunner, run_table1
from repro.experiments.table2 import table2_rows
from repro.experiments.table4 import average_deltas
from repro.experiments.tables import format_value, render_table


class TestConfig:
    def test_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        monkeypatch.delenv("REPRO_MAX_MODELS", raising=False)
        config = ExperimentConfig()
        assert 0 < config.scale <= 1
        assert config.max_models >= 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        monkeypatch.setenv("REPRO_MAX_MODELS", "3")
        config = ExperimentConfig()
        assert config.scale == 0.5
        assert config.max_models == 3

    def test_invalid_env_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "banana")
        config = ExperimentConfig()
        assert 0 < config.scale <= 1

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            ExperimentConfig(scale=2.0)

    def test_cache_key_includes_data_version(self):
        from repro.config import DATA_VERSION

        key = ExperimentConfig(scale=0.5).cache_key("x")
        assert f"v{DATA_VERSION}" in key

    def test_cache_dir_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "off")
        assert ExperimentConfig.cache_dir() is None


class TestRendering:
    def test_format_value(self):
        assert format_value(None) == "-"
        assert format_value(1.23456) == "1.23"
        assert format_value(True) == "yes"
        assert format_value("abc") == "abc"

    def test_render_table_alignment(self):
        text = render_table("T", ["A", "Long"], [[1, 2.5], [30, 4.0]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "A" in lines[1] and "Long" in lines[1]
        assert all(len(line) == len(lines[1]) for line in lines[2:])


class TestTable1:
    def test_registry_table(self):
        text = run_table1()
        assert "S-DG" in text and "28707" in text and "18.63" in text

    def test_generated_table_small_scale(self):
        text = run_table1(scale=0.02, generate=True)
        assert "S-BR" in text


class TestRunnerCaching:
    def test_disk_cache_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        config = ExperimentConfig(scale=0.02, max_models=2)
        runner = ExperimentRunner(config)
        first = runner.run_deepmatcher("S-BR")
        assert (tmp_path / f"{config.cache_key('deepmatcher', 'S-BR')}.json").exists()

        # A fresh runner must reload the identical result from disk.
        fresh = ExperimentRunner(config)
        second = fresh.run_deepmatcher("S-BR")
        assert second == first

    def test_splits_cached_per_dataset(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        runner = ExperimentRunner(ExperimentConfig(scale=0.02, max_models=2))
        assert runner.splits("S-BR") is runner.splits("S-BR")


class TestTableAggregation:
    def test_average_deltas(self):
        rows = [
            {"autosklearn_delta": 10.0, "autogluon_delta": 20.0, "h2o_delta": 0.0},
            {"autosklearn_delta": 30.0, "autogluon_delta": 40.0, "h2o_delta": 0.0},
        ]
        deltas = average_deltas(rows)
        assert deltas["autosklearn"] == pytest.approx(20.0)
        assert deltas["autogluon"] == pytest.approx(30.0)

    def test_table2_rows_structure(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        runner = ExperimentRunner(ExperimentConfig(scale=0.02, max_models=2))
        rows = table2_rows(runner, datasets=("S-BR",))
        assert len(rows) == 1
        row = rows[0]
        for key in (
            "autosklearn_f1", "autogluon_f1", "h2o_f1", "deepmatcher_f1",
        ):
            assert 0.0 <= row[key] <= 100.0


class TestCli:
    def test_table1(self, capsys):
        assert cli_main(["table", "1"]) == 0
        assert "Magellan" in capsys.readouterr().out

    def test_datasets(self, capsys):
        assert cli_main(["datasets"]) == 0
        assert "S-FZ" in capsys.readouterr().out

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["table", "2", "--datasets", "S-XX"])

    def test_match_command(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_MAX_MODELS", "2")
        code = cli_main(
            ["match", "--dataset", "S-BR", "--scale", "0.02", "--budget", "1.0"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "autosklearn on S-BR" in out


class TestStaleCacheRecords:
    """Regression tests: pre-counter-split, a disk record written by an
    older code version (different EvaluationResult fields) was fed
    straight into the constructor and raised TypeError mid-table."""

    def _key_path(self, tmp_path, config):
        return tmp_path / f"{config.cache_key('deepmatcher', 'S-BR')}.json"

    def test_legacy_record_treated_as_miss_and_overwritten(
        self, tmp_path, monkeypatch
    ):
        from repro import telemetry

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        config = ExperimentConfig(scale=0.02, max_models=2)
        path = self._key_path(tmp_path, config)
        path.parent.mkdir(parents=True, exist_ok=True)
        # A plausible record from before wall_seconds existed, plus a
        # field that was since removed — both shape drifts at once.
        path.write_text(
            '{"system": "deepmatcher", "dataset": "S-BR", "f1": 1.0,'
            ' "precision": 1.0, "recall": 1.0, "simulated_hours": 0.1,'
            ' "n_models": 4}'
        )

        with telemetry.recording() as rec:
            result = ExperimentRunner(config).run_deepmatcher("S-BR")
        assert rec.metrics.counters["runner.cache.disk.stale"].value == 1
        assert result.f1 != 1.0  # recomputed, not replayed

        # The stale record was overwritten with the current shape: a
        # fresh runner replays it from disk without recomputation.
        with telemetry.recording() as rec:
            replay = ExperimentRunner(config).run_deepmatcher("S-BR")
        assert rec.metrics.counters["runner.cache.disk.hits"].value == 1
        assert "runner.run_deepmatcher" not in [s.name for s in rec.spans]
        assert replay == result

    def test_corrupt_json_counted_apart_from_misses(
        self, tmp_path, monkeypatch
    ):
        from repro import telemetry

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        config = ExperimentConfig(scale=0.02, max_models=2)
        path = self._key_path(tmp_path, config)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text('{"system": "deepmatcher", "da')  # torn write

        with telemetry.recording() as rec:
            ExperimentRunner(config).run_deepmatcher("S-BR")
        counters = rec.metrics.counters
        assert counters["runner.cache.disk.corrupt"].value == 1
        assert "runner.cache.disk.misses" not in counters

    def test_cold_cache_counts_plain_miss(self, tmp_path, monkeypatch):
        from repro import telemetry

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        config = ExperimentConfig(scale=0.02, max_models=2)
        with telemetry.recording() as rec:
            ExperimentRunner(config).run_deepmatcher("S-BR")
        counters = rec.metrics.counters
        assert counters["runner.cache.disk.misses"].value == 1
        assert "runner.cache.disk.corrupt" not in counters
        assert "runner.cache.disk.stale" not in counters
