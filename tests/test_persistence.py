"""Tests for model persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import load_dataset, split_dataset
from repro.matching import MagellanMatcher
from repro.persistence import PersistenceError, load_model, save_model


@pytest.fixture(scope="module")
def fitted_matcher():
    splits = split_dataset(load_dataset("S-BR", scale=0.02))
    matcher = MagellanMatcher(n_estimators=40, seed=0)
    matcher.fit(splits.train, splits.valid)
    return matcher, splits


class TestPersistence:
    def test_roundtrip_predictions_identical(self, tmp_path, fitted_matcher):
        matcher, splits = fitted_matcher
        path = save_model(matcher, tmp_path / "m.pkl")
        loaded = load_model(path)
        np.testing.assert_allclose(
            loaded.predict_proba(splits.test), matcher.predict_proba(splits.test)
        )

    def test_missing_file(self, tmp_path):
        with pytest.raises(PersistenceError, match="no model file"):
            load_model(tmp_path / "absent.pkl")

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "junk.pkl"
        path.write_bytes(b"not a pickle at all")
        with pytest.raises(PersistenceError):
            load_model(path)

    def test_wrong_envelope(self, tmp_path):
        import pickle

        path = tmp_path / "wrong.pkl"
        path.write_bytes(pickle.dumps({"something": "else"}))
        with pytest.raises(PersistenceError, match="not a repro model"):
            load_model(path)

    def test_version_guard(self, tmp_path, fitted_matcher):
        import pickle

        matcher, _ = fitted_matcher
        path = tmp_path / "old.pkl"
        envelope = {
            "magic": "repro-model",
            "version": "0.9.0",
            "type": "MagellanMatcher",
            "model": matcher,
        }
        path.write_bytes(pickle.dumps(envelope))
        with pytest.raises(PersistenceError, match="incompatible"):
            load_model(path)

    def test_creates_parent_directories(self, tmp_path, fitted_matcher):
        matcher, _ = fitted_matcher
        path = save_model(matcher, tmp_path / "deep" / "dir" / "m.pkl")
        assert path.exists()
