"""Tests for model persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import load_dataset, split_dataset
from repro.matching import MagellanMatcher
from repro.persistence import PersistenceError, load_model, save_model


@pytest.fixture(scope="module")
def fitted_matcher():
    splits = split_dataset(load_dataset("S-BR", scale=0.02))
    matcher = MagellanMatcher(n_estimators=40, seed=0)
    matcher.fit(splits.train, splits.valid)
    return matcher, splits


class TestPersistence:
    def test_roundtrip_predictions_identical(self, tmp_path, fitted_matcher):
        matcher, splits = fitted_matcher
        path = save_model(matcher, tmp_path / "m.pkl")
        loaded = load_model(path)
        np.testing.assert_allclose(
            loaded.predict_proba(splits.test), matcher.predict_proba(splits.test)
        )

    def test_missing_file(self, tmp_path):
        with pytest.raises(PersistenceError, match="no model file"):
            load_model(tmp_path / "absent.pkl")

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "junk.pkl"
        path.write_bytes(b"not a pickle at all")
        with pytest.raises(PersistenceError):
            load_model(path)

    @pytest.mark.parametrize(
        ("label", "payload"),
        [
            # pickle.load raises a different exception type for each of
            # these, and every one must settle into PersistenceError —
            # the pre-fix handler only caught UnpicklingError/EOFError/
            # AttributeError, so the last four crashed the caller.
            ("empty", b""),  # EOFError
            ("truncated", b"\x80\x04\x95\x10\x00\x00\x00"),  # UnpicklingError
            ("stop-empty-stack", b"."),  # UnpicklingError
            ("bad-protocol", b"\x80\x64garbage"),  # ValueError
            ("invalid-utf8-short-string", b"\x8c\x02\xff\xfe."),  # UnicodeDecodeError
            ("memo-index", b"\x80\x04j\x99\x00\x00\x00."),  # IndexError/UnpicklingError
            ("missing-module", b"cnonexistent_module_xyz\nfoo\n."),  # ModuleNotFoundError
        ],
    )
    def test_garbage_bytes_raise_persistence_error(
        self, tmp_path, label, payload
    ):
        path = tmp_path / f"{label}.pkl"
        path.write_bytes(payload)
        with pytest.raises(PersistenceError, match="not a valid model file"):
            load_model(path)

    def test_injected_read_corruption_is_settled(self, tmp_path, fitted_matcher):
        """Plan-injected corruption on the load seam surfaces as
        PersistenceError with the fault accounted recovered — the
        garbled bytes land in whichever ``_UNPICKLE_FAILURES`` member
        the corruption happens to trigger, and all of them settle."""
        from repro import faults, telemetry
        from repro.faults import FaultPlan, FaultSpec

        matcher, _ = fitted_matcher
        path = save_model(matcher, tmp_path / "m.pkl")

        corrupt = FaultPlan(
            specs=[FaultSpec("persistence.load.read", "corrupt", times=1)]
        )
        with telemetry.recording() as recorder:
            with faults.injecting(corrupt):
                with pytest.raises(PersistenceError):
                    load_model(path)
        seen = {c.name: c.value for c in recorder.metrics.counters.values()}
        assert seen["faults.injected.corrupt"] == 1
        assert seen["faults.recovered.corrupt"] == 1

    def test_wrong_envelope(self, tmp_path):
        import pickle

        path = tmp_path / "wrong.pkl"
        path.write_bytes(pickle.dumps({"something": "else"}))
        with pytest.raises(PersistenceError, match="not a repro model"):
            load_model(path)

    def test_version_guard(self, tmp_path, fitted_matcher):
        import pickle

        matcher, _ = fitted_matcher
        path = tmp_path / "old.pkl"
        envelope = {
            "magic": "repro-model",
            "version": "0.9.0",
            "type": "MagellanMatcher",
            "model": matcher,
        }
        path.write_bytes(pickle.dumps(envelope))
        with pytest.raises(PersistenceError, match="incompatible"):
            load_model(path)

    def test_creates_parent_directories(self, tmp_path, fitted_matcher):
        matcher, _ = fitted_matcher
        path = save_model(matcher, tmp_path / "deep" / "dir" / "m.pkl")
        assert path.exists()


class TestAtomicSave:
    def test_failed_pickle_preserves_old_model_and_leaks_nothing(
        self, tmp_path, fitted_matcher
    ):
        """A model that dies mid-``pickle.dump`` (e.g. an unpicklable
        attribute discovered halfway through) must neither destroy the
        previously saved copy nor leave a temp file behind."""

        class Unpicklable:
            def __reduce__(self):
                raise RuntimeError("refuses to serialize")

        matcher, splits = fitted_matcher
        path = save_model(matcher, tmp_path / "m.pkl")
        with pytest.raises(RuntimeError):
            save_model(Unpicklable(), path)
        assert sorted(tmp_path.iterdir()) == [path]  # no .tmp orphans
        np.testing.assert_allclose(
            load_model(path).predict_proba(splits.test),
            matcher.predict_proba(splits.test),
        )

    def test_injected_write_faults_retry_then_give_up_cleanly(
        self, tmp_path, fitted_matcher
    ):
        """Transient write faults are retried (the save succeeds);
        persistent ones surface OSError with the old file intact."""
        from repro import faults
        from repro.faults import DEFAULT_ATTEMPTS, FaultPlan, FaultSpec

        matcher, _ = fitted_matcher
        path = tmp_path / "m.pkl"
        transient = FaultPlan(
            specs=[FaultSpec("persistence.save.write", "io", times=1)]
        )
        with faults.injecting(transient):
            save_model(matcher, path)
        assert path.exists()

        first_bytes = path.read_bytes()
        persistent = FaultPlan(
            specs=[
                FaultSpec(
                    "persistence.save.replace", "io", times=DEFAULT_ATTEMPTS
                )
            ]
        )
        with faults.injecting(persistent):
            with pytest.raises(OSError):
                save_model(matcher, path)
        assert sorted(tmp_path.iterdir()) == [path]  # no .tmp orphans
        assert path.read_bytes() == first_bytes  # rename never happened
