"""Tests for the extension components: Magellan baseline, local embedder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adapter import EMAdapter
from repro.adapter.local_embedder import LocalWord2VecEmbedder
from repro.data import load_dataset, split_dataset
from repro.exceptions import NotFittedError
from repro.matching.magellan import MagellanMatcher
from repro.ml.metrics import f1_score


@pytest.fixture(scope="module")
def splits():
    return split_dataset(load_dataset("S-DA", scale=0.04))


class TestMagellanMatcher:
    def test_learns_easy_dataset(self, splits):
        matcher = MagellanMatcher(seed=1)
        matcher.fit(splits.train, splits.valid)
        f1 = f1_score(splits.test.labels, matcher.predict(splits.test))
        assert f1 > 0.75

    def test_feature_count(self, splits):
        matcher = MagellanMatcher()
        features = matcher.featurize(splits.test)
        schema = splits.test.schema
        expected = 0
        for attr in schema.attributes:
            expected += 3 if attr.kind.value == "numeric" else 7
        assert features.shape == (len(splits.test), expected)

    def test_identical_pair_maximal_similarity(self, splits):
        matcher = MagellanMatcher()
        features = matcher._text_features("sony camera", "sony camera")
        assert features[0] == 1.0  # jaccard
        assert features[3] == pytest.approx(1.0)  # jaro-winkler

    def test_numeric_missing_flags(self):
        features = MagellanMatcher._numeric_features(None, 3.0)
        assert np.isnan(features[0])
        assert features[2] == 0.0
        both = MagellanMatcher._numeric_features(None, None)
        assert both[2] == 1.0

    def test_unfitted_raises(self, splits):
        with pytest.raises(NotFittedError):
            MagellanMatcher().predict(splits.test)

    def test_reports_times(self, splits):
        matcher = MagellanMatcher()
        matcher.fit(splits.train, splits.valid)
        assert matcher.wall_seconds_ > 0
        assert matcher.simulated_hours_ > 0


class TestLocalEmbedder:
    @pytest.fixture(scope="class")
    def embedder(self):
        dataset = load_dataset("S-DA", scale=0.04)
        return LocalWord2VecEmbedder.from_dataset(dataset, dim=16, epochs=1)

    def test_output_dim(self, embedder):
        assert embedder.output_dim == 3 * 16 + 2

    def test_embed_pairs_shape(self, embedder):
        out = embedder.embed_pairs([("a b", "a b"), ("x", "y")])
        assert out.shape == (2, embedder.output_dim)

    def test_identical_pair_cosine_one(self, embedder):
        out = embedder.embed_pairs([("query processing", "query processing")])
        cos_index = 3 * 16
        assert out[0, cos_index] == pytest.approx(1.0, abs=1e-6)

    def test_plugs_into_adapter(self, embedder):
        dataset = load_dataset("S-DA", scale=0.04)
        adapter = EMAdapter("attr", embedder, "mean", cache=False)
        features = adapter.transform(dataset.subset(range(8)))
        assert features.shape == (8, embedder.output_dim)

    def test_name_includes_corpus(self, embedder):
        assert "S-DA" in embedder.name

    def test_pool_matches_per_token_gather(self, embedder):
        """The fancy-indexed pooling must stay bit-identical to stacking
        one vector per token (the pre-vectorization reference)."""
        model = embedder._model
        for text in ("query processing", "data integration systems", "zzz"):
            tokens = embedder._tokenizer.tokenize(text)
            reference = np.stack(
                [model.vector(t) for t in tokens]
            ).mean(axis=0)
            assert np.array_equal(embedder._pool(text), reference)
