"""Tests for schemas, pair records and EMDataset."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.schema import (
    Attribute,
    AttributeKind,
    EMDataset,
    PairRecord,
    Schema,
)
from repro.exceptions import SchemaError


@pytest.fixture
def schema():
    return Schema.of(
        "product",
        ("title", AttributeKind.TEXT),
        ("brand", AttributeKind.CATEGORICAL),
        ("price", AttributeKind.NUMERIC),
    )


def make_pair(pair_id=0, label=1):
    left = {"title": "sony tv", "brand": "sony", "price": 99.0}
    right = {"title": "sony tv x90", "brand": "sony", "price": 95.0}
    return PairRecord(pair_id, left, right, label)


class TestSchema:
    def test_attribute_names(self, schema):
        assert schema.attribute_names == ("title", "brand", "price")

    def test_kind_partition(self, schema):
        assert [a.name for a in schema.text_attributes()] == ["title", "brand"]
        assert [a.name for a in schema.numeric_attributes()] == ["price"]

    def test_lookup(self, schema):
        assert schema.attribute("brand").kind is AttributeKind.CATEGORICAL

    def test_lookup_missing_raises(self, schema):
        with pytest.raises(SchemaError):
            schema.attribute("missing")

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema("bad", (Attribute("a"), Attribute("a")))

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema("empty", ())

    def test_empty_attribute_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("")

    def test_validate_entity_catches_missing(self, schema):
        with pytest.raises(SchemaError, match="missing"):
            schema.validate_entity({"title": "x", "brand": "y"})

    def test_validate_entity_catches_extra(self, schema):
        entity = {"title": "x", "brand": "y", "price": 1.0, "junk": 2}
        with pytest.raises(SchemaError, match="extra"):
            schema.validate_entity(entity)

    def test_bare_string_columns_default_to_text(self):
        s = Schema.of("s", "a", "b")
        assert all(a.kind is AttributeKind.TEXT for a in s.attributes)


class TestPairRecord:
    def test_label_validation(self):
        with pytest.raises(SchemaError):
            PairRecord(0, {}, {}, 2)

    def test_value_sides(self):
        pair = make_pair()
        assert pair.value("left", "price") == 99.0
        assert pair.value("right", "price") == 95.0

    def test_value_bad_side(self):
        with pytest.raises(ValueError):
            make_pair().value("middle", "price")

    def test_text_of_none_is_empty(self):
        pair = PairRecord(0, {"p": None}, {"p": 3.5}, 0)
        assert pair.text_of("left", "p") == ""
        assert pair.text_of("right", "p") == "3.5"


class TestEMDataset:
    def test_validates_pairs_against_schema(self, schema):
        bad = PairRecord(0, {"title": "x"}, {"title": "y"}, 0)
        with pytest.raises(SchemaError):
            EMDataset("d", schema, [bad])

    def test_rejects_unknown_type(self, schema):
        with pytest.raises(SchemaError):
            EMDataset("d", schema, [make_pair()], dataset_type="Weird")

    def test_labels_and_match_fraction(self, schema):
        pairs = [make_pair(i, label=int(i < 2)) for i in range(4)]
        dataset = EMDataset("d", schema, pairs)
        np.testing.assert_array_equal(dataset.labels, [1, 1, 0, 0])
        assert dataset.match_fraction == 0.5

    def test_subset_preserves_order(self, schema):
        pairs = [make_pair(i, label=i % 2) for i in range(6)]
        dataset = EMDataset("d", schema, pairs)
        sub = dataset.subset([4, 1])
        assert [p.pair_id for p in sub] == [4, 1]
        assert sub.name == "d"

    def test_entity_texts_skip_missing(self, schema):
        pair = PairRecord(
            0,
            {"title": "a", "brand": "", "price": None},
            {"title": "b", "brand": "c", "price": 1.0},
            0,
        )
        dataset = EMDataset("d", schema, [pair])
        assert dataset.entity_texts("left") == ["a"]
        assert dataset.entity_texts("right") == ["b c 1.0"]

    def test_corpus_covers_both_sides(self, schema):
        dataset = EMDataset("d", schema, [make_pair()])
        corpus = dataset.corpus()
        assert len(corpus) == 2

    def test_iteration_and_indexing(self, schema):
        pairs = [make_pair(i) for i in range(3)]
        dataset = EMDataset("d", schema, pairs)
        assert len(dataset) == 3
        assert dataset[1].pair_id == 1
        assert [p.pair_id for p in dataset] == [0, 1, 2]
