"""Compare EM-adapter configurations on one dataset (a mini Table 3).

Reproduces the Section 5.2 methodology on a single dataset: every
(tokenizer, embedder) combination is pipelined with the same AutoML
system and scored on the test split, showing why hybrid + ALBERT is the
paper's pick.

Run:  python examples/compare_adapters.py [dataset] [scale]
"""

from __future__ import annotations

import sys

from repro.adapter import EMAdapter
from repro.data import load_dataset, split_dataset
from repro.experiments.tables import render_table
from repro.matching import EMPipeline
from repro.transformers import EMBEDDER_NAMES

TOKENIZERS = ("unstructured", "attr", "hybrid")


def main(dataset_name: str = "D-DA", scale: float = 0.06) -> None:
    splits = split_dataset(load_dataset(dataset_name, scale=scale))
    print(
        f"Dataset {dataset_name} at scale {scale:g}: "
        f"{sum(splits.sizes)} pairs, "
        f"{100 * splits.train.match_fraction:.1f}% matches"
    )

    rows = []
    for tokenizer in TOKENIZERS:
        row: list[object] = [tokenizer]
        for embedder in EMBEDDER_NAMES:
            pipeline = EMPipeline(
                adapter=EMAdapter(tokenizer, embedder),
                automl="h2o",
                budget_hours=1.0,
                max_models=6,
            )
            pipeline.fit(splits.train, splits.valid)
            f1 = 100.0 * pipeline.score(splits.test)
            row.append(f1)
            print(f"  {tokenizer:12s} + {embedder:7s}: F1 {f1:5.1f}")
        rows.append(row)

    print()
    print(
        render_table(
            f"Adapter grid on {dataset_name} (H2O-style AutoML, test F1)",
            ["Tokenizer"] + list(EMBEDDER_NAMES),
            rows,
        )
    )
    best = max(
        (
            (rows[i][j + 1], TOKENIZERS[i], EMBEDDER_NAMES[j])
            for i in range(len(TOKENIZERS))
            for j in range(len(EMBEDDER_NAMES))
        )
    )
    print(f"\nBest configuration: {best[1]} + {best[2]} (F1 {best[0]:.1f})")


if __name__ == "__main__":
    name = sys.argv[1] if len(sys.argv) > 1 else "D-DA"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.06
    main(name, scale)
