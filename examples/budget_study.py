"""Budget study: how much (simulated) training time does EM need?

A compact version of the paper's Table 5 question on one dataset: sweep
the AutoML budget and watch F1 and the number of explored configurations
grow, then compare against DeepMatcher.

Run:  python examples/budget_study.py
"""

from __future__ import annotations

from repro.data import load_dataset, split_dataset
from repro.experiments.tables import render_table
from repro.matching import DeepMatcherHybrid, EMPipeline
from repro.ml.metrics import f1_score

BUDGETS = (0.05, 0.15, 0.5, 1.5, 6.0)


def main() -> None:
    splits = split_dataset(load_dataset("S-AG", scale=0.08))

    rows = []
    for budget in BUDGETS:
        pipeline = EMPipeline(
            automl="autosklearn", budget_hours=budget, max_models=48
        )
        pipeline.fit(splits.train, splits.valid)
        f1 = 100.0 * pipeline.score(splits.test)
        report = pipeline.automl.report_
        rows.append([f"{budget:g}h", report.n_evaluated, f1])
        print(
            f"budget {budget:4g}h -> {report.n_evaluated:2d} models, "
            f"test F1 {f1:5.1f}"
        )

    expert = DeepMatcherHybrid(seed=0)
    expert.fit(splits.train, splits.valid)
    dm_f1 = 100.0 * f1_score(splits.test.labels, expert.predict(splits.test))
    rows.append(["DeepMatcher", "-", dm_f1])

    print()
    print(
        render_table(
            "Budget sweep on S-AG (AutoSklearn-style, hybrid+ALBERT adapter)",
            ["Budget", "Models", "Test F1"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
