"""Quickstart: match entities with zero ML expertise.

This is the paper's headline scenario — a non-expert user points the EM
adapter + AutoML pipeline at a labelled candidate-pair dataset and gets a
tuned matcher back, no hyper-parameters touched.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.data import load_dataset, split_dataset
from repro.matching import EMPipeline


def main() -> None:
    # 1. Load a benchmark dataset (DBLP-ACM style bibliographic pairs).
    #    scale=0.1 keeps this demo under a minute; scale=1.0 is paper size.
    dataset = load_dataset("S-DA", scale=0.1)
    print(f"Loaded {dataset}: {len(dataset)} candidate pairs")
    example = dataset[0]
    print("\nA candidate pair looks like this:")
    print("  left :", example.left)
    print("  right:", example.right)
    print("  label:", "match" if example.label else "non-match")

    # 2. Split 60-20-20 as in the paper.
    splits = split_dataset(dataset)
    print(f"\nSplits (train/valid/test): {splits.sizes}")

    # 3. Fit the pipeline. The defaults are the paper's best configuration:
    #    hybrid tokenizer + ALBERT embedder + mean combiner, AutoSklearn
    #    search under a 1-hour (simulated) budget.
    pipeline = EMPipeline(automl="autosklearn", budget_hours=1.0, max_models=8)
    print(f"\nFitting {pipeline} ...")
    pipeline.fit(splits.train, splits.valid)
    report = pipeline.automl.report_
    print(
        f"AutoML evaluated {report.n_evaluated} configurations in "
        f"{report.simulated_hours:.2f} simulated hours "
        f"({pipeline.wall_seconds_:.1f}s wall clock)"
    )
    print("Top of the leaderboard:")
    for entry in report.leaderboard[:3]:
        print(f"  valid F1 {100 * entry.valid_f1:5.1f}  {entry.config}")

    # 4. Score on the held-out test split.
    scores = pipeline.detailed_score(splits.test)
    print(
        f"\nTest F1 = {100 * scores['f1']:.2f}  "
        f"(precision {100 * scores['precision']:.2f}, "
        f"recall {100 * scores['recall']:.2f})"
    )


if __name__ == "__main__":
    main()
