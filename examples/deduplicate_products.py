"""Product-catalog deduplication: the business scenario of the intro.

The paper's motivation: a company merging two product catalogs wants
duplicates found without hiring ML experts. This example plays that out
end to end on the Walmart-Amazon style benchmark:

1. train the no-expertise pipeline;
2. compare it with the expert-tuned DeepMatcher baseline;
3. inspect the highest-confidence predicted duplicates and the mistakes.

Run:  python examples/deduplicate_products.py
"""

from __future__ import annotations

import numpy as np

from repro.data import load_dataset, split_dataset
from repro.matching import DeepMatcherHybrid, EMPipeline


def describe(pair) -> str:
    left = str(pair.left["title"])[:44]
    right = str(pair.right["title"])[:44]
    return f"{left!r:46s} vs {right!r:46s}"


def main() -> None:
    splits = split_dataset(load_dataset("S-WA", scale=0.08))
    print(
        f"Catalog pairs: {sum(splits.sizes)} "
        f"({100 * splits.train.match_fraction:.1f}% duplicates)\n"
    )

    # The non-expert route: adapter + AutoML, all defaults.
    pipeline = EMPipeline(automl="autogluon", budget_hours=1.0, max_models=8)
    pipeline.fit(splits.train, splits.valid)
    automl_scores = pipeline.detailed_score(splits.test)

    # The expert route: a tuned task-specific network.
    expert = DeepMatcherHybrid(seed=0)
    expert.fit(splits.train, splits.valid)
    from repro.ml.metrics import f1_score

    expert_f1 = f1_score(splits.test.labels, expert.predict(splits.test))

    print("Test-set comparison:")
    print(f"  adapter + AutoML : F1 {100 * automl_scores['f1']:.1f}")
    print(f"  DeepMatcher      : F1 {100 * expert_f1:.1f}\n")

    # Inspect predictions, ranked by confidence.
    proba = pipeline.predict_proba(splits.test)
    labels = splits.test.labels
    order = np.argsort(-proba)

    print("Most confident predicted duplicates:")
    for idx in order[:5]:
        flag = "correct" if labels[idx] == 1 else "WRONG (false positive)"
        print(f"  p={proba[idx]:.2f} [{flag}] {describe(splits.test[idx])}")

    missed = [
        i for i in np.argsort(proba) if labels[i] == 1
    ][:3]
    print("\nHardest missed duplicates (lowest scored true matches):")
    for idx in missed:
        print(f"  p={proba[idx]:.2f} {describe(splits.test[idx])}")


if __name__ == "__main__":
    main()
