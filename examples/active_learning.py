"""Active learning: match with a fraction of the labels.

The paper motivates AutoML for EM partly by annotation cost. This example
attacks that cost with uncertainty sampling: start from a small labelled
seed, repeatedly query the pairs the current matcher is least sure about,
and compare against training on the fully labelled pool.

Run:  python examples/active_learning.py
"""

from __future__ import annotations

from repro.data import load_dataset, split_dataset
from repro.matching import MagellanMatcher
from repro.matching.active import ActiveLearningLoop
from repro.ml.metrics import f1_score


def main() -> None:
    splits = split_dataset(load_dataset("S-AG", scale=0.1))
    pool, valid, test = splits.train, splits.valid, splits.test
    print(f"Label pool: {len(pool)} pairs ({int(pool.labels.sum())} matches)")

    def factory():
        return MagellanMatcher(n_estimators=80, seed=0)

    # Full supervision reference.
    full = factory()
    full.fit(pool, valid)
    full_f1 = 100.0 * f1_score(test.labels, full.predict(test))
    print(f"Full supervision ({len(pool)} labels): test F1 {full_f1:.1f}\n")

    # Active loop: seed + a few uncertainty-sampled batches.
    loop = ActiveLearningLoop(
        matcher_factory=factory, seed_size=60, batch_size=40,
        n_rounds=4, seed=3,
    )
    matcher = loop.run(pool, valid)
    active_f1 = 100.0 * f1_score(test.labels, matcher.predict(test))

    print("Query rounds:")
    for round_info in loop.history:
        print(
            f"  round {round_info.round_index}: {round_info.n_labelled:4d} "
            f"labels, mean pool uncertainty "
            f"{round_info.mean_uncertainty:.3f}"
        )
    saved = 100.0 * (1.0 - loop.labels_used / len(pool))
    print(
        f"\nActive learning ({loop.labels_used} labels, {saved:.0f}% fewer): "
        f"test F1 {active_f1:.1f} (vs {full_f1:.1f} fully supervised)"
    )


if __name__ == "__main__":
    main()
