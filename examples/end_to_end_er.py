"""End-to-end entity resolution: raw tables -> blocking -> matching -> clusters.

The benchmark datasets arrive pre-blocked; production ER starts from two
raw tables. This example walks the whole pipeline:

1. synthesize two overlapping restaurant tables;
2. block with token blocking (and report pair completeness / reduction);
3. label a training slice, train the EM pipeline;
4. predict over all candidates and resolve clusters with connected
   components.

Run:  python examples/end_to_end_er.py
"""

from __future__ import annotations

import numpy as np

from repro.data.blocking import (
    TokenBlocker,
    blocking_quality,
    cluster_matches,
    make_candidate_dataset,
)
from repro.data.generators import RestaurantGenerator
from repro.data.splits import split_dataset
from repro.matching import EMPipeline


def synthesize_tables(n_shared=120, n_only=60, seed=4):
    generator = RestaurantGenerator()
    rng = np.random.default_rng(seed)
    left, right, truth = [], [], set()
    for i in range(n_shared):
        entity = generator.sample_entity(rng)
        l_row, r_row = generator.render_pair(entity, rng)
        left.append(l_row)
        right.append(r_row)
        truth.add((i, i))
    for _ in range(n_only):
        left.append(generator.sample_entity(rng))
        right.append(generator.sample_entity(rng))
    return generator.schema, left, right, truth


def main() -> None:
    schema, left, right, truth = synthesize_tables()
    print(f"Tables: {len(left)} x {len(right)} rows, {len(truth)} true matches")

    # --- Blocking -------------------------------------------------------
    blocker = TokenBlocker(["name", "addr", "phone"], min_shared=1)
    candidates = blocker.candidates(left, right)
    quality = blocking_quality(candidates, truth, len(left), len(right))
    print(
        f"Blocking: {len(candidates)} candidates "
        f"(completeness {quality['pair_completeness']:.2f}, "
        f"reduction {quality['reduction_ratio']:.2f})"
    )

    # --- Matching -------------------------------------------------------
    dataset = make_candidate_dataset(
        schema, left, right, candidates, truth, name="restaurants"
    )
    splits = split_dataset(dataset)
    pipeline = EMPipeline(automl="h2o", budget_hours=1.0, max_models=6)
    pipeline.fit(splits.train, splits.valid)
    print(f"Matcher test F1: {100 * pipeline.score(splits.test):.1f}")

    # --- Clustering -----------------------------------------------------
    predictions = pipeline.predict(dataset)
    clusters = cluster_matches(candidates, predictions.tolist(), len(left))
    print(f"Resolved {len(clusters)} entity clusters; examples:")
    for cluster in clusters[:3]:
        for side, idx in sorted(cluster):
            row = left[idx] if side == "L" else right[idx]
            print(f"  [{side}{idx}] {row['name']} | {row['addr']} | {row['phone']}")
        print("  ---")


if __name__ == "__main__":
    main()
