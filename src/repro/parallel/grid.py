"""The work model of the parallel experiment executor.

A benchmark table is a grid of independent **cells** — one
(system, dataset, tokenizer, embedder, budget) evaluation each, exactly
the unit the :class:`~repro.experiments.runner.ExperimentRunner` caches.
:class:`GridSpec.for_table` enumerates a table's cells in **canonical
order**: the order the serial table code evaluates them in, with
duplicates collapsed to their first occurrence (Table 4 re-uses Table 2's
raw runs and Table 3's adapted runs; Table 5 re-uses the DeepMatcher
baselines). Workers may finish in any order — canonical order is what
results are merged back in, which is what makes the parallel run's
output bit-identical to the serial one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automl import AUTOML_NAMES
from repro.data.benchmark import DATASET_NAMES
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentRunner, budget_tag
from repro.experiments.table2 import SYSTEM_BUDGETS
from repro.experiments.table3 import TOKENIZER_MODES
from repro.experiments.table5 import BEST_EMBEDDER, BEST_TOKENIZER
from repro.matching import EMPipeline, evaluate_matcher
from repro.matching.evaluation import EvaluationResult
from repro.transformers import EMBEDDER_NAMES

__all__ = ["Cell", "GridSpec"]

#: The evaluation kinds a cell can describe.
CELL_KINDS = ("raw", "adapted", "deepmatcher", "match")


@dataclass(frozen=True)
class Cell:
    """One grid cell: a single cacheable evaluation.

    ``kind`` selects the runner entry point: ``"raw"`` (Table 2's
    no-adapter AutoML), ``"adapted"`` (adapter + AutoML), and
    ``"deepmatcher"`` map onto the :class:`ExperimentRunner` methods and
    their result cache; ``"match"`` replicates ``repro-em match`` (an
    :class:`~repro.matching.EMPipeline` with the default adapter) and is
    never cached.
    """

    kind: str
    dataset: str
    system: str | None = None
    tokenizer: str | None = None
    embedder: str | None = None
    budget_hours: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in CELL_KINDS:
            raise ValueError(
                f"unknown cell kind {self.kind!r}; known: {', '.join(CELL_KINDS)}"
            )

    @property
    def label(self) -> str:
        """Compact human identity, e.g. ``adapted:h2o:S-DA:hybrid:albert@1``."""
        parts = [self.kind]
        if self.system is not None:
            parts.append(self.system)
        parts.append(self.dataset)
        if self.tokenizer is not None:
            parts.append(self.tokenizer)
        if self.embedder is not None:
            parts.append(self.embedder)
        text = ":".join(parts)
        if self.kind in ("raw", "adapted"):
            text += f"@{budget_tag(self.budget_hours)}"
        return text

    def cache_key(self, config: ExperimentConfig) -> str | None:
        """The runner's result-cache key for this cell (``None`` when the
        cell is uncached, i.e. ``kind="match"``). Kept in lock-step with
        the key construction inside :class:`ExperimentRunner` by
        ``tests/test_parallel.py``.
        """
        if self.kind == "raw":
            return config.cache_key(
                "raw", self.system, self.dataset, budget_tag(self.budget_hours)
            )
        if self.kind == "adapted":
            return config.cache_key(
                "adapted", self.system, self.dataset,
                self.tokenizer, self.embedder, budget_tag(self.budget_hours),
            )
        if self.kind == "deepmatcher":
            return config.cache_key("deepmatcher", self.dataset)
        return None

    def run(self, runner: ExperimentRunner) -> EvaluationResult:
        """Evaluate this cell through (or alongside) ``runner``."""
        if self.kind == "raw":
            return runner.run_raw_automl(self.system, self.dataset, self.budget_hours)
        if self.kind == "adapted":
            return runner.run_adapted_automl(
                self.system, self.dataset,
                self.tokenizer, self.embedder, self.budget_hours,
            )
        if self.kind == "deepmatcher":
            return runner.run_deepmatcher(self.dataset)
        splits = runner.splits(self.dataset)
        pipeline = EMPipeline(
            automl=self.system,
            budget_hours=self.budget_hours,
            seed=runner.config.seed,
            max_models=runner.config.max_models,
        )
        return evaluate_matcher(pipeline, splits, system_name=self.system)


def _table2_cells(datasets: tuple[str, ...]) -> list[Cell]:
    cells = []
    for name in datasets:
        for system, budget in SYSTEM_BUDGETS:
            cells.append(Cell("raw", name, system=system, budget_hours=budget))
        cells.append(Cell("deepmatcher", name))
    return cells


def _table3_cells(
    datasets: tuple[str, ...],
    systems: tuple[str, ...],
    embedders: tuple[str, ...],
) -> list[Cell]:
    cells = []
    for system in systems:
        for name in datasets:
            for mode in TOKENIZER_MODES:
                for embedder in embedders:
                    cells.append(
                        Cell(
                            "adapted", name, system=system,
                            tokenizer=mode, embedder=embedder, budget_hours=1.0,
                        )
                    )
    return cells


def _table4_cells(
    datasets: tuple[str, ...],
    systems: tuple[str, ...],
    embedders: tuple[str, ...],
) -> list[Cell]:
    budgets = dict(SYSTEM_BUDGETS)
    budget_of = {system: budgets.get(system, 1.0) for system in systems}
    cells = []
    for name in datasets:
        for system in systems:
            cells.append(
                Cell("raw", name, system=system,
                     budget_hours=budget_of[system])
            )
            for mode in TOKENIZER_MODES:
                for embedder in embedders:
                    cells.append(
                        Cell(
                            "adapted", name, system=system,
                            tokenizer=mode, embedder=embedder, budget_hours=1.0,
                        )
                    )
    return cells


def _table5_cells(
    datasets: tuple[str, ...],
    systems: tuple[str, ...],
    budgets: tuple[float, ...],
) -> list[Cell]:
    cells = []
    for name in datasets:
        cells.append(Cell("deepmatcher", name))
        for budget in budgets:
            for system in systems:
                cells.append(
                    Cell(
                        "adapted", name, system=system,
                        tokenizer=BEST_TOKENIZER, embedder=BEST_EMBEDDER,
                        budget_hours=budget,
                    )
                )
    return cells


@dataclass(frozen=True)
class GridSpec:
    """An ordered, duplicate-free set of cells for one benchmark table."""

    table: int
    cells: tuple[Cell, ...]

    def __len__(self) -> int:
        return len(self.cells)

    @classmethod
    def for_table(
        cls,
        number: int,
        datasets: tuple[str, ...] = DATASET_NAMES,
        systems: tuple[str, ...] = AUTOML_NAMES,
        embedders: tuple[str, ...] = EMBEDDER_NAMES,
        budgets: tuple[float, ...] = (1.0, 6.0),
    ) -> "GridSpec":
        """The canonical grid of Table ``number`` (2-5; Table 1 is
        dataset statistics and has no evaluation grid).
        """
        if number == 2:
            cells = _table2_cells(datasets)
        elif number == 3:
            cells = _table3_cells(datasets, systems, embedders)
        elif number == 4:
            cells = _table4_cells(datasets, systems, embedders)
        elif number == 5:
            cells = _table5_cells(datasets, systems, budgets)
        else:
            raise ValueError(f"table {number} has no experiment grid")
        # First occurrence wins: Cell is frozen/hashable, dict preserves
        # insertion order, so the canonical order survives deduping.
        return cls(table=number, cells=tuple(dict.fromkeys(cells)))

    @classmethod
    def single_match(
        cls, dataset: str, system: str, budget_hours: float | None
    ) -> "GridSpec":
        """A one-cell grid mirroring ``repro-em match``."""
        return cls(
            table=0,
            cells=(
                Cell("match", dataset, system=system, budget_hours=budget_hours),
            ),
        )
