"""Parallel experiment execution: ``repro.parallel``.

The paper's benchmark grids (Tables 2-5: systems x datasets x
tokenizers x embedders x budgets) are embarrassingly parallel — every
cell is an independent, deterministic evaluation. This package fans
them out over worker processes and merges the results in canonical grid
order, so ``repro-em table 3 --jobs 8`` emits **byte-identical** output
to ``--jobs 1``, just sooner.

* :class:`GridSpec` / :class:`Cell` — the work model: a table's cells in
  the exact order the serial code evaluates them (duplicates collapsed);
* :class:`ParallelRunner` — the process-pool executor: workers
  coordinate through the on-disk result/adapter caches (atomic renames)
  and ship records plus telemetry snapshots home over the result pipe;
* :func:`run_table_parallel` — one-call table rendering, used by the
  CLI's ``--jobs`` flag;
* :func:`run_chaos` — the crash-safety drill behind ``repro-em chaos``:
  the same grid under seeded fault plans (:mod:`repro.faults`), diffed
  byte-for-byte against the fault-free run.

Quickstart::

    from repro.experiments import ExperimentConfig
    from repro.parallel import run_table_parallel

    print(run_table_parallel(2, ExperimentConfig(scale=0.05), jobs=4))
"""

from repro.parallel.chaos import ChaosReport, PlanOutcome, run_chaos
from repro.parallel.executor import (
    CellResult,
    ParallelExecutionError,
    ParallelRunner,
    run_table_parallel,
)
from repro.parallel.grid import Cell, GridSpec

__all__ = [
    "Cell",
    "CellResult",
    "ChaosReport",
    "GridSpec",
    "ParallelExecutionError",
    "ParallelRunner",
    "PlanOutcome",
    "run_chaos",
    "run_table_parallel",
]
