"""Deterministic process-pool execution of experiment grids.

:class:`ParallelRunner` fans a :class:`~repro.parallel.grid.GridSpec`'s
cells out over ``jobs`` worker processes and merges the results back in
canonical grid order. Determinism comes for free from the substrate:
every stochastic component draws from :func:`repro.config.rng_for`
(seeded by *scope*, not by process), so a cell computes the identical
``EvaluationResult`` no matter which worker runs it — parallelism only
reorders wall-clock time, never results.

Workers coordinate through the existing on-disk caches: each worker's
:class:`~repro.experiments.runner.ExperimentRunner` persists results
under ``.repro_cache/`` and the adapter persists feature matrices under
``.repro_cache/adapter/``, both via atomic same-directory renames, so
two workers computing the same key race benignly (last rename wins,
both files are complete). Results additionally ship back over the
result pipe, so the merged table renders from memory even with the disk
cache off.

When telemetry is recording in the parent, each worker records its
cells into private recorders and ships the snapshots home, where they
are stitched under the executor's ``parallel.run`` span (see
:mod:`repro.telemetry.stitch`), keeping one coherent span tree and a
complete cross-process trial ledger.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro import faults, telemetry
from repro.data.benchmark import DATASET_NAMES
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentRunner
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import run_table4
from repro.experiments.table5 import run_table5
from repro.parallel.grid import Cell, GridSpec
from repro.telemetry import graft_snapshot, snapshot

__all__ = [
    "CellResult",
    "ParallelExecutionError",
    "ParallelRunner",
    "run_table_parallel",
]


@dataclass(frozen=True)
class CellResult:
    """One cell's outcome, merged back in canonical grid order."""

    index: int
    cell: Cell
    record: dict  # EvaluationResult fields, exactly as the cache stores them.
    elapsed_seconds: float
    worker_pid: int
    trace: dict | None = field(default=None, repr=False)


class ParallelExecutionError(RuntimeError):
    """A grid cell failed in a worker; carries the worker's traceback."""

    def __init__(self, label: str, error_type: str, worker_traceback: str) -> None:
        super().__init__(
            f"cell {label} failed in worker with {error_type}\n{worker_traceback}"
        )
        self.label = label
        self.error_type = error_type
        self.worker_traceback = worker_traceback


# One ExperimentRunner per worker process, built by the pool initializer:
# its in-memory split/result caches then serve every cell the worker takes.
_WORKER_RUNNER: ExperimentRunner | None = None


def _init_worker(
    config: ExperimentConfig, plan: "faults.FaultPlan | None" = None
) -> None:
    global _WORKER_RUNNER
    _WORKER_RUNNER = ExperimentRunner(config)
    # With fork the worker inherits whatever adapter matrices and entity
    # embeddings the parent already memoized; dropping them (FORK001)
    # keeps worker memory flat and every cache fill attributable to the
    # worker's own cells. The entries are content-addressed, so this
    # costs recomputation only.
    from repro.adapter import clear_adapter_cache, clear_entity_store

    clear_adapter_cache()
    clear_entity_store()
    # Chaos runs ship the parent's fault plan into every worker (with
    # fork the module state is inherited anyway; with spawn this is the
    # only channel). Re-shipped on pool rebuilds with fired kill specs
    # disarmed, so a replacement worker does not die the same death.
    if plan is not None:
        faults.install(plan)


def _execute_cell(index: int, cell: Cell, capture_trace: bool) -> dict:
    """Run one cell in the worker; always returns a picklable payload."""
    runner = _WORKER_RUNNER
    if runner is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("worker used before _init_worker")
    # Chaos seam: a "kill" fault keyed to this cell's label dies here
    # with os._exit — no unwinding, exactly like SIGKILL mid-cell.
    faults.checkpoint("parallel.worker", key=cell.label)
    start = telemetry.wallclock()
    try:
        if capture_trace:
            with telemetry.recording() as recorder:
                result = cell.run(runner)
            trace = snapshot(recorder)
        else:
            result = cell.run(runner)
            trace = None
    # Process boundary: ANY failure must come home as a picklable
    # payload, not crash the worker silently.
    except Exception as exc:  # repro: noqa[GEN003]
        return {
            "index": index,
            "error": type(exc).__name__,
            "traceback": traceback.format_exc(),
            "label": cell.label,
        }
    return {
        "index": index,
        "record": dict(result.__dict__),
        "trace": trace,
        "elapsed": telemetry.wallclock() - start,
        "pid": os.getpid(),
    }


def _default_start_method() -> str:
    """Prefer fork (cheap start, warm module state) where available."""
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


class ParallelRunner:
    """Fan an experiment grid out over worker processes, merge in order.

    Parameters
    ----------
    config:
        The :class:`ExperimentConfig` every worker evaluates under.
    jobs:
        Worker process count; ``1`` executes the grid inline (no pool),
        which is also the byte-equality reference for any ``jobs > 1``.
    start_method:
        ``multiprocessing`` start method; default fork where available.
    worker_restarts:
        How many times a broken pool (a worker died without reporting —
        injected kill fault or real crash) is rebuilt to re-execute the
        missing cells before giving up with
        :class:`ParallelExecutionError`. Re-execution is idempotent:
        cells are deterministic and completed cells are never re-run.
    """

    def __init__(
        self,
        config: ExperimentConfig | None = None,
        jobs: int = 1,
        start_method: str | None = None,
        worker_restarts: int = 2,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if worker_restarts < 0:
            raise ValueError(f"worker_restarts must be >= 0, got {worker_restarts}")
        self.config = config if config is not None else ExperimentConfig()
        self.jobs = jobs
        self.start_method = start_method or _default_start_method()
        self.worker_restarts = worker_restarts

    # ---------------------------------------------------------------- run

    def run(self, grid: GridSpec) -> list[CellResult]:
        """Execute every cell; results come back in canonical order."""
        with telemetry.span(
            "parallel.run", table=grid.table, cells=len(grid.cells), jobs=self.jobs
        ):
            if self.jobs == 1 or not grid.cells:
                results = self._run_inline(grid)
            else:
                results = self._run_pool(grid)
            telemetry.counter("parallel.cells.completed").inc(len(results))
            return results

    def _run_inline(self, grid: GridSpec) -> list[CellResult]:
        runner = ExperimentRunner(self.config)
        results = []
        for index, cell in enumerate(grid.cells):
            start = telemetry.wallclock()
            outcome = cell.run(runner)
            results.append(
                CellResult(
                    index=index,
                    cell=cell,
                    record=dict(outcome.__dict__),
                    elapsed_seconds=telemetry.wallclock() - start,
                    worker_pid=os.getpid(),
                )
            )
        return results

    def _run_pool(self, grid: GridSpec) -> list[CellResult]:
        recorder = telemetry.active()
        context = multiprocessing.get_context(self.start_method)
        payloads: dict[int, dict] = {}
        pending: dict[int, Cell] = dict(enumerate(grid.cells))
        restarts = 0
        while pending:
            plan = faults.active()
            with ProcessPoolExecutor(
                max_workers=min(self.jobs, len(pending)),
                mp_context=context,
                initializer=_init_worker,
                initargs=(self.config, plan),
            ) as pool:
                futures = [
                    pool.submit(_execute_cell, index, cell, recorder is not None)
                    for index, cell in pending.items()
                ]
                try:
                    for future in as_completed(futures):
                        payload = future.result()
                        if "error" in payload:
                            raise ParallelExecutionError(
                                payload["label"],
                                payload["error"],
                                payload["traceback"],
                            )
                        payloads[payload["index"]] = payload
                except BrokenProcessPool:
                    # A worker died without reporting (injected kill
                    # fault or real crash). Cancel what's queued, then
                    # fall through to the restart accounting below.
                    for future in futures:
                        future.cancel()
                # Fail fast on anything else (incl. KeyboardInterrupt):
                # cancel queued cells so the pool can shut down promptly.
                except BaseException:  # repro: noqa[GEN003]
                    for future in futures:
                        future.cancel()
                    raise
            pending = {
                index: cell
                for index, cell in pending.items()
                if index not in payloads
            }
            if not pending:
                break
            # Re-execute the dead worker's cells in a fresh pool —
            # idempotent by determinism, and completed cells are kept.
            # Kill specs aimed at the still-missing cells are the
            # injected culprits: disarm them so the replacement worker
            # survives, and account one injected+recovered pair each.
            restarts += 1
            missing = {cell.label for cell in pending.values()}
            disarmed = plan.disarm_kills(missing) if plan is not None else []
            if disarmed:
                # The dying process cannot count its own death; the
                # parent accounts the injection, and its settlement
                # depends on whether a retry is still allowed.
                telemetry.counter("faults.injected.worker").inc(len(disarmed))
            telemetry.counter("parallel.worker.restarts").inc()
            if restarts > self.worker_restarts:
                if disarmed:
                    telemetry.counter("faults.fatal.worker").inc(len(disarmed))
                raise ParallelExecutionError(
                    label=", ".join(sorted(missing)),
                    error_type="BrokenProcessPool",
                    worker_traceback=(
                        f"worker died without reporting; gave up after "
                        f"{restarts - 1} pool restart(s)"
                    ),
                )
            if disarmed:
                telemetry.counter("faults.recovered.worker").inc(len(disarmed))

        # Merge in canonical grid order, not completion order: span ids,
        # trial-ledger order, and counter totals become deterministic.
        results = []
        for index, cell in enumerate(grid.cells):
            payload = payloads[index]
            if recorder is not None and payload["trace"] is not None:
                graft_snapshot(
                    recorder,
                    payload["trace"],
                    name="parallel.cell",
                    cell=cell.label,
                    worker_pid=payload["pid"],
                )
            results.append(
                CellResult(
                    index=index,
                    cell=cell,
                    record=payload["record"],
                    elapsed_seconds=payload["elapsed"],
                    worker_pid=payload["pid"],
                    trace=payload["trace"],
                )
            )
        return results

    # -------------------------------------------------------------- tables

    def warmed_runner(self, results: list[CellResult]) -> ExperimentRunner:
        """An :class:`ExperimentRunner` pre-seeded with ``results``."""
        runner = ExperimentRunner(self.config)
        for result in results:
            key = result.cell.cache_key(self.config)
            if key is not None:
                runner.seed_result(key, result.record)
        return runner

    def run_table(
        self, number: int, datasets: tuple[str, ...] = DATASET_NAMES
    ) -> str:
        """Render Table ``number`` (2-5) with its grid fanned out.

        The parallel phase only *computes* cells; rendering then runs
        the unmodified serial table code against a runner seeded with
        the workers' records, so the output is byte-identical to a
        ``jobs=1`` run.
        """
        grid = GridSpec.for_table(number, datasets=datasets)
        runner = self.warmed_runner(self.run(grid))
        if number == 2:
            return run_table2(self.config, datasets, runner=runner)
        if number == 3:
            return run_table3(self.config, datasets=datasets, runner=runner)
        if number == 4:
            return run_table4(self.config, datasets=datasets, runner=runner)
        return run_table5(self.config, datasets=datasets, runner=runner)


def run_table_parallel(
    number: int,
    config: ExperimentConfig | None = None,
    datasets: tuple[str, ...] = DATASET_NAMES,
    jobs: int = 1,
) -> str:
    """Convenience wrapper: ``ParallelRunner(config, jobs).run_table(...)``."""
    return ParallelRunner(config, jobs=jobs).run_table(number, datasets=datasets)
