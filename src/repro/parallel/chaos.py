"""Chaos harness: drill a table grid under seeded fault plans.

The library behind ``repro-em chaos``. One drill runs a scaled table
grid three ways and proves the crash-safety contract of
docs/ROBUSTNESS.md end to end:

1. a **reference leg** — fault-free, fresh cache directory: the ground
   truth output;
2. per plan, a **cold leg** — same grid, fresh cache directory, with
   the generated :class:`~repro.faults.FaultPlan` installed: write
   faults and (with ``jobs > 1``) worker kills fire while the caches
   fill;
3. per plan, a **warm leg** — same cache directory, memory caches
   cleared: every cell replays from disk, so read-corruption faults
   fire against real cache entries.

A plan passes only if **both** legs render byte-identically to the
reference, the plan's cache tree holds zero orphaned ``.tmp`` files,
every fired fault was settled (``faults.injected.<kind> ==
faults.recovered.<kind> + faults.fatal.<kind>`` in the merged metrics),
and nothing is left pending on the plan. Generated plans only schedule
recoverable faults — ``budget`` faults legitimately change results (a
trial that stops earlier trains fewer models) and are therefore drilled
by the test suite as graceful degradation, never by the byte-identity
harness.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro import faults, telemetry
from repro.adapter import clear_adapter_cache, clear_entity_store
from repro.config import rng_for
from repro.experiments.config import ExperimentConfig
from repro.faults import FaultPlan, FaultSpec
from repro.parallel.executor import ParallelRunner
from repro.parallel.grid import GridSpec
from repro.telemetry import snapshot

__all__ = ["ChaosReport", "PlanOutcome", "run_chaos"]

#: Fault-settlement counter prefixes, in report order.
_SETTLEMENTS = ("injected", "recovered", "fatal")


@dataclass
class PlanOutcome:
    """One fault plan's verdict against the fault-free reference."""

    plan_id: int
    n_specs: int
    identical: bool
    orphans: list[str]
    injected: dict[str, float]
    recovered: dict[str, float]
    fatal: dict[str, float]
    unresolved: list[tuple]
    trace: dict = field(repr=False, default_factory=dict)

    @property
    def balanced(self) -> bool:
        """Whether injected == recovered + fatal holds per fault kind."""
        kinds = set(self.injected) | set(self.recovered) | set(self.fatal)
        return all(
            self.injected.get(kind, 0) ==
            self.recovered.get(kind, 0) + self.fatal.get(kind, 0)
            for kind in kinds
        )

    @property
    def ok(self) -> bool:
        return (
            self.identical
            and not self.orphans
            and self.balanced
            and not self.unresolved
        )

    def _counters_text(self) -> str:
        parts = []
        for settlement in _SETTLEMENTS:
            bucket: dict = getattr(self, settlement)
            if bucket:
                inner = " ".join(
                    f"{kind}={int(bucket[kind])}" for kind in sorted(bucket)
                )
                parts.append(f"{settlement}[{inner}]")
        return " ".join(parts) if parts else "no faults fired"

    def summary(self) -> str:
        verdict = "OK" if self.ok else "FAIL"
        details = [
            "byte-identical" if self.identical else "OUTPUT DIFFERS",
            f"{len(self.orphans)} orphaned .tmp",
            self._counters_text(),
        ]
        if not self.balanced:
            details.append("UNBALANCED fault accounting")
        if self.unresolved:
            details.append(f"unresolved: {self.unresolved}")
        return (
            f"plan {self.plan_id}: {self.n_specs} spec(s) · "
            + " · ".join(details)
            + f" -> {verdict}"
        )


@dataclass
class ChaosReport:
    """The full drill: reference leg plus every plan's outcome."""

    table: int
    datasets: tuple[str, ...]
    jobs: int
    reference: str = field(repr=False)
    reference_orphans: list[str] = field(default_factory=list)
    outcomes: list[PlanOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.reference_orphans and all(o.ok for o in self.outcomes)

    @property
    def trace(self) -> dict | None:
        """The last plan's telemetry snapshot (for ``--trace-file``)."""
        return self.outcomes[-1].trace if self.outcomes else None

    def render(self) -> str:
        lines = [
            f"chaos drill: table {self.table} · "
            f"datasets {','.join(self.datasets)} · jobs {self.jobs} · "
            f"{len(self.outcomes)} plan(s)",
            f"reference leg: {len(self.reference.encode())} bytes, "
            f"{len(self.reference_orphans)} orphaned .tmp",
        ]
        lines.extend(outcome.summary() for outcome in self.outcomes)
        passed = sum(outcome.ok for outcome in self.outcomes)
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(
            f"chaos verdict: {verdict} "
            f"({passed}/{len(self.outcomes)} plans clean)"
        )
        return "\n".join(lines)


@contextmanager
def _cache_env(path: Path) -> Iterator[None]:
    """Point ``REPRO_CACHE_DIR`` (runner + adapter caches) at ``path``."""
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(path)
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = previous


def _run_leg(
    table: int,
    config: ExperimentConfig,
    datasets: tuple[str, ...],
    jobs: int,
    cache_dir: Path,
) -> str:
    """Render the table once against ``cache_dir``, memory caches cold.

    Clearing the adapter's process-level caches — the matrix memo *and*
    the entity store's memory tier (fresh worker pools and a fresh
    :class:`~repro.experiments.runner.ExperimentRunner` cover the rest)
    — is what turns a second leg over the same directory into a
    disk-replay — the seam the read-corruption faults need.
    """
    clear_adapter_cache()
    clear_entity_store()
    with _cache_env(cache_dir):
        runner = ParallelRunner(config, jobs=jobs)
        return runner.run_table(table, datasets=datasets)


def _orphans(root: Path) -> list[str]:
    if not root.exists():
        return []
    return sorted(str(path.relative_to(root)) for path in root.rglob("*.tmp"))


def _fault_counters(
    recorder: telemetry.TelemetryRecorder,
) -> tuple[dict[str, float], dict[str, float], dict[str, float]]:
    """The merged ``faults.<settlement>.<kind>`` counters of one drill."""
    buckets: dict[str, dict[str, float]] = {s: {} for s in _SETTLEMENTS}
    for metric in recorder.metrics.to_dicts():
        if metric.get("type") != "counter":
            continue
        name = metric.get("name", "")
        for settlement in _SETTLEMENTS:
            prefix = f"faults.{settlement}."
            if name.startswith(prefix):
                buckets[settlement][name[len(prefix):]] = metric["value"]
    return buckets["injected"], buckets["recovered"], buckets["fatal"]


def _chaos_plan(
    index: int, grid: GridSpec, jobs: int, seed: int | None
) -> FaultPlan:
    """Generate plan ``index``; with workers, aim one kill at a cell."""
    plan = FaultPlan.generate(index, seed=seed)
    if jobs > 1 and grid.cells:
        rng = rng_for("faults", "chaos-kill", index, seed=seed)
        cell = grid.cells[int(rng.integers(0, len(grid.cells)))]
        plan.specs.append(
            FaultSpec(point="parallel.worker", kind="kill", key=cell.label)
        )
    return plan


def run_chaos(
    table: int = 2,
    config: ExperimentConfig | None = None,
    datasets: tuple[str, ...] = ("S-FZ",),
    plans: int = 3,
    jobs: int = 1,
    seed: int | None = None,
    work_dir: str | Path | None = None,
) -> ChaosReport:
    """Run the chaos drill; see the module docstring for the contract.

    ``work_dir`` hosts the per-leg cache directories (a throwaway
    temporary directory by default); pass a path to inspect the cache
    trees afterwards.
    """
    if plans < 1:
        raise ValueError(f"plans must be >= 1, got {plans}")
    config = config if config is not None else ExperimentConfig()
    own_tmp = None
    if work_dir is None:
        own_tmp = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        root = Path(own_tmp.name)
    else:
        root = Path(work_dir)
        root.mkdir(parents=True, exist_ok=True)
    try:
        reference = _run_leg(table, config, datasets, jobs, root / "reference")
        grid = GridSpec.for_table(table, datasets=tuple(datasets))
        outcomes = []
        for index in range(plans):
            plan = _chaos_plan(index, grid, jobs, seed)
            cache_dir = root / f"plan-{index}"
            with telemetry.recording() as recorder:
                with faults.injecting(plan):
                    cold = _run_leg(table, config, datasets, jobs, cache_dir)
                    warm = _run_leg(table, config, datasets, jobs, cache_dir)
            injected, recovered, fatal = _fault_counters(recorder)
            outcomes.append(
                PlanOutcome(
                    plan_id=plan.plan_id,
                    n_specs=len(plan.specs),
                    identical=(cold == reference and warm == reference),
                    orphans=_orphans(cache_dir),
                    injected=injected,
                    recovered=recovered,
                    fatal=fatal,
                    unresolved=plan.unresolved,
                    trace=snapshot(recorder),
                )
            )
        return ChaosReport(
            table=table,
            datasets=tuple(datasets),
            jobs=jobs,
            reference=reference,
            reference_orphans=_orphans(root / "reference"),
            outcomes=outcomes,
        )
    finally:
        if own_tmp is not None:
            own_tmp.cleanup()
