"""Active learning for label-efficient EM.

The paper's introduction motivates AutoML for EM partly by annotation
cost: "in business scenarios where annotating data for the training
process is costly". This module attacks the same cost directly — an
uncertainty-sampling loop that starts from a small seed of labels and
iteratively queries the pairs the current model is least sure about,
typically reaching near-full-supervision F1 with a fraction of the
labels.

The loop is matcher-agnostic: anything with ``fit(train, valid)`` and
``predict_proba(dataset)`` over :class:`~repro.data.schema.EMDataset`
works, including :class:`~repro.matching.pipeline.EMPipeline`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.schema import EMDataset
from repro.exceptions import DataError

__all__ = ["ActiveLearningLoop", "ActiveLearningRound"]


@dataclass(frozen=True)
class ActiveLearningRound:
    """Diagnostics of one query round."""

    round_index: int
    n_labelled: int
    queried_ids: tuple[int, ...]
    mean_uncertainty: float


@dataclass
class ActiveLearningLoop:
    """Pool-based uncertainty sampling over an EM candidate pool.

    Parameters
    ----------
    matcher_factory:
        Zero-argument callable building a fresh matcher per round
        (retraining from scratch keeps rounds comparable).
    seed_size:
        Initially labelled pairs (stratified: at least one match).
    batch_size:
        Labels queried per round.
    n_rounds:
        Query rounds to run.
    seed:
        RNG seed for the initial sample and tie-breaking.
    """

    matcher_factory: object
    seed_size: int = 50
    batch_size: int = 20
    n_rounds: int = 5
    seed: int = 0
    history: list[ActiveLearningRound] = field(default_factory=list)

    def run(self, pool: EMDataset, valid: EMDataset) -> object:
        """Run the loop against a fully-labelled pool (oracle labels).

        Returns the final fitted matcher; ``history`` records per-round
        diagnostics. The pool's labels play the human oracle: they are
        revealed only for queried pairs.
        """
        if self.seed_size >= len(pool):
            raise DataError(
                f"seed_size {self.seed_size} >= pool size {len(pool)}"
            )
        rng = np.random.default_rng(self.seed)
        labels = pool.labels
        positives = np.flatnonzero(labels == 1)
        negatives = np.flatnonzero(labels == 0)
        if len(positives) == 0:
            raise DataError("pool contains no positive pairs")

        # Stratified seed: keep the pool's class ratio, min one positive.
        n_pos = max(1, int(round(self.seed_size * labels.mean())))
        n_neg = self.seed_size - n_pos
        labelled = set(
            rng.choice(positives, size=min(n_pos, len(positives)),
                       replace=False).tolist()
        )
        labelled |= set(
            rng.choice(negatives, size=min(n_neg, len(negatives)),
                       replace=False).tolist()
        )

        matcher = None
        self.history.clear()
        for round_index in range(self.n_rounds):
            train = pool.subset(sorted(labelled))
            matcher = self.matcher_factory()
            matcher.fit(train, valid)

            unlabelled = np.array(
                sorted(set(range(len(pool))) - labelled), dtype=np.int64
            )
            if len(unlabelled) == 0:
                break
            proba = np.asarray(
                matcher.predict_proba(pool.subset(unlabelled.tolist()))
            )
            uncertainty = 1.0 - np.abs(proba - 0.5) * 2.0
            order = np.argsort(-uncertainty, kind="stable")
            chosen = unlabelled[order[: self.batch_size]]
            labelled |= set(chosen.tolist())
            self.history.append(
                ActiveLearningRound(
                    round_index=round_index,
                    n_labelled=len(labelled),
                    queried_ids=tuple(int(i) for i in chosen),
                    mean_uncertainty=float(uncertainty.mean()),
                )
            )

        # Final refit on everything labelled so far.
        matcher = self.matcher_factory()
        matcher.fit(pool.subset(sorted(labelled)), valid)
        return matcher

    @property
    def labels_used(self) -> int:
        """Total labels revealed across the run."""
        if not self.history:
            return self.seed_size
        return self.history[-1].n_labelled
