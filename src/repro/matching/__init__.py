"""End-to-end EM systems.

* :class:`EMPipeline` — the headline API: an EM adapter pipelined with an
  AutoML system (the paper's proposal).
* :class:`DeepMatcherHybrid` — the expert-tuned deep-learning baseline the
  paper compares against.
* :mod:`repro.matching.evaluation` — the harness that trains a system on
  a benchmark dataset's splits and reports the paper's metrics.
"""

from repro.matching.active import ActiveLearningLoop, ActiveLearningRound
from repro.matching.deepmatcher import DeepMatcherHybrid
from repro.matching.evaluation import EvaluationResult, evaluate_matcher
from repro.matching.magellan import MagellanMatcher
from repro.matching.pipeline import EMPipeline

__all__ = [
    "ActiveLearningLoop",
    "ActiveLearningRound",
    "DeepMatcherHybrid",
    "EMPipeline",
    "EvaluationResult",
    "MagellanMatcher",
    "evaluate_matcher",
]
