"""The headline API: an EM adapter pipelined with an AutoML system.

This is what the paper proposes a non-expert user runs::

    from repro.data import load_dataset, split_dataset
    from repro.matching import EMPipeline

    splits = split_dataset(load_dataset("S-DA"))
    pipeline = EMPipeline(automl="autosklearn", budget_hours=1.0)
    pipeline.fit(splits.train, splits.valid)
    f1 = pipeline.score(splits.test)

No ML expertise enters the call: the adapter's defaults are the paper's
best configuration (hybrid tokenizer + ALBERT embedder + mean combiner),
and the AutoML system does all model selection and tuning internally.
"""

from __future__ import annotations


import numpy as np

from repro import telemetry
from repro.adapter import EMAdapter
from repro.automl import AutoMLSystem, make_automl
from repro.data.schema import EMDataset
from repro.exceptions import NotFittedError
from repro.ml.metrics import f1_score, precision_score, recall_score

__all__ = ["EMPipeline"]


class EMPipeline:
    """EM adapter + AutoML, end to end.

    Parameters
    ----------
    adapter:
        An :class:`EMAdapter` (default: the paper's best configuration —
        hybrid tokenizer, ALBERT embedder, mean combiner).
    automl:
        An :class:`AutoMLSystem` instance or registry name
        (``"autosklearn"`` / ``"autogluon"`` / ``"h2o"``).
    budget_hours:
        Simulated training budget forwarded when ``automl`` is a name;
        ``None`` leaves the system unbounded.
    seed:
        Forwarded to the AutoML system when built from a name.
    """

    def __init__(
        self,
        adapter: EMAdapter | None = None,
        automl: AutoMLSystem | str = "autosklearn",
        budget_hours: float | None = 1.0,
        seed: int = 0,
        max_models: int | None = None,
    ) -> None:
        self.adapter = adapter if adapter is not None else EMAdapter()
        if isinstance(automl, str):
            kwargs = {"budget_hours": budget_hours, "seed": seed}
            if max_models is not None:
                kwargs["max_models"] = max_models
            self.automl = make_automl(automl, **kwargs)
        else:
            self.automl = automl

    def fit(self, train: EMDataset, valid: EMDataset) -> "EMPipeline":
        """Encode the splits with the adapter and run the AutoML search."""
        start = telemetry.wallclock()
        with telemetry.span(
            "pipeline.fit",
            adapter=self.adapter.name,
            automl=self.automl.name,
            dataset=train.name,
        ):
            X_train = self.adapter.transform(train)
            X_valid = self.adapter.transform(valid)
            self.automl.fit(X_train, train.labels, X_valid, valid.labels)
        self.wall_seconds_ = telemetry.wallclock() - start
        return self

    @property
    def simulated_hours_(self) -> float:
        """Simulated training hours consumed by the AutoML search."""
        return self.automl.report_.simulated_hours

    def predict_proba(self, dataset: EMDataset) -> np.ndarray:
        """P(match) per pair."""
        self._check_fitted()
        return self.automl.predict_proba(self.adapter.transform(dataset))[:, 1]

    def predict(self, dataset: EMDataset) -> np.ndarray:
        """Match labels at the AutoML's validation-tuned threshold."""
        self._check_fitted()
        with telemetry.span("pipeline.predict", dataset=dataset.name):
            return self.automl.predict(self.adapter.transform(dataset))

    def score(self, dataset: EMDataset) -> float:
        """Test F1 (fraction in [0, 1]; the paper reports it x100)."""
        return f1_score(dataset.labels, self.predict(dataset))

    def detailed_score(self, dataset: EMDataset) -> dict[str, float]:
        """F1, precision and recall on ``dataset``."""
        predictions = self.predict(dataset)
        labels = dataset.labels
        return {
            "f1": f1_score(labels, predictions),
            "precision": precision_score(labels, predictions),
            "recall": recall_score(labels, predictions),
        }

    def _check_fitted(self) -> None:
        if not hasattr(self, "wall_seconds_"):
            raise NotFittedError("EMPipeline must be fitted first")

    def __repr__(self) -> str:
        return f"EMPipeline(adapter={self.adapter.name}, automl={self.automl.name})"
