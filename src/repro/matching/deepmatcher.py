"""DeepMatcher (Hybrid) baseline.

DeepMatcher (Mudgal et al., SIGMOD 2018) in its *Hybrid* configuration
summarizes each attribute pair with soft-alignment attention over word
embeddings, compares the aligned representations, and classifies the
concatenated comparison vectors with a trained network. This module
reproduces that architecture at laptop scale:

* frozen fastText-style hash embeddings (as DeepMatcher uses frozen
  fastText vectors);
* per-attribute *decomposable-attention* summarization: each token of one
  side is softly aligned to the other side's tokens by embedding
  similarity, and the element-wise comparison of token and alignment is
  averaged — both directions;
* a trained two-hidden-layer classifier (manual-gradient MLP with Adam,
  dropout and early stopping) on the concatenated per-attribute
  comparison vectors.

The *expert tuning* the paper attributes to DeepMatcher is embodied in
the calibrated defaults; the AutoML systems get no such hand-tuning.
Training time is reported through the same simulated cost model as the
AutoML systems (DESIGN.md §2), calibrated to land near the paper's
Table 2 hours.
"""

from __future__ import annotations


import numpy as np

from repro import telemetry
from repro.config import stable_hash
from repro.data.schema import EMDataset, PairRecord
from repro.exceptions import NotFittedError
from repro.ml.metrics import best_f1_threshold
from repro.nn.autograd import MLPClassifier
from repro.text.similarity import ngrams
from repro.text.tokenization import BasicTokenizer

__all__ = ["DeepMatcherHybrid"]

_HASH_BUCKETS = 4096

#: Simulated hours per (thousand rows x attribute) at the default epochs,
#: calibrated so full-scale S-DG lands near the paper's 8.5 h.
_COST_PER_KROW_ATTR = 0.10


class DeepMatcherHybrid:
    """The Hybrid variant of DeepMatcher, from scratch.

    Parameters
    ----------
    embedding_dim:
        Dimensionality of the frozen hash word embeddings.
    hidden:
        Width of the trained classifier's hidden layers.
    epochs:
        Training epochs (early stopping may end sooner).
    seed:
        Seeds embeddings, initialization, batching.
    """

    name = "deepmatcher"

    def __init__(
        self,
        embedding_dim: int = 48,
        hidden: int = 96,
        epochs: int | None = None,
        seed: int = 0,
    ) -> None:
        self.embedding_dim = embedding_dim
        self.hidden = hidden
        #: None = adaptive: small datasets train more epochs (as the real
        #: DeepMatcher's default 10-40 epoch schedules effectively do).
        self.epochs = epochs
        self.seed = seed
        self._tokenizer = BasicTokenizer()
        rng = np.random.default_rng(stable_hash("deepmatcher-table", seed))
        self._table = rng.normal(size=(_HASH_BUCKETS, embedding_dim))
        self._table /= np.sqrt(embedding_dim)
        self._token_cache: dict[str, np.ndarray] = {}

    # --------------------------------------------------------- embeddings

    def _token_vector(self, token: str) -> np.ndarray:
        cached = self._token_cache.get(token)
        if cached is not None:
            return cached
        rows = [stable_hash("dm-tok", token) % _HASH_BUCKETS]
        for gram in ngrams(token, 3):
            rows.append(stable_hash("dm-ng", gram) % _HASH_BUCKETS)
        vector = self._table[rows].mean(axis=0)
        norm = np.linalg.norm(vector)
        if norm > 0:
            vector = vector / norm
        self._token_cache[token] = vector
        return vector

    def _embed_value(self, text: str) -> np.ndarray:
        tokens = self._tokenizer.tokenize(text)[:40]
        if not tokens:
            return np.zeros((1, self.embedding_dim))
        # Token vectors are dict-memoized hash buckets; a vectorized
        # form would need to rebuild the cache as an array first.
        return np.stack([self._token_vector(t) for t in tokens])  # repro: noqa[PERF003]

    # ------------------------------------------------------ summarization

    def _attribute_comparison(self, left: str, right: str) -> np.ndarray:
        """Soft-alignment comparison vector of one attribute pair."""
        e_left = self._embed_value(left)
        e_right = self._embed_value(right)
        sim = e_left @ e_right.T  # Cosine similarities (unit rows).
        gain = 10.0

        # Left tokens aligned against right side.
        attn_lr = _softmax_rows(sim * gain)
        aligned_l = attn_lr @ e_right
        # Right tokens aligned against left side.
        attn_rl = _softmax_rows(sim.T * gain)
        aligned_r = attn_rl @ e_left

        abs_l = np.abs(e_left - aligned_l).mean(axis=0)
        mul_l = (e_left * aligned_l).mean(axis=0)
        abs_r = np.abs(e_right - aligned_r).mean(axis=0)
        mul_r = (e_right * aligned_r).mean(axis=0)
        cover_l = sim.max(axis=1).mean() if sim.size else 0.0
        cover_r = sim.max(axis=0).mean() if sim.size else 0.0
        both_empty = float(not left.strip() and not right.strip())
        return np.concatenate(
            [
                abs_l + abs_r,
                mul_l + mul_r,
                [cover_l, cover_r, both_empty],
            ]
        )

    def featurize(self, dataset: EMDataset) -> np.ndarray:
        """Comparison vectors for every pair (the Hybrid summarization).

        Per-attribute soft-alignment comparisons, plus one record-level
        comparison over the denormalized entities — the component that
        makes the Hybrid variant robust to Dirty data, where values sit in
        the wrong column.
        """
        rows = []
        names = dataset.schema.attribute_names
        for pair in dataset:
            parts = [
                self._attribute_comparison(
                    pair.text_of("left", name), pair.text_of("right", name)
                )
                for name in names
            ]
            whole_left = " ".join(pair.text_of("left", n) for n in names)
            whole_right = " ".join(pair.text_of("right", n) for n in names)
            parts.append(self._attribute_comparison(whole_left, whole_right))
            rows.append(np.concatenate(parts))
        return np.vstack(rows)

    # ---------------------------------------------------------------- fit

    def fit(self, train: EMDataset, valid: EMDataset) -> "DeepMatcherHybrid":
        """Train on the train split, early-stop and threshold on valid."""
        start = telemetry.wallclock()
        X_train = self.featurize(train)
        X_valid = self.featurize(valid)
        y_train = train.labels
        y_valid = valid.labels

        # Standardize comparison features (DeepMatcher batch-normalizes).
        self._feature_mean = X_train.mean(axis=0)
        std = X_train.std(axis=0)
        self._feature_scale = np.where(std > 0, std, 1.0)
        X_train = (X_train - self._feature_mean) / self._feature_scale
        X_valid = (X_valid - self._feature_mean) / self._feature_scale

        epochs = self.epochs
        if epochs is None:
            # Adaptive schedule: tiny datasets need many passes to reach
            # the same number of optimizer steps.
            epochs = int(np.clip(25_000 // max(1, len(train)), 30, 120))
        self._epochs_used = epochs
        self._classifier = MLPClassifier(
            hidden=self.hidden,
            epochs=epochs,
            lr=3e-3,
            dropout=0.1,
            class_weighted=True,
            seed=self.seed,
        )
        self._classifier.fit(X_train, y_train, X_valid, y_valid)
        proba = self._classifier.predict_proba(X_valid)[:, 1]
        self._threshold, _ = best_f1_threshold(y_valid, proba)
        self.simulated_hours_ = self._cost_hours(train)
        self.wall_seconds_ = telemetry.wallclock() - start
        return self

    def _cost_hours(self, train: EMDataset) -> float:
        n_attrs = len(train.schema.attributes) + 1  # + the record-level path.
        return (
            _COST_PER_KROW_ATTR
            * (len(train) / 1000.0)
            * n_attrs
            * (self._epochs_used / 30.0)
        )

    # ---------------------------------------------------------- inference

    def predict_proba(self, dataset: EMDataset) -> np.ndarray:
        """P(match) per pair of ``dataset``."""
        if not hasattr(self, "_classifier"):
            raise NotFittedError("DeepMatcherHybrid must be fitted first")
        features = self.featurize(dataset)
        features = (features - self._feature_mean) / self._feature_scale
        return self._classifier.predict_proba(features)[:, 1]

    def predict(self, dataset: EMDataset) -> np.ndarray:
        """Match labels at the validation-tuned threshold."""
        return (self.predict_proba(dataset) >= self._threshold).astype(np.int64)


def _softmax_rows(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)
