"""Evaluation harness shared by the experiment tables.

One call of :func:`evaluate_matcher` covers the full protocol of the
paper's Section 5: train on the train split (with the validation split
available for model selection / early stopping / thresholding), then
report F1, precision and recall on the held-out test split plus the
simulated and wall-clock training times.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import telemetry
from repro.data.splits import DatasetSplits
from repro.ml.metrics import f1_score, precision_score, recall_score

__all__ = ["EvaluationResult", "evaluate_matcher"]


@dataclass(frozen=True)
class EvaluationResult:
    """Outcome of one (system, dataset) evaluation."""

    system: str
    dataset: str
    f1: float  # Percent, as the paper reports it.
    precision: float
    recall: float
    simulated_hours: float
    wall_seconds: float

    def __str__(self) -> str:
        return (
            f"{self.system} on {self.dataset}: F1={self.f1:.2f} "
            f"P={self.precision:.2f} R={self.recall:.2f} "
            f"({self.simulated_hours:.2f} sim-h, {self.wall_seconds:.1f}s wall)"
        )


def evaluate_matcher(matcher, splits: DatasetSplits, system_name: str | None = None) -> EvaluationResult:
    """Fit ``matcher`` on the splits and measure it on the test set.

    ``matcher`` is anything exposing ``fit(train, valid)`` and
    ``predict(dataset)`` over :class:`~repro.data.schema.EMDataset` —
    both :class:`~repro.matching.pipeline.EMPipeline` and
    :class:`~repro.matching.deepmatcher.DeepMatcherHybrid` qualify.
    """
    system = system_name or getattr(matcher, "name", type(matcher).__name__)
    with telemetry.span(
        "evaluate",
        system=system,
        dataset=splits.test.name.split("/")[0],
    ) as root:
        matcher.fit(splits.train, splits.valid)
        predictions = matcher.predict(splits.test)
        labels = splits.test.labels
        result = EvaluationResult(
            system=system,
            dataset=splits.test.name.split("/")[0],
            f1=100.0 * f1_score(labels, predictions),
            precision=100.0 * precision_score(labels, predictions),
            recall=100.0 * recall_score(labels, predictions),
            simulated_hours=float(getattr(matcher, "simulated_hours_", 0.0)),
            wall_seconds=float(getattr(matcher, "wall_seconds_", 0.0)),
        )
        root.set(f1=result.f1, simulated_hours=result.simulated_hours)
        return result
