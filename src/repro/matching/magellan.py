"""Magellan-style feature-based matcher (the classic pre-DL approach).

Before deep learning, EM systems like Magellan (Konda et al., VLDB 2016)
computed hand-crafted per-attribute similarity features — Jaccard,
edit similarity, Jaro-Winkler, Monge-Elkan, numeric differences — and
trained a conventional classifier on them. This module provides that
baseline: it contextualizes what the EM adapter buys relative to a
feature-engineering approach (which requires exactly the per-attribute
expertise the paper wants to remove) and serves as an extra comparator in
the ablation benchmarks.
"""

from __future__ import annotations


import numpy as np

from repro import telemetry
from repro.data.schema import AttributeKind, EMDataset
from repro.exceptions import NotFittedError
from repro.ml.boosting import GradientBoostingClassifier
from repro.ml.metrics import best_f1_threshold
from repro.ml.preprocessing import Pipeline, SimpleImputer
from repro.text.similarity import (
    jaccard,
    jaro_winkler,
    levenshtein_ratio,
    monge_elkan,
    overlap_coefficient,
)
from repro.text.tokenization import BasicTokenizer

__all__ = ["MagellanMatcher"]


class MagellanMatcher:
    """Per-attribute similarity features + gradient boosting.

    Parameters
    ----------
    n_estimators, max_depth:
        Hyper-parameters of the underlying GBM (the defaults are sensible
        for the feature dimensionality this produces).
    seed:
        Seeds model training.
    """

    name = "magellan"

    #: Similarity functions applied to every text attribute.
    _TEXT_FEATURES = ("jaccard", "overlap", "lev_ratio", "jaro_winkler",
                      "monge_elkan", "len_diff", "both_missing")

    def __init__(
        self, n_estimators: int = 150, max_depth: int = 4, seed: int = 0
    ) -> None:
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.seed = seed
        self._tokenizer = BasicTokenizer()

    # -------------------------------------------------------------- feats

    def _text_features(self, left: str, right: str) -> list[float]:
        tokens_l = self._tokenizer.tokenize(left)
        tokens_r = self._tokenizer.tokenize(right)
        if not left and not right:
            return [0.0] * (len(self._TEXT_FEATURES) - 1) + [1.0]
        short_l = left[:64]
        short_r = right[:64]
        return [
            jaccard(tokens_l, tokens_r),
            overlap_coefficient(tokens_l, tokens_r),
            levenshtein_ratio(short_l, short_r),
            jaro_winkler(short_l, short_r),
            monge_elkan(tokens_l[:12], tokens_r[:12]),
            abs(len(tokens_l) - len(tokens_r)) / max(1, len(tokens_l) + len(tokens_r)),
            0.0,
        ]

    @staticmethod
    def _numeric_features(left: object, right: object) -> list[float]:
        if left is None or right is None:
            return [np.nan, np.nan, float(left is None and right is None)]
        l_val, r_val = float(left), float(right)  # type: ignore[arg-type]
        denominator = max(abs(l_val), abs(r_val), 1e-9)
        return [
            abs(l_val - r_val),
            abs(l_val - r_val) / denominator,
            float(l_val == r_val),
        ]

    def featurize(self, dataset: EMDataset) -> np.ndarray:
        """Similarity feature matrix, one row per pair."""
        rows = []
        for pair in dataset:
            row: list[float] = []
            for attr in dataset.schema.attributes:
                if attr.kind is AttributeKind.NUMERIC:
                    row.extend(
                        self._numeric_features(
                            pair.value("left", attr.name),
                            pair.value("right", attr.name),
                        )
                    )
                else:
                    row.extend(
                        self._text_features(
                            pair.text_of("left", attr.name),
                            pair.text_of("right", attr.name),
                        )
                    )
            rows.append(row)
        return np.asarray(rows, dtype=np.float64)

    # ---------------------------------------------------------------- fit

    def fit(self, train: EMDataset, valid: EMDataset) -> "MagellanMatcher":
        """Train the GBM on similarity features; tune threshold on valid."""
        start = telemetry.wallclock()
        X_train = self.featurize(train)
        X_valid = self.featurize(valid)
        self._model = Pipeline(
            [
                ("impute", SimpleImputer("constant", fill_value=-1.0)),
                (
                    "gbm",
                    GradientBoostingClassifier(
                        n_estimators=self.n_estimators,
                        max_depth=self.max_depth,
                        seed=self.seed,
                    ),
                ),
            ]
        )
        self._model.fit(X_train, train.labels)
        proba = self._model.predict_proba(X_valid)[:, 1]
        self._threshold, _ = best_f1_threshold(valid.labels, proba)
        self.wall_seconds_ = telemetry.wallclock() - start
        self.simulated_hours_ = 0.004 * len(train) / 1000.0 * len(
            train.schema.attributes
        )
        return self

    def predict_proba(self, dataset: EMDataset) -> np.ndarray:
        """P(match) per pair."""
        if not hasattr(self, "_model"):
            raise NotFittedError("MagellanMatcher must be fitted first")
        return self._model.predict_proba(self.featurize(dataset))[:, 1]

    def predict(self, dataset: EMDataset) -> np.ndarray:
        """Match labels at the validation-tuned threshold."""
        return (self.predict_proba(dataset) >= self._threshold).astype(np.int64)
