"""Model persistence: save and load fitted matchers.

A production EM deployment trains once and serves many times, so fitted
pipelines must survive the process. Serialization uses pickle with a
format header that records the library version; loading refuses files
written by a different major version rather than failing obscurely later.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Any

from repro import faults
from repro.exceptions import ReproError

__all__ = ["save_model", "load_model", "PersistenceError"]

_MAGIC = "repro-model"


class PersistenceError(ReproError):
    """A model file is missing, corrupt, or version-incompatible."""


#: Everything ``pickle.load`` raises on corrupt or foreign bytes. Beyond
#: the obvious ``UnpicklingError``/``EOFError``, garbage can surface as
#: ``ValueError`` (bad protocol byte, and ``UnicodeDecodeError`` for
#: invalid utf-8 in string opcodes), ``ImportError`` (a GLOBAL opcode
#: naming a module this process does not have), ``IndexError`` (corrupt
#: memo references), or ``AttributeError`` (a class that no longer
#: exists). All of them mean "this is not a model file", never "crash".
_UNPICKLE_FAILURES = (
    pickle.UnpicklingError,
    EOFError,
    AttributeError,
    ValueError,  # includes UnicodeDecodeError
    IndexError,
    ImportError,  # includes ModuleNotFoundError
)


def save_model(model: Any, path: str | Path) -> Path:
    """Serialize a fitted matcher (EMPipeline, DeepMatcherHybrid, ...).

    The envelope records the library version; any picklable matcher is
    accepted. The write is atomic: pickling into a same-directory temp
    file and renaming means a crash mid-``pickle.dump`` (or an
    unpicklable attribute discovered halfway through) can never destroy
    a previously saved good copy, and the ``finally`` unlink keeps
    failed attempts from leaving ``.tmp`` files beside the model.
    """
    from repro import __version__

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    envelope = {
        "magic": _MAGIC,
        "version": __version__,
        "type": type(model).__name__,
        "model": model,
    }

    def _write() -> None:
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, suffix=".tmp", prefix=path.stem
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                faults.checkpoint("persistence.save.write", path=str(path))
                pickle.dump(envelope, handle, protocol=pickle.HIGHEST_PROTOCOL)
            faults.checkpoint("persistence.save.replace", path=str(path))
            os.replace(tmp_name, path)
        finally:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)

    faults.io_retry(_write, "persistence.save")
    return path


def load_model(path: str | Path) -> Any:
    """Load a matcher saved by :func:`save_model`.

    Raises :class:`PersistenceError` for missing/corrupt files or a major
    version mismatch.
    """
    from repro import __version__

    path = Path(path)
    if not path.exists():
        raise PersistenceError(f"no model file at {path}")

    def _read() -> Any:
        faults.checkpoint("persistence.load.read", path=str(path))
        try:
            with path.open("rb") as handle:
                return pickle.load(handle)
        except _UNPICKLE_FAILURES as exc:
            # Corruption is *handled* (settled into a typed error the
            # caller can act on), which is what the seam's accounting
            # records. PersistenceError is not an OSError, so the retry
            # wrapper below propagates it immediately — garbage bytes
            # are permanent, only filesystem hiccups are worth retrying.
            faults.mark_recovered("persistence.load.read", path=str(path))
            raise PersistenceError(
                f"{path} is not a valid model file: {exc}"
            ) from exc

    # Mirror the save path: transient filesystem failures (a flaky
    # network mount, an interrupted read) are retried with backoff;
    # exhausted retries propagate OSError by contract (see 'seam
    # raises:' in docs/ARCHITECTURE_CONTRACT).
    envelope = faults.io_retry(_read, "persistence.load.read")
    if not isinstance(envelope, dict) or envelope.get("magic") != _MAGIC:
        raise PersistenceError(f"{path} is not a repro model file")
    saved_major = str(envelope.get("version", "")).split(".")[0]
    current_major = __version__.split(".")[0]
    if saved_major != current_major:
        raise PersistenceError(
            f"{path} was written by repro {envelope.get('version')}, "
            f"incompatible with {__version__}"
        )
    return envelope["model"]
