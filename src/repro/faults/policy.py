"""Graceful-degradation policy for transient filesystem faults.

:func:`io_retry` wraps one atomic-write operation (the full
mkstemp -> write -> ``os.replace`` sequence, including its
``faults.checkpoint`` calls) in a bounded retry loop with deterministic
exponential backoff. Each retry re-runs the *whole* operation, so every
attempt gets a fresh temp file and the operation's own ``finally``
unlink keeps failed attempts from orphaning anything.

The retry loop is also where injected ``io`` faults are settled (see
the accounting invariant in :mod:`repro.faults.plan`): an operation
that eventually succeeds counts its injected failures as
``faults.recovered.io``; one that exhausts its attempts counts them as
``faults.fatal.io`` and re-raises — the caller sees an ordinary
:class:`OSError`, exactly as if the disk had genuinely failed
``attempts`` times.
"""

from __future__ import annotations

import time
from typing import Callable, TypeVar

from repro import telemetry
from repro.faults.plan import InjectedFaultError

__all__ = ["DEFAULT_ATTEMPTS", "DEFAULT_BACKOFF_SECONDS", "io_retry"]

#: Attempts per operation. Generated chaos plans schedule at most
#: ``DEFAULT_ATTEMPTS - 1`` consecutive io faults, so they always
#: recover; only hand-written plans (or a genuinely dying disk) exhaust
#: the loop.
DEFAULT_ATTEMPTS = 3

#: First backoff; doubles per attempt (2ms, 4ms). Deterministic — no
#: jitter — so retried runs stay replayable.
DEFAULT_BACKOFF_SECONDS = 0.002

T = TypeVar("T")


def io_retry(
    operation: Callable[[], T],
    point: str,
    attempts: int = DEFAULT_ATTEMPTS,
    backoff_seconds: float = DEFAULT_BACKOFF_SECONDS,
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Run ``operation`` with bounded retries on :class:`OSError`.

    ``point`` names the write seam for telemetry (``io.retries`` counts
    every retried attempt, attributed nowhere else — the seam's own
    checkpoints carry the name). ``sleep`` is injectable for tests.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    injected_failures = 0
    for attempt in range(attempts):
        try:
            result = operation()
        except OSError as exc:
            if isinstance(exc, InjectedFaultError):
                injected_failures += 1
            if attempt + 1 == attempts:
                if injected_failures:
                    telemetry.counter("faults.fatal.io").inc(injected_failures)
                raise
            telemetry.counter("io.retries").inc()
            sleep(backoff_seconds * (2**attempt))
        else:
            if injected_failures:
                telemetry.counter("faults.recovered.io").inc(injected_failures)
            return result
    raise AssertionError(f"unreachable: io_retry({point}) exited its loop")
