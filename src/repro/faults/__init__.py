"""Deterministic fault injection: ``repro.faults``.

Seeded, replayable failure drills for the pipeline's I/O seams. A
:class:`FaultPlan` (see :mod:`repro.faults.plan`) schedules failures at
named **injection points** — the ``faults.checkpoint("name")`` calls
wired into the adapter/runner/analysis caches, model persistence, the
parallel executor's workers, and the simulated budget clock. With no
plan installed (the default, and the only production state) every
checkpoint is a shared no-op: one module attribute read plus one
``is None`` check, mirroring the disabled-telemetry design and asserted
under 1µs in ``benchmarks/bench_components.py``.

Install a plan around a workload to drill it::

    from repro import faults

    plan = faults.FaultPlan.generate(plan_id=0)
    with faults.injecting(plan):
        run_table2(config, datasets)          # faults fire, run recovers

or from the CLI: ``repro-em chaos --plans 3`` runs a scaled Table 2
grid under N generated plans and diffs every output against the
fault-free run (see docs/ROBUSTNESS.md).

Recovery policy lives beside the plan machinery:

* :func:`io_retry` — bounded retries with deterministic backoff around
  every atomic write seam;
* cache corruption always degrades to recompute-and-repair in the
  caller, reported back via :func:`mark_recovered`;
* dead pool workers' cells are re-executed idempotently by
  :class:`~repro.parallel.ParallelRunner`.

Every fired fault is accounted in telemetry: ``faults.injected.<kind>``
when it fires, then ``faults.recovered.<kind>`` or
``faults.fatal.<kind>`` when settled — injected equals recovered plus
fatal at the end of any run that degraded gracefully.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.faults.plan import (
    CATALOG,
    CORRUPT_PAYLOAD,
    DEFAULT_CHAOS_POINTS,
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
    KILL_EXIT_CODE,
)
from repro.faults.policy import (
    DEFAULT_ATTEMPTS,
    DEFAULT_BACKOFF_SECONDS,
    io_retry,
)

__all__ = [
    "CATALOG",
    "CORRUPT_PAYLOAD",
    "DEFAULT_ATTEMPTS",
    "DEFAULT_BACKOFF_SECONDS",
    "DEFAULT_CHAOS_POINTS",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "InjectedFaultError",
    "KILL_EXIT_CODE",
    "active",
    "checkpoint",
    "injecting",
    "install",
    "io_retry",
    "mark_recovered",
    "uninstall",
]

_active: FaultPlan | None = None


def active() -> FaultPlan | None:
    """The installed plan, or ``None`` when fault injection is off."""
    return _active


def install(plan: FaultPlan) -> FaultPlan:
    """Install (and return) a plan; replaces any previous one."""
    global _active
    _active = plan
    return plan


def uninstall() -> FaultPlan | None:
    """Turn fault injection off; returns the plan that was active."""
    global _active
    previous = _active
    _active = None
    return previous


@contextmanager
def injecting(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` for a ``with`` block, restoring the previous
    state (including "off") on exit."""
    global _active
    previous = _active
    _active = plan
    try:
        yield plan
    finally:
        _active = previous


def checkpoint(point: str, **context) -> None:
    """Declare an injection point; a no-op unless a plan is installed.

    Context keys the plans understand: ``path`` (the *final* file a
    write seam is producing or a read seam is loading — ``corrupt``
    faults garble it) and ``key`` (a work-item identity, e.g. a grid
    cell label, that keyed specs match against).
    """
    plan = _active
    if plan is None:
        return
    plan.visit(point, context)


def mark_recovered(point: str, **context) -> None:
    """Report that the degraded path for ``point`` succeeded.

    Called by corruption/budget handlers *after* recovering (recompute,
    repair, graceful stop). Settles a pending injected fault as
    ``faults.recovered.<kind>``; a no-op when no plan is installed or
    the damage was real rather than injected.
    """
    plan = _active
    if plan is None:
        return
    plan.resolve(point, context)
