"""Blocking: candidate-pair generation from two raw entity tables.

The Magellan benchmark datasets the paper evaluates on are *post-blocking*
candidate sets. This module supplies that upstream step for users who
start from raw tables, so the library covers the full ER pipeline:

* :class:`TokenBlocker` — entities sharing at least ``min_shared`` tokens
  on the chosen attributes become candidates (standard token blocking);
* :class:`SortedNeighborhoodBlocker` — sort both tables by a key
  expression and slide a window over the merged order;
* :class:`MinHashBlocker` — MinHash-LSH over token sets: entities whose
  minhash signatures collide in at least one band become candidates.

All blockers return candidate ``(left_index, right_index)`` pairs;
:func:`make_candidate_dataset` joins them with optional ground truth into
an :class:`~repro.data.schema.EMDataset`, and
:func:`cluster_matches` resolves pairwise match predictions into entity
clusters via connected components.
"""

from __future__ import annotations

import abc
from collections import defaultdict
from collections.abc import Sequence

import networkx as nx
import numpy as np

from repro.config import stable_hash
from repro.data.schema import EMDataset, PairRecord, Schema
from repro.exceptions import DataError
from repro.text.tokenization import BasicTokenizer

__all__ = [
    "Blocker",
    "TokenBlocker",
    "SortedNeighborhoodBlocker",
    "MinHashBlocker",
    "make_candidate_dataset",
    "cluster_matches",
    "blocking_quality",
]

Row = dict[str, object]


def _row_tokens(
    row: Row, attributes: Sequence[str], tokenizer: BasicTokenizer
) -> set[str]:
    tokens: set[str] = set()
    for name in attributes:
        value = row.get(name)
        if value not in (None, ""):
            tokens.update(tokenizer.tokenize(str(value)))
    return tokens


class Blocker(abc.ABC):
    """Produces candidate index pairs from two entity tables."""

    @abc.abstractmethod
    def candidates(
        self, left_rows: Sequence[Row], right_rows: Sequence[Row]
    ) -> list[tuple[int, int]]:
        """Candidate ``(left_index, right_index)`` pairs, deduplicated."""


class TokenBlocker(Blocker):
    """Entities sharing >= ``min_shared`` tokens become candidates.

    Stop-tokens (appearing in more than ``max_token_frequency`` of either
    table's rows) are ignored, otherwise frequent words like brand names
    would produce a quadratic candidate set.
    """

    def __init__(
        self,
        attributes: Sequence[str],
        min_shared: int = 1,
        max_token_frequency: float = 0.1,
    ) -> None:
        if not attributes:
            raise DataError("TokenBlocker needs at least one attribute")
        if min_shared < 1:
            raise DataError(f"min_shared must be >= 1, got {min_shared}")
        self.attributes = tuple(attributes)
        self.min_shared = min_shared
        self.max_token_frequency = max_token_frequency
        self._tokenizer = BasicTokenizer()

    def candidates(
        self, left_rows: Sequence[Row], right_rows: Sequence[Row]
    ) -> list[tuple[int, int]]:
        left_tokens = [
            _row_tokens(row, self.attributes, self._tokenizer)
            for row in left_rows
        ]
        right_tokens = [
            _row_tokens(row, self.attributes, self._tokenizer)
            for row in right_rows
        ]
        stop = self._stop_tokens(left_tokens, len(left_rows))
        stop |= self._stop_tokens(right_tokens, len(right_rows))

        index: dict[str, list[int]] = defaultdict(list)
        for j, tokens in enumerate(right_tokens):
            for token in tokens - stop:
                index[token].append(j)

        shared_counts: dict[tuple[int, int], int] = defaultdict(int)
        for i, tokens in enumerate(left_tokens):
            for token in tokens - stop:
                for j in index.get(token, ()):
                    shared_counts[(i, j)] += 1
        return sorted(
            pair
            for pair, count in shared_counts.items()
            if count >= self.min_shared
        )

    def _stop_tokens(
        self, token_sets: list[set[str]], n_rows: int
    ) -> set[str]:
        counts: dict[str, int] = defaultdict(int)
        for tokens in token_sets:
            for token in tokens:
                counts[token] += 1
        threshold = max(2, int(self.max_token_frequency * max(1, n_rows)))
        return {token for token, count in counts.items() if count > threshold}


class SortedNeighborhoodBlocker(Blocker):
    """Classic sorted-neighborhood: sort by key, slide a window."""

    def __init__(self, key_attribute: str, window: int = 5) -> None:
        if window < 2:
            raise DataError(f"window must be >= 2, got {window}")
        self.key_attribute = key_attribute
        self.window = window

    def candidates(
        self, left_rows: Sequence[Row], right_rows: Sequence[Row]
    ) -> list[tuple[int, int]]:
        entries: list[tuple[str, int, int]] = []
        for i, row in enumerate(left_rows):
            entries.append((str(row.get(self.key_attribute, "")), 0, i))
        for j, row in enumerate(right_rows):
            entries.append((str(row.get(self.key_attribute, "")), 1, j))
        entries.sort()

        pairs: set[tuple[int, int]] = set()
        for pos, (_key, side, idx) in enumerate(entries):
            for other in entries[pos + 1 : pos + self.window]:
                _okey, oside, oidx = other
                if side == oside:
                    continue
                if side == 0:
                    pairs.add((idx, oidx))
                else:
                    pairs.add((oidx, idx))
        return sorted(pairs)


class MinHashBlocker(Blocker):
    """MinHash-LSH blocking over token sets.

    ``n_hashes = bands * rows_per_band`` hash functions; two entities
    become candidates when all ``rows_per_band`` minima agree in at least
    one band — the standard LSH construction whose collision probability
    is ``1 - (1 - s^r)^b`` for Jaccard similarity ``s``.
    """

    def __init__(
        self,
        attributes: Sequence[str],
        bands: int = 8,
        rows_per_band: int = 2,
        seed: int = 0,
    ) -> None:
        if not attributes:
            raise DataError("MinHashBlocker needs at least one attribute")
        self.attributes = tuple(attributes)
        self.bands = bands
        self.rows_per_band = rows_per_band
        self.seed = seed
        self._tokenizer = BasicTokenizer()
        n_hashes = bands * rows_per_band
        rng = np.random.default_rng(stable_hash("minhash", seed))
        self._salts = rng.integers(1, 2**31 - 1, size=n_hashes)

    def _signature(self, tokens: set[str]) -> np.ndarray | None:
        if not tokens:
            return None
        hashes = np.array(
            [[stable_hash(int(salt), token) for token in tokens]
             for salt in self._salts]
        )
        return hashes.min(axis=1)

    def candidates(
        self, left_rows: Sequence[Row], right_rows: Sequence[Row]
    ) -> list[tuple[int, int]]:
        buckets: dict[tuple[int, tuple], list[int]] = defaultdict(list)
        right_signatures = []
        for j, row in enumerate(right_rows):
            sig = self._signature(
                _row_tokens(row, self.attributes, self._tokenizer)
            )
            right_signatures.append(sig)
            if sig is None:
                continue
            for band in range(self.bands):
                lo = band * self.rows_per_band
                key = (band, tuple(sig[lo : lo + self.rows_per_band]))
                buckets[key].append(j)

        pairs: set[tuple[int, int]] = set()
        for i, row in enumerate(left_rows):
            sig = self._signature(
                _row_tokens(row, self.attributes, self._tokenizer)
            )
            if sig is None:
                continue
            for band in range(self.bands):
                lo = band * self.rows_per_band
                key = (band, tuple(sig[lo : lo + self.rows_per_band]))
                for j in buckets.get(key, ()):
                    pairs.add((i, j))
        return sorted(pairs)


def make_candidate_dataset(
    schema: Schema,
    left_rows: Sequence[Row],
    right_rows: Sequence[Row],
    candidates: Sequence[tuple[int, int]],
    true_matches: set[tuple[int, int]] | None = None,
    name: str = "blocked",
) -> EMDataset:
    """Assemble an EM dataset from blocked candidates.

    ``true_matches`` supplies labels (pairs not listed are non-matches);
    without it every label is 0, which is the unlabelled-production case.
    """
    pairs = []
    for pair_id, (i, j) in enumerate(candidates):
        label = int(true_matches is not None and (i, j) in true_matches)
        pairs.append(
            PairRecord(pair_id, dict(left_rows[i]), dict(right_rows[j]), label)
        )
    return EMDataset(name, schema, pairs, dataset_type="Structured")


def blocking_quality(
    candidates: Sequence[tuple[int, int]],
    true_matches: set[tuple[int, int]],
    n_left: int,
    n_right: int,
) -> dict[str, float]:
    """Pair completeness (recall) and reduction ratio of a blocking."""
    candidate_set = set(candidates)
    found = len(candidate_set & true_matches)
    completeness = found / len(true_matches) if true_matches else 1.0
    total = n_left * n_right
    reduction = 1.0 - len(candidate_set) / total if total else 0.0
    return {
        "pair_completeness": completeness,
        "reduction_ratio": reduction,
        "n_candidates": float(len(candidate_set)),
    }


def cluster_matches(
    pairs: Sequence[tuple[int, int]],
    predictions: Sequence[int],
    n_left: int,
) -> list[set[tuple[str, int]]]:
    """Resolve pairwise match decisions into entity clusters.

    Nodes are ``("L", i)`` / ``("R", j)``; predicted matches are edges;
    clusters are connected components with more than one member.
    """
    graph = nx.Graph()
    for (i, j), predicted in zip(pairs, predictions):
        left_node = ("L", int(i))
        right_node = ("R", int(j))
        graph.add_node(left_node)
        graph.add_node(right_node)
        if predicted:
            graph.add_edge(left_node, right_node)
    return [
        set(component)
        for component in nx.connected_components(graph)
        if len(component) > 1
    ]
