"""Synthetic domain generators for the Magellan-style benchmarks."""

from repro.data.generators.base import (
    DomainGenerator,
    PerturbationConfig,
    Perturber,
    generate_pairs,
)
from repro.data.generators.beer import BeerGenerator
from repro.data.generators.bibliographic import BibliographicGenerator
from repro.data.generators.music import MusicGenerator
from repro.data.generators.products import (
    RetailProductGenerator,
    SoftwareProductGenerator,
)
from repro.data.generators.restaurants import RestaurantGenerator
from repro.data.generators.textual import TextualProductGenerator

__all__ = [
    "BeerGenerator",
    "BibliographicGenerator",
    "DomainGenerator",
    "MusicGenerator",
    "PerturbationConfig",
    "Perturber",
    "RestaurantGenerator",
    "RetailProductGenerator",
    "SoftwareProductGenerator",
    "TextualProductGenerator",
    "generate_pairs",
]
