"""Beer domain generator (BeerAdvocate-RateBeer style).

Backs S-BR: 450 pairs of beer listings. Hard negatives are other beers of
the same brewery or the same style, mirroring how the real candidate set
was blocked on brewery tokens.
"""

from __future__ import annotations

import numpy as np

from repro.data.generators import wordlists
from repro.data.generators.base import DomainGenerator, PerturbationConfig
from repro.data.schema import AttributeKind, Schema

__all__ = ["BeerGenerator"]

_BREWERY_SUFFIXES = (
    "brewing company", "brewery", "brewing co.", "brewworks",
    "beer company", "craft brewery", "brewhouse", "ales",
)


class BeerGenerator(DomainGenerator):
    """Synthetic beer listings."""

    schema = Schema.of(
        "beer",
        ("beer_name", AttributeKind.TEXT),
        ("brew_factory_name", AttributeKind.TEXT),
        ("style", AttributeKind.CATEGORICAL),
        ("abv", AttributeKind.NUMERIC),
    )
    noise_words = wordlists.BEER_NAME_WORDS
    left_noise = PerturbationConfig().scaled(0.2)
    right_noise = PerturbationConfig(
        typo_rate=0.03,
        token_drop_rate=0.08,
        token_swap_rate=0.02,
        abbreviation_rate=0.04,
        extra_token_rate=0.05,
        missing_rate=0.04,
        numeric_jitter=0.03,
        numeric_missing_rate=0.12,
    )

    def sample_entity(self, rng: np.random.Generator) -> dict[str, object]:
        n_name = int(rng.integers(1, 4))
        beer = " ".join(
            str(rng.choice(wordlists.BEER_NAME_WORDS)) for _ in range(n_name)
        )
        brewery_word = str(rng.choice(wordlists.BREWERY_WORDS))
        suffix = str(rng.choice(_BREWERY_SUFFIXES))
        style = str(rng.choice(wordlists.BEER_STYLES))
        abv = float(np.round(rng.uniform(3.5, 12.5), 1))
        return {
            "beer_name": f"{beer} {style.split()[0]}",
            "brew_factory_name": f"{brewery_word} {suffix}",
            "style": style,
            "abv": abv,
        }

    def make_sibling(
        self, entity: dict[str, object], rng: np.random.Generator
    ) -> dict[str, object]:
        """Another beer of the same brewery (or same style elsewhere)."""
        sibling = self.sample_entity(rng)
        if rng.random() < 0.7:
            sibling["brew_factory_name"] = entity["brew_factory_name"]
        else:
            sibling["style"] = entity["style"]
            words = str(entity["beer_name"]).split()
            own = str(sibling["beer_name"]).split()
            sibling["beer_name"] = " ".join([words[0]] + own[1:])
        return sibling

    def render_pair(
        self,
        entity: dict[str, object],
        rng: np.random.Generator,
        match_noise_scale: float = 1.0,
    ) -> tuple[dict[str, object], dict[str, object]]:
        left, right = super().render_pair(entity, rng, match_noise_scale)
        # RateBeer prepends the brewery to the beer name.
        if rng.random() < 0.5:
            brewery_head = str(entity["brew_factory_name"]).split()[0]
            right["beer_name"] = f"{brewery_head} {right['beer_name']}"
        return left, right
