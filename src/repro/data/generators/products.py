"""Product domain generators (Amazon-Google and Walmart-Amazon style).

These back the hardest structured benchmarks (S-AG, S-WA, D-WA): noisy
web-extracted product feeds where titles embed brand and model tokens
inconsistently, the manufacturer column is often missing on one side, and
prices disagree between stores.
"""

from __future__ import annotations

import numpy as np

from repro.data.generators import wordlists
from repro.data.generators.base import (
    DomainGenerator,
    PerturbationConfig,
    format_price,
)
from repro.data.schema import AttributeKind, Schema

__all__ = ["SoftwareProductGenerator", "RetailProductGenerator"]


def _model_number(rng: np.random.Generator) -> str:
    letters = "abcdefghjklmnpqrstuvwx"
    prefix = "".join(
        str(rng.choice(list(letters))) for _ in range(int(rng.integers(1, 4)))
    )
    digits = int(rng.integers(10, 9999))
    suffix = str(rng.choice(["", "s", "x", "pro", "plus", "ii"]))
    return f"{prefix}{digits}{suffix}"


class SoftwareProductGenerator(DomainGenerator):
    """Amazon-Google style products: ``title``, ``manufacturer``, ``price``.

    The Google side frequently leaves ``manufacturer`` empty and moves the
    brand into the title, which is what makes S-AG hard for attribute-wise
    comparison.
    """

    schema = Schema.of(
        "software_product",
        ("title", AttributeKind.TEXT),
        ("manufacturer", AttributeKind.TEXT),
        ("price", AttributeKind.NUMERIC),
    )
    noise_words = wordlists.PRODUCT_QUALIFIERS
    left_noise = PerturbationConfig().scaled(0.25)
    right_noise = PerturbationConfig(
        typo_rate=0.04,
        token_drop_rate=0.12,
        token_swap_rate=0.04,
        abbreviation_rate=0.03,
        extra_token_rate=0.12,
        missing_rate=0.05,
        numeric_jitter=0.15,
        numeric_missing_rate=0.25,
    )

    def sample_entity(self, rng: np.random.Generator) -> dict[str, object]:
        brand = str(rng.choice(wordlists.PRODUCT_BRANDS))
        ptype = str(rng.choice(wordlists.PRODUCT_TYPES))
        n_quals = int(rng.integers(1, 4))
        quals = " ".join(
            str(rng.choice(wordlists.PRODUCT_QUALIFIERS)) for _ in range(n_quals)
        )
        model = _model_number(rng)
        title = f"{brand} {quals} {ptype} {model}"
        price = float(np.round(rng.uniform(9.99, 899.99), 2))
        return {"title": title, "manufacturer": brand, "price": price}

    def make_sibling(
        self, entity: dict[str, object], rng: np.random.Generator
    ) -> dict[str, object]:
        """Same brand & product family, different model — a hard negative."""
        words = str(entity["title"]).split()
        new_model = _model_number(rng)
        new_words = words[:-1] + [new_model]
        if rng.random() < 0.5 and len(new_words) > 3:
            # Tweak one qualifier too (e.g. 'black' vs 'silver').
            idx = int(rng.integers(1, len(new_words) - 2))
            new_words[idx] = str(rng.choice(wordlists.PRODUCT_QUALIFIERS))
        price = float(entity["price"]) * float(rng.uniform(0.7, 1.3))
        return {
            "title": " ".join(new_words),
            "manufacturer": entity["manufacturer"],
            "price": round(price, 2),
        }

    def render_pair(
        self,
        entity: dict[str, object],
        rng: np.random.Generator,
        match_noise_scale: float = 1.0,
    ) -> tuple[dict[str, object], dict[str, object]]:
        left, right = super().render_pair(entity, rng, match_noise_scale)
        if rng.random() < 0.55:  # Google side: manufacturer column empty.
            right["manufacturer"] = ""
        return left, right


class RetailProductGenerator(DomainGenerator):
    """Walmart-Amazon style products with the five-attribute schema.

    ``title``, ``category``, ``brand``, ``modelno``, ``price``. The model
    number is the true identity key; it is frequently missing or embedded
    only inside the title, which is why S-WA / D-WA sit at the bottom of
    the paper's F1 tables.
    """

    schema = Schema.of(
        "retail_product",
        ("title", AttributeKind.TEXT),
        ("category", AttributeKind.CATEGORICAL),
        ("brand", AttributeKind.TEXT),
        ("modelno", AttributeKind.TEXT),
        ("price", AttributeKind.NUMERIC),
    )
    noise_words = wordlists.PRODUCT_QUALIFIERS
    left_noise = PerturbationConfig().scaled(0.25)
    right_noise = PerturbationConfig(
        typo_rate=0.04,
        token_drop_rate=0.12,
        token_swap_rate=0.05,
        abbreviation_rate=0.03,
        extra_token_rate=0.12,
        missing_rate=0.08,
        numeric_jitter=0.12,
        numeric_missing_rate=0.20,
    )

    def sample_entity(self, rng: np.random.Generator) -> dict[str, object]:
        brand = str(rng.choice(wordlists.PRODUCT_BRANDS))
        ptype = str(rng.choice(wordlists.PRODUCT_TYPES))
        category = str(rng.choice(wordlists.CATEGORIES))
        model = _model_number(rng)
        n_quals = int(rng.integers(1, 4))
        quals = " ".join(
            str(rng.choice(wordlists.PRODUCT_QUALIFIERS)) for _ in range(n_quals)
        )
        title = f"{brand} {ptype} {quals} {model}"
        price = float(np.round(rng.uniform(4.99, 1499.99), 2))
        return {
            "title": title,
            "category": category,
            "brand": brand,
            "modelno": model,
            "price": price,
        }

    def make_sibling(
        self, entity: dict[str, object], rng: np.random.Generator
    ) -> dict[str, object]:
        """Same brand and category, neighbouring model number."""
        new_model = _model_number(rng)
        words = str(entity["title"]).split()
        title = " ".join(words[:-1] + [new_model])
        price = float(entity["price"]) * float(rng.uniform(0.6, 1.4))
        return {
            "title": title,
            "category": entity["category"],
            "brand": entity["brand"],
            "modelno": new_model,
            "price": round(price, 2),
        }

    def render_pair(
        self,
        entity: dict[str, object],
        rng: np.random.Generator,
        match_noise_scale: float = 1.0,
    ) -> tuple[dict[str, object], dict[str, object]]:
        left, right = super().render_pair(entity, rng, match_noise_scale)
        if rng.random() < 0.45:  # modelno column empty on one side ...
            side = right if rng.random() < 0.7 else left
            side["modelno"] = ""
        if rng.random() < 0.35:  # ... or categories named differently.
            right["category"] = str(rng.choice(wordlists.CATEGORIES))
        return left, right
