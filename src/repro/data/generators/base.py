"""Core machinery of the synthetic benchmark generators.

Three pieces live here:

* :class:`Perturber` — string/value corruption used to turn a clean ground
  truth entity into the two differently-formatted descriptions a match pair
  consists of (typos, token drops, abbreviations, missing values, numeric
  jitter). Perturbation intensity is the main difficulty knob that lets
  each benchmark dataset reproduce the relative hardness ordering of the
  paper's Table 2.
* :class:`DomainGenerator` — abstract base of the six per-domain entity
  generators (bibliographic, product, restaurant, music, beer, textual).
  A domain knows its schema, how to sample a fresh entity, and how to
  derive a *sibling*: a semantically different entity that shares surface
  tokens with another one — the source of hard non-match pairs, standing in
  for the blocking step that produced the Magellan candidate sets.
* :func:`generate_pairs` — assembles an :class:`~repro.data.schema.EMDataset`
  with a requested size and match rate from a domain generator.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, replace

import numpy as np

from repro.data.schema import AttributeKind, EMDataset, PairRecord, Schema
from repro.exceptions import DataError

__all__ = ["PerturbationConfig", "Perturber", "DomainGenerator", "generate_pairs"]

_KEYBOARD_NEIGHBORS = {
    "a": "sqz", "b": "vn", "c": "xv", "d": "sf", "e": "wr", "f": "dg",
    "g": "fh", "h": "gj", "i": "uo", "j": "hk", "k": "jl", "l": "k",
    "m": "n", "n": "bm", "o": "ip", "p": "o", "q": "wa", "r": "et",
    "s": "ad", "t": "ry", "u": "yi", "v": "cb", "w": "qe", "x": "zc",
    "y": "tu", "z": "ax",
}


@dataclass(frozen=True)
class PerturbationConfig:
    """Per-dataset corruption intensities, all probabilities in [0, 1].

    ``typo_rate`` and friends apply per token; ``missing_rate`` applies per
    attribute value; ``numeric_jitter`` is a relative noise amplitude for
    numeric attributes.
    """

    typo_rate: float = 0.02
    token_drop_rate: float = 0.05
    token_swap_rate: float = 0.02
    abbreviation_rate: float = 0.02
    extra_token_rate: float = 0.02
    missing_rate: float = 0.03
    numeric_jitter: float = 0.0
    numeric_missing_rate: float = 0.05

    def scaled(self, factor: float) -> "PerturbationConfig":
        """A copy with every rate multiplied by ``factor`` (clamped to 1)."""
        def clamp(x: float) -> float:
            return min(1.0, max(0.0, x * factor))

        return replace(
            self,
            typo_rate=clamp(self.typo_rate),
            token_drop_rate=clamp(self.token_drop_rate),
            token_swap_rate=clamp(self.token_swap_rate),
            abbreviation_rate=clamp(self.abbreviation_rate),
            extra_token_rate=clamp(self.extra_token_rate),
            missing_rate=clamp(self.missing_rate),
            numeric_jitter=self.numeric_jitter * factor,
            numeric_missing_rate=clamp(self.numeric_missing_rate),
        )


class Perturber:
    """Applies a :class:`PerturbationConfig` to entity values."""

    def __init__(self, config: PerturbationConfig, rng: np.random.Generator) -> None:
        self.config = config
        self.rng = rng

    # ------------------------------------------------------------- strings

    def perturb_text(self, text: str, noise_words: tuple[str, ...] = ()) -> str:
        """Corrupt one text value token-wise per the config."""
        cfg = self.config
        if text and self.rng.random() < cfg.missing_rate:
            return ""
        tokens = text.split()
        if not tokens:
            return text

        kept: list[str] = []
        for token in tokens:
            roll = self.rng.random()
            if len(tokens) > 1 and roll < cfg.token_drop_rate:
                continue
            if roll < cfg.token_drop_rate + cfg.abbreviation_rate and len(token) > 3:
                kept.append(token[0] + ".")
                continue
            if self.rng.random() < cfg.typo_rate:
                token = self._typo(token)
            kept.append(token)
        if not kept:
            kept = [tokens[0]]

        if len(kept) > 2 and self.rng.random() < cfg.token_swap_rate:
            i = int(self.rng.integers(0, len(kept) - 1))
            kept[i], kept[i + 1] = kept[i + 1], kept[i]
        if noise_words and self.rng.random() < cfg.extra_token_rate:
            kept.append(str(self.rng.choice(noise_words)))
        return " ".join(kept)

    def _typo(self, token: str) -> str:
        if len(token) < 2:
            return token
        pos = int(self.rng.integers(0, len(token)))
        kind = int(self.rng.integers(0, 4))
        ch = token[pos]
        if kind == 0:  # substitution with keyboard neighbour
            options = _KEYBOARD_NEIGHBORS.get(ch.lower(), "")
            if options:
                ch = str(self.rng.choice(list(options)))
            return token[:pos] + ch + token[pos + 1 :]
        if kind == 1:  # deletion
            return token[:pos] + token[pos + 1 :]
        if kind == 2:  # duplication
            return token[:pos] + ch + token[pos:]
        # transposition
        if pos == len(token) - 1:
            pos -= 1
        return (
            token[:pos] + token[pos + 1] + token[pos] + token[pos + 2 :]
        )

    # ------------------------------------------------------------ numerics

    def perturb_numeric(self, value: float | None) -> float | None:
        """Jitter or drop one numeric value per the config."""
        cfg = self.config
        if value is None:
            return None
        if self.rng.random() < cfg.numeric_missing_rate:
            return None
        if cfg.numeric_jitter > 0 and self.rng.random() < 0.5:
            value = value * float(
                1.0 + self.rng.normal(0.0, cfg.numeric_jitter)
            )
            value = round(value, 2)
        return value

    # ------------------------------------------------------------ entities

    def perturb_entity(
        self,
        entity: dict[str, object],
        schema: Schema,
        noise_words: tuple[str, ...] = (),
    ) -> dict[str, object]:
        """Corrupt every attribute of an entity copy per the config."""
        result: dict[str, object] = {}
        for attr in schema.attributes:
            value = entity[attr.name]
            if attr.kind is AttributeKind.NUMERIC:
                result[attr.name] = self.perturb_numeric(
                    None if value is None else float(value)  # type: ignore[arg-type]
                )
            else:
                result[attr.name] = self.perturb_text(str(value), noise_words)
        return result


class DomainGenerator(abc.ABC):
    """One synthetic domain: schema + entity sampling + sibling derivation.

    Subclasses configure ``schema`` and the two per-side perturbation
    configs: ``left_noise`` models the formatting of source table A (clean
    by convention), ``right_noise`` the formatting of source B (where most
    corruption lives, as in the real web-extracted Magellan sources).
    """

    #: Dataset-level schema (shared by both sides of every pair).
    schema: Schema
    #: Perturbation applied to the left copy of a matching entity.
    left_noise: PerturbationConfig = PerturbationConfig().scaled(0.3)
    #: Perturbation applied to the right copy of a matching entity.
    right_noise: PerturbationConfig = PerturbationConfig()
    #: Words occasionally appended as noise tokens.
    noise_words: tuple[str, ...] = ()

    @abc.abstractmethod
    def sample_entity(self, rng: np.random.Generator) -> dict[str, object]:
        """Draw one fresh, clean ground-truth entity."""

    def make_sibling(
        self, entity: dict[str, object], rng: np.random.Generator
    ) -> dict[str, object]:
        """Derive a *different* entity sharing surface tokens with ``entity``.

        The default implementation re-samples a fresh entity and copies a
        random non-identifying attribute over, which guarantees token
        overlap; domains override this with sharper semantics (same product
        line / same artist / same street).
        """
        sibling = self.sample_entity(rng)
        names = [a.name for a in self.schema.attributes]
        shared = str(rng.choice(names[1:])) if len(names) > 1 else names[0]
        sibling[shared] = entity[shared]
        return sibling

    def render_pair(
        self,
        entity: dict[str, object],
        rng: np.random.Generator,
        match_noise_scale: float = 1.0,
    ) -> tuple[dict[str, object], dict[str, object]]:
        """Render the two descriptions of one ground-truth entity."""
        left = Perturber(self.left_noise, rng).perturb_entity(
            entity, self.schema, self.noise_words
        )
        right_cfg = self.right_noise.scaled(match_noise_scale)
        right = Perturber(right_cfg, rng).perturb_entity(
            entity, self.schema, self.noise_words
        )
        return left, right


def generate_pairs(
    domain: DomainGenerator,
    size: int,
    match_fraction: float,
    rng: np.random.Generator,
    hard_negative_fraction: float = 0.5,
    match_noise_scale: float = 1.0,
    name: str = "synthetic",
    dataset_type: str = "Structured",
) -> EMDataset:
    """Generate a labelled candidate-pair dataset from a domain.

    Parameters
    ----------
    domain:
        The domain generator supplying entities.
    size:
        Total number of candidate pairs.
    match_fraction:
        Fraction of pairs labelled 1 (Table 1 '% Match').
    rng:
        Source of randomness; pass a seeded generator for determinism.
    hard_negative_fraction:
        Among non-matches, the fraction built from sibling entities (token
        overlap without identity) instead of independent entities. Higher
        values emulate tighter blocking and make the dataset harder.
    match_noise_scale:
        Multiplier on the right-side perturbation of matching pairs; the
        main per-dataset difficulty knob.
    name, dataset_type:
        Metadata forwarded to the :class:`EMDataset`.
    """
    if size <= 0:
        raise DataError(f"size must be positive, got {size}")
    if not 0.0 < match_fraction < 1.0:
        raise DataError(f"match_fraction must be in (0, 1), got {match_fraction}")

    n_match = max(1, int(round(size * match_fraction)))
    n_nonmatch = size - n_match
    n_hard = int(round(n_nonmatch * hard_negative_fraction))
    n_easy = n_nonmatch - n_hard

    pairs: list[PairRecord] = []
    pair_id = 0

    for _ in range(n_match):
        entity = domain.sample_entity(rng)
        left, right = domain.render_pair(entity, rng, match_noise_scale)
        pairs.append(PairRecord(pair_id, left, right, 1))
        pair_id += 1

    for _ in range(n_hard):
        entity = domain.sample_entity(rng)
        sibling = domain.make_sibling(entity, rng)
        left, _ = domain.render_pair(entity, rng, match_noise_scale)
        _, right = domain.render_pair(sibling, rng, match_noise_scale)
        pairs.append(PairRecord(pair_id, left, right, 0))
        pair_id += 1

    for _ in range(n_easy):
        entity_a = domain.sample_entity(rng)
        entity_b = domain.sample_entity(rng)
        left, _ = domain.render_pair(entity_a, rng, match_noise_scale)
        _, right = domain.render_pair(entity_b, rng, match_noise_scale)
        pairs.append(PairRecord(pair_id, left, right, 0))
        pair_id += 1

    # Shuffle so labels are not ordered, then re-number pair ids.
    order = rng.permutation(len(pairs))
    shuffled = [
        PairRecord(i, pairs[j].left, pairs[j].right, pairs[j].label)
        for i, j in enumerate(order.tolist())
    ]
    return EMDataset(name, domain.schema, shuffled, dataset_type)


def sample_words(
    pool: tuple[str, ...],
    count: int,
    rng: np.random.Generator,
    zipf_exponent: float = 1.1,
) -> list[str]:
    """Sample ``count`` distinct-ish words with a Zipfian skew.

    A mild Zipf distribution makes common words collide across entities the
    way real titles do, which is what makes hard negatives hard.
    """
    if count <= 0:
        return []
    ranks = np.arange(1, len(pool) + 1, dtype=float)
    weights = ranks**-zipf_exponent
    weights /= weights.sum()
    indices = rng.choice(len(pool), size=count, replace=True, p=weights)
    # Deduplicate preserving order; top up with uniform draws if needed.
    seen: list[str] = []
    for idx in indices:
        word = pool[int(idx)]
        if word not in seen:
            seen.append(word)
    while len(seen) < min(count, len(pool)):
        word = pool[int(rng.integers(0, len(pool)))]
        if word not in seen:
            seen.append(word)
    return seen[:count]


def format_price(value: float) -> str:
    """Render a price the way product feeds do (two decimals)."""
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return ""
    return f"{value:.2f}"
