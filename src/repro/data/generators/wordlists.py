"""Word pools used by the synthetic dataset generators.

The pools are intentionally large enough that entity titles collide on
individual words (creating realistic hard negatives under blocking) but not
on whole values. They are module-level constants so every generator and
every test sees the same pools.
"""

from __future__ import annotations

FIRST_NAMES: tuple[str, ...] = (
    "james", "mary", "john", "patricia", "robert", "jennifer", "michael",
    "linda", "william", "elizabeth", "david", "barbara", "richard", "susan",
    "joseph", "jessica", "thomas", "sarah", "charles", "karen", "wei",
    "li", "hiroshi", "yuki", "anna", "peter", "hans", "ingrid", "marco",
    "giulia", "pierre", "camille", "ivan", "olga", "carlos", "lucia",
    "ahmed", "fatima", "raj", "priya", "lars", "sofia", "miguel", "elena",
    "daniel", "laura", "kevin", "emily", "brian", "rachel", "george",
    "helen", "frank", "diana", "paul", "alice", "mark", "julia", "steven",
    "nina", "edward", "clara", "henry", "rosa", "walter", "vera", "louis",
    "irene", "arthur", "claire", "oscar", "martha", "felix", "nora",
)

LAST_NAMES: tuple[str, ...] = (
    "smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
    "davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez",
    "wilson", "anderson", "thomas", "taylor", "moore", "jackson", "martin",
    "lee", "chen", "wang", "zhang", "liu", "yamamoto", "tanaka", "suzuki",
    "mueller", "schmidt", "schneider", "fischer", "weber", "rossi",
    "ferrari", "bianchi", "ricci", "dubois", "moreau", "laurent", "petrov",
    "ivanov", "kumar", "sharma", "patel", "singh", "ali", "hassan",
    "nguyen", "tran", "kim", "park", "choi", "andersson", "nilsson",
    "hansen", "olsen", "virtanen", "kowalski", "nowak", "horvath", "novak",
    "papadopoulos", "costa", "silva", "santos", "pereira", "almeida",
)

CS_TITLE_WORDS: tuple[str, ...] = (
    "efficient", "scalable", "distributed", "parallel", "adaptive",
    "incremental", "approximate", "robust", "optimal", "dynamic", "static",
    "probabilistic", "declarative", "secure", "interactive", "automated",
    "query", "queries", "processing", "optimization", "evaluation",
    "indexing", "mining", "learning", "matching", "integration",
    "clustering", "classification", "ranking", "retrieval", "estimation",
    "sampling", "caching", "replication", "partitioning", "compression",
    "streams", "streaming", "graphs", "graph", "relational", "spatial",
    "temporal", "semistructured", "xml", "web", "semantic", "schema",
    "database", "databases", "warehouse", "transactions", "concurrency",
    "recovery", "views", "joins", "aggregation", "skyline", "keyword",
    "similarity", "entity", "records", "duplicate", "detection",
    "resolution", "cleaning", "provenance", "privacy", "anonymization",
    "crowdsourcing", "workflow", "metadata", "ontology", "knowledge",
    "discovery", "patterns", "rules", "association", "sequential",
    "framework", "architecture", "system", "systems", "engine", "language",
    "algebra", "calculus", "semantics", "algorithms", "structures",
    "networks", "sensor", "mobile", "cloud", "mapreduce", "federated",
    "heterogeneous", "multidimensional", "analytical", "online", "offline",
)

VENUES_FULL: tuple[str, ...] = (
    "international conference on very large data bases",
    "acm sigmod international conference on management of data",
    "ieee international conference on data engineering",
    "international conference on extending database technology",
    "acm symposium on principles of database systems",
    "international conference on database theory",
    "acm conference on information and knowledge management",
    "acm sigkdd conference on knowledge discovery and data mining",
    "ieee transactions on knowledge and data engineering",
    "acm transactions on database systems",
    "the vldb journal",
    "information systems",
    "data and knowledge engineering",
    "journal of intelligent information systems",
    "distributed and parallel databases",
)

VENUES_ABBREV: tuple[str, ...] = (
    "vldb", "sigmod", "icde", "edbt", "pods", "icdt", "cikm", "kdd",
    "tkde", "tods", "vldbj", "inf syst", "dke", "jiis", "dapd",
)

PRODUCT_BRANDS: tuple[str, ...] = (
    "sony", "samsung", "panasonic", "canon", "nikon", "hewlett packard",
    "dell", "lenovo", "asus", "acer", "toshiba", "logitech", "belkin",
    "netgear", "linksys", "kingston", "sandisk", "seagate",
    "western digital", "epson", "brother", "xerox", "philips", "sharp", "jvc", "pioneer",
    "kenwood", "garmin", "tomtom", "microsoft", "apple", "intel", "amd",
    "nvidia", "corsair", "thermaltake", "antec", "dlink", "tplink",
    "huawei", "motorola", "nokia", "blackberry", "casio", "olympus",
    "fujifilm", "kodak", "polaroid", "vtech", "uniden", "plantronics",
)

PRODUCT_TYPES: tuple[str, ...] = (
    "laptop", "notebook", "monitor", "printer", "scanner", "keyboard",
    "mouse", "headset", "speaker", "camera", "camcorder", "television",
    "projector", "router", "modem", "switch", "hard drive", "flash drive",
    "memory card", "battery", "charger", "adapter", "cable", "dock",
    "tablet", "phone", "smartphone", "gps", "radio", "microphone",
    "webcam", "receiver", "amplifier", "subwoofer", "turntable",
    "media player", "game console", "controller", "graphics card",
    "motherboard", "processor", "power supply", "case fan", "ink cartridge",
    "toner", "paper shredder", "calculator", "label maker",
)

PRODUCT_QUALIFIERS: tuple[str, ...] = (
    "wireless", "bluetooth", "portable", "compact", "professional",
    "digital", "hd", "full hd", "4k", "ultra", "slim", "mini", "pro",
    "deluxe", "premium", "gaming", "office", "home", "travel", "rugged",
    "waterproof", "rechargeable", "ergonomic", "backlit", "widescreen",
    "dual band", "high speed", "noise cancelling", "touch", "smart",
    "black", "white", "silver", "blue", "red", "refurbished",
)

CATEGORIES: tuple[str, ...] = (
    "electronics", "computers", "accessories", "audio", "video",
    "photography", "networking", "storage", "printers", "peripherals",
    "components", "software", "office products", "home theater",
    "car electronics", "portable audio", "telephones", "security",
)

STREET_NAMES: tuple[str, ...] = (
    "main st", "oak ave", "maple dr", "cedar ln", "pine st", "elm st",
    "washington blvd", "lincoln ave", "jefferson st", "madison ave",
    "park ave", "lake shore dr", "sunset blvd", "broadway", "market st",
    "church st", "mill rd", "river rd", "highland ave", "prospect st",
    "spring st", "union ave", "valley rd", "victoria st", "king st",
    "queen st", "first ave", "second ave", "third ave", "fourth ave",
    "fifth ave", "canal st", "bay st", "harbor blvd", "ocean dr",
)

CITIES: tuple[str, ...] = (
    "new york", "los angeles", "chicago", "houston", "phoenix",
    "philadelphia", "san antonio", "san diego", "dallas", "san jose",
    "austin", "san francisco", "seattle", "denver", "boston", "atlanta",
    "miami", "portland", "las vegas", "detroit", "memphis", "baltimore",
    "milwaukee", "albuquerque", "tucson", "fresno", "sacramento",
    "kansas city", "mesa", "omaha", "oakland", "tulsa", "minneapolis",
    "cleveland", "new orleans",
)

CUISINES: tuple[str, ...] = (
    "italian", "french", "chinese", "japanese", "mexican", "thai",
    "indian", "greek", "spanish", "american", "steakhouse", "seafood",
    "barbecue", "vegetarian", "mediterranean", "vietnamese", "korean",
    "cajun", "continental", "delicatessen", "pizzeria", "bistro",
    "brasserie", "diner", "cafe", "tapas", "sushi", "noodle house",
)

RESTAURANT_WORDS: tuple[str, ...] = (
    "golden", "silver", "royal", "grand", "little", "blue", "red",
    "green", "old", "new", "happy", "lucky", "garden", "palace", "house",
    "kitchen", "table", "corner", "village", "harbor", "sunset",
    "mountain", "river", "ocean", "star", "moon", "sun", "dragon",
    "phoenix", "lotus", "olive", "vine", "oak", "maple", "willow",
    "anchor", "lighthouse", "windmill", "fountain", "bella", "casa",
    "villa", "trattoria", "osteria", "chez", "maison", "le", "la", "el",
)

SONG_WORDS: tuple[str, ...] = (
    "love", "heart", "night", "day", "dream", "fire", "rain", "sun",
    "moon", "star", "sky", "road", "home", "time", "life", "soul",
    "dance", "party", "baby", "girl", "boy", "world", "light", "dark",
    "shadow", "summer", "winter", "river", "ocean", "mountain", "city",
    "street", "angel", "devil", "heaven", "paradise", "freedom", "glory",
    "forever", "never", "always", "tonight", "yesterday", "tomorrow",
    "beautiful", "crazy", "wild", "broken", "golden", "electric", "magic",
    "story", "song", "rhythm", "melody", "echo", "whisper", "scream",
    "runaway", "hurricane", "thunder", "lightning", "diamond", "velvet",
)

GENRES: tuple[str, ...] = (
    "pop", "rock", "hip-hop/rap", "country", "r&b/soul", "dance",
    "electronic", "alternative", "indie pop", "latin", "jazz", "blues",
    "folk", "reggae", "metal", "punk", "classical", "soundtrack",
    "singer/songwriter", "christian & gospel", "world", "funk",
)

BEER_STYLES: tuple[str, ...] = (
    "american ipa", "imperial ipa", "american pale ale", "english pale ale",
    "amber ale", "brown ale", "porter", "imperial porter", "stout",
    "imperial stout", "oatmeal stout", "milk stout", "pilsner", "lager",
    "vienna lager", "helles", "dunkel", "bock", "doppelbock", "hefeweizen",
    "witbier", "saison", "farmhouse ale", "belgian dubbel",
    "belgian tripel", "belgian quadrupel", "barleywine", "scotch ale", "kolsch", "altbier",
    "fruit beer", "pumpkin ale", "sour ale", "gose", "berliner weisse",
    "rauchbier", "cream ale", "blonde ale", "red ale", "rye beer",
)

BREWERY_WORDS: tuple[str, ...] = (
    "stone", "river", "mountain", "valley", "creek", "ridge", "summit",
    "harbor", "lighthouse", "anchor", "eagle", "bear", "wolf", "fox",
    "raven", "falcon", "buffalo", "moose", "elk", "otter", "badger",
    "iron", "copper", "golden", "silver", "granite", "oak", "cedar",
    "pine", "birch", "prairie", "canyon", "mesa", "lakeside", "northern",
    "southern", "eastern", "western", "old town", "founders", "brothers",
    "union", "republic", "frontier", "pioneer", "heritage", "landmark",
)

BEER_NAME_WORDS: tuple[str, ...] = (
    "hop", "hoppy", "hazy", "juicy", "bitter", "smooth", "dark", "golden",
    "amber", "ruby", "midnight", "sunrise", "sunset", "harvest", "winter",
    "summer", "spring", "autumn", "solstice", "equinox", "festive",
    "jubilee", "reserve", "vintage", "barrel", "bourbon", "oaked",
    "smoked", "toasted", "roasted", "velvet", "silk", "thunder", "storm",
    "avalanche", "wildfire", "blizzard", "monsoon", "typhoon", "zephyr",
    "nomad", "wanderer", "voyager", "pilgrim", "prophet", "monk", "abbey",
)

DESCRIPTION_PHRASES: tuple[str, ...] = (
    "features a sleek design with premium materials",
    "delivers outstanding performance for everyday use",
    "includes all necessary cables and accessories",
    "backed by a one year limited manufacturer warranty",
    "compatible with windows and mac operating systems",
    "engineered for reliability and long lasting durability",
    "offers crystal clear sound quality and deep bass",
    "provides fast data transfer speeds and ample storage",
    "lightweight and portable for use on the go",
    "easy to set up with plug and play installation",
    "energy efficient design reduces power consumption",
    "advanced cooling system prevents overheating",
    "high resolution display with vivid color reproduction",
    "responsive controls and intuitive user interface",
    "ideal for home office or professional environments",
    "supports the latest wireless connectivity standards",
    "rugged construction withstands daily wear and tear",
    "award winning design recognized by industry experts",
    "bundled software suite enhances productivity",
    "expandable memory lets you store more of what you love",
)
