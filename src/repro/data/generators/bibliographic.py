"""Bibliographic domain generator (DBLP / ACM / Google Scholar style).

Backs the S-DG, S-DA, D-DG and D-DA benchmarks. Entities are publications
with ``title``, ``authors``, ``venue`` and ``year``. The two sources render
venues differently (DBLP uses abbreviations, Google Scholar spells them
out), which is the dominant source of difficulty in the real datasets.
"""

from __future__ import annotations

import numpy as np

from repro.data.generators import wordlists
from repro.data.generators.base import (
    DomainGenerator,
    PerturbationConfig,
    sample_words,
)
from repro.data.schema import AttributeKind, Schema

__all__ = ["BibliographicGenerator"]


class BibliographicGenerator(DomainGenerator):
    """Synthetic publications.

    Parameters
    ----------
    venue_mismatch:
        When True, the right-hand source renders venues in full while the
        left-hand source abbreviates them (the DBLP vs Google Scholar
        situation). When False both sides abbreviate (DBLP vs ACM).
    """

    schema = Schema.of(
        "publication",
        ("title", AttributeKind.TEXT),
        ("authors", AttributeKind.TEXT),
        ("venue", AttributeKind.TEXT),
        ("year", AttributeKind.NUMERIC),
    )
    noise_words = wordlists.CS_TITLE_WORDS
    left_noise = PerturbationConfig().scaled(0.2)
    right_noise = PerturbationConfig(
        typo_rate=0.03,
        token_drop_rate=0.08,
        token_swap_rate=0.03,
        abbreviation_rate=0.10,
        extra_token_rate=0.03,
        missing_rate=0.04,
        numeric_jitter=0.0,
        numeric_missing_rate=0.08,
    )

    def __init__(self, venue_mismatch: bool = False) -> None:
        self.venue_mismatch = venue_mismatch

    def sample_entity(self, rng: np.random.Generator) -> dict[str, object]:
        n_title = int(rng.integers(4, 10))
        title = " ".join(sample_words(wordlists.CS_TITLE_WORDS, n_title, rng))
        n_authors = int(rng.integers(1, 5))
        authors = ", ".join(self._author(rng) for _ in range(n_authors))
        venue_idx = int(rng.integers(0, len(wordlists.VENUES_ABBREV)))
        year = int(rng.integers(1992, 2021))
        return {
            "title": title,
            "authors": authors,
            "venue": wordlists.VENUES_ABBREV[venue_idx],
            "year": year,
            # The full venue name is attached out-of-band via the index so
            # render_pair can swap representations per side.
            "_venue_idx": venue_idx,
        }

    def make_sibling(
        self, entity: dict[str, object], rng: np.random.Generator
    ) -> dict[str, object]:
        """A different paper sharing venue, year, and some title words."""
        sibling = self.sample_entity(rng)
        sibling["venue"] = entity["venue"]
        sibling["_venue_idx"] = entity["_venue_idx"]
        sibling["year"] = entity["year"]
        # Borrow a prefix of the original title (same research line).
        original_words = str(entity["title"]).split()
        own_words = str(sibling["title"]).split()
        keep = max(1, len(original_words) // 2)
        sibling["title"] = " ".join(original_words[:keep] + own_words[keep:])
        if rng.random() < 0.4:
            sibling["authors"] = entity["authors"]
        return sibling

    def render_pair(
        self,
        entity: dict[str, object],
        rng: np.random.Generator,
        match_noise_scale: float = 1.0,
    ) -> tuple[dict[str, object], dict[str, object]]:
        clean = {k: v for k, v in entity.items() if k != "_venue_idx"}
        left, right = super().render_pair(clean, rng, match_noise_scale)
        venue_idx = int(entity["_venue_idx"])  # type: ignore[arg-type]
        if self.venue_mismatch:
            right["venue"] = wordlists.VENUES_FULL[venue_idx]
            if rng.random() < 0.3:  # Scholar frequently drops the venue.
                right["venue"] = ""
        if rng.random() < 0.25:  # Scholar-style 'J Smith' author initials.
            right["authors"] = self._initialize_authors(str(right["authors"]))
        return left, right

    @staticmethod
    def _author(rng: np.random.Generator) -> str:
        first = str(rng.choice(wordlists.FIRST_NAMES))
        last = str(rng.choice(wordlists.LAST_NAMES))
        return f"{first} {last}"

    @staticmethod
    def _initialize_authors(authors: str) -> str:
        parts = []
        for author in authors.split(", "):
            words = author.split()
            if len(words) >= 2:
                parts.append(f"{words[0][0]} {' '.join(words[1:])}")
            else:
                parts.append(author)
        return ", ".join(parts)
