"""Music domain generator (iTunes-Amazon style).

Backs S-IA and D-IA — small datasets (539 pairs) of song listings. Hard
negatives are other tracks of the same album or remixes/live versions of
the same song, which is exactly what the blocked iTunes-Amazon candidate
set contains.
"""

from __future__ import annotations

import numpy as np

from repro.data.generators import wordlists
from repro.data.generators.base import DomainGenerator, PerturbationConfig
from repro.data.schema import AttributeKind, Schema

__all__ = ["MusicGenerator"]

_VERSION_TAGS = (
    "remix", "live", "acoustic", "radio edit", "extended mix",
    "instrumental", "remastered", "deluxe version", "album version",
    "single version", "feat. special guest", "karaoke version",
)


class MusicGenerator(DomainGenerator):
    """Synthetic song listings with iTunes/Amazon formatting quirks."""

    schema = Schema.of(
        "song",
        ("song_name", AttributeKind.TEXT),
        ("artist_name", AttributeKind.TEXT),
        ("album_name", AttributeKind.TEXT),
        ("genre", AttributeKind.CATEGORICAL),
        ("time", AttributeKind.TEXT),
        ("price", AttributeKind.NUMERIC),
        ("released", AttributeKind.TEXT),
    )
    noise_words = wordlists.SONG_WORDS
    left_noise = PerturbationConfig().scaled(0.2)
    right_noise = PerturbationConfig(
        typo_rate=0.02,
        token_drop_rate=0.05,
        token_swap_rate=0.02,
        abbreviation_rate=0.02,
        extra_token_rate=0.06,
        missing_rate=0.05,
        numeric_jitter=0.05,
        numeric_missing_rate=0.15,
    )

    def sample_entity(self, rng: np.random.Generator) -> dict[str, object]:
        n_song = int(rng.integers(1, 5))
        song = " ".join(
            str(rng.choice(wordlists.SONG_WORDS)) for _ in range(n_song)
        )
        artist = (
            f"{rng.choice(wordlists.FIRST_NAMES)} "
            f"{rng.choice(wordlists.LAST_NAMES)}"
        )
        n_album = int(rng.integers(1, 4))
        album = " ".join(
            str(rng.choice(wordlists.SONG_WORDS)) for _ in range(n_album)
        )
        genre = str(rng.choice(wordlists.GENRES))
        minutes = int(rng.integers(2, 7))
        seconds = int(rng.integers(0, 60))
        price = float(rng.choice([0.99, 1.29, 1.99]))
        year = int(rng.integers(1985, 2021))
        month = int(rng.integers(1, 13))
        day = int(rng.integers(1, 29))
        return {
            "song_name": song,
            "artist_name": artist,
            "album_name": album,
            "genre": genre,
            "time": f"{minutes}:{seconds:02d}",
            "price": price,
            "released": f"{day:02d}-{month:02d}-{year}",
        }

    def make_sibling(
        self, entity: dict[str, object], rng: np.random.Generator
    ) -> dict[str, object]:
        """Another track of the same album, or a version of the same song."""
        sibling = dict(entity)
        if rng.random() < 0.5:
            # Different track on the same album.
            n_song = int(rng.integers(1, 5))
            sibling["song_name"] = " ".join(
                str(rng.choice(wordlists.SONG_WORDS)) for _ in range(n_song)
            )
            minutes = int(rng.integers(2, 7))
            seconds = int(rng.integers(0, 60))
            sibling["time"] = f"{minutes}:{seconds:02d}"
        else:
            # Remix / live version of the same song: different recording.
            tag = str(rng.choice(_VERSION_TAGS))
            sibling["song_name"] = f"{entity['song_name']} ({tag})"
            n_album = int(rng.integers(1, 4))
            sibling["album_name"] = " ".join(
                str(rng.choice(wordlists.SONG_WORDS)) for _ in range(n_album)
            )
            year = int(rng.integers(1985, 2021))
            sibling["released"] = f"{int(rng.integers(1, 29)):02d}-" \
                f"{int(rng.integers(1, 13)):02d}-{year}"
        return sibling

    def render_pair(
        self,
        entity: dict[str, object],
        rng: np.random.Generator,
        match_noise_scale: float = 1.0,
    ) -> tuple[dict[str, object], dict[str, object]]:
        left, right = super().render_pair(entity, rng, match_noise_scale)
        if rng.random() < 0.3:  # Amazon prefixes '[Explicit]'-style tags.
            right["song_name"] = f"{right['song_name']} [explicit]"
        if rng.random() < 0.25:  # Genre granularity differs across stores.
            right["genre"] = str(rng.choice(wordlists.GENRES))
        return left, right
