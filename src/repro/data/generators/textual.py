"""Textual domain generator (Abt-Buy style).

Backs T-AB, the paper's one "Textual" dataset: product listings whose
dominant attribute is a long free-text ``description``. The identity
signal (model tokens) is buried inside the description rather than in
aligned columns, which defeats attribute-wise comparison and keeps raw
AutoML F1 in the twenties (Table 2).
"""

from __future__ import annotations

import numpy as np

from repro.data.generators import wordlists
from repro.data.generators.base import (
    DomainGenerator,
    PerturbationConfig,
)
from repro.data.schema import AttributeKind, Schema

__all__ = ["TextualProductGenerator"]


class TextualProductGenerator(DomainGenerator):
    """Synthetic Abt-Buy style listings: ``name``, ``description``, ``price``."""

    schema = Schema.of(
        "textual_product",
        ("name", AttributeKind.TEXT),
        ("description", AttributeKind.TEXT),
        ("price", AttributeKind.NUMERIC),
    )
    noise_words = wordlists.PRODUCT_QUALIFIERS
    left_noise = PerturbationConfig().scaled(0.25)
    right_noise = PerturbationConfig(
        typo_rate=0.03,
        token_drop_rate=0.10,
        token_swap_rate=0.03,
        abbreviation_rate=0.02,
        extra_token_rate=0.10,
        missing_rate=0.06,
        numeric_jitter=0.12,
        numeric_missing_rate=0.35,
    )

    def sample_entity(self, rng: np.random.Generator) -> dict[str, object]:
        brand = str(rng.choice(wordlists.PRODUCT_BRANDS))
        ptype = str(rng.choice(wordlists.PRODUCT_TYPES))
        model = self._model(rng)
        name = f"{brand} {ptype} {model}"
        n_phrases = int(rng.integers(2, 5))
        phrases = [
            str(rng.choice(wordlists.DESCRIPTION_PHRASES)) for _ in range(n_phrases)
        ]
        qualifier = str(rng.choice(wordlists.PRODUCT_QUALIFIERS))
        description = (
            f"{brand} {qualifier} {ptype} model {model} . " + " . ".join(phrases)
        )
        price = float(np.round(rng.uniform(19.99, 1299.99), 2))
        return {"name": name, "description": description, "price": price}

    def make_sibling(
        self, entity: dict[str, object], rng: np.random.Generator
    ) -> dict[str, object]:
        """Same brand and type, different model — descriptions overlap a lot."""
        name_words = str(entity["name"]).split()
        brand, ptype_words, _model = name_words[0], name_words[1:-1], name_words[-1]
        new_model = self._model(rng)
        n_phrases = int(rng.integers(2, 5))
        phrases = [
            str(rng.choice(wordlists.DESCRIPTION_PHRASES)) for _ in range(n_phrases)
        ]
        qualifier = str(rng.choice(wordlists.PRODUCT_QUALIFIERS))
        ptype = " ".join(ptype_words)
        return {
            "name": f"{brand} {ptype} {new_model}",
            "description": (
                f"{brand} {qualifier} {ptype} model {new_model} . "
                + " . ".join(phrases)
            ),
            "price": round(float(entity["price"]) * float(rng.uniform(0.6, 1.4)), 2),
        }

    def render_pair(
        self,
        entity: dict[str, object],
        rng: np.random.Generator,
        match_noise_scale: float = 1.0,
    ) -> tuple[dict[str, object], dict[str, object]]:
        left, right = super().render_pair(entity, rng, match_noise_scale)
        # The two retailers author their marketing copy independently:
        # only the lead sentence (brand/type/model) is shared, the rest of
        # the right-hand description is rewritten from scratch. This is
        # what makes Abt-Buy a genuinely *textual* matching problem.
        lead, _sep, _rest = str(right["description"]).partition(" . ")
        n_phrases = int(rng.integers(2, 5))
        phrases = [
            str(rng.choice(wordlists.DESCRIPTION_PHRASES)) for _ in range(n_phrases)
        ]
        right["description"] = lead + " . " + " . ".join(phrases)
        if rng.random() < 0.5:  # Buy.com truncates names aggressively.
            words = str(right["name"]).split()
            right["name"] = " ".join(words[: max(2, len(words) - 1)])
        if rng.random() < 0.35:  # Model token often missing on one side.
            words = [
                w for w in str(right["description"]).split() if "-" not in w
            ]
            right["description"] = " ".join(words)
        return left, right

    @staticmethod
    def _model(rng: np.random.Generator) -> str:
        letters = "abcdefghjklmnpqrstuvwx"
        head = "".join(
            str(rng.choice(list(letters))) for _ in range(int(rng.integers(2, 4)))
        )
        return f"{head}-{int(rng.integers(100, 9999))}"
