"""Restaurant domain generator (Fodors-Zagats style).

Backs the S-FZ benchmark — the easiest dataset in the paper (DeepMatcher
and AutoSklearn reach F1 = 100). The reason is structural: restaurant pairs
share a nearly-unique phone number and address, so the generator keeps
perturbation light and makes the phone a strong identity key with per-side
formatting differences only.
"""

from __future__ import annotations

import numpy as np

from repro.data.generators import wordlists
from repro.data.generators.base import DomainGenerator, PerturbationConfig
from repro.data.schema import AttributeKind, Schema

__all__ = ["RestaurantGenerator"]


class RestaurantGenerator(DomainGenerator):
    """Synthetic restaurant listings with Fodors/Zagat formatting quirks."""

    schema = Schema.of(
        "restaurant",
        ("name", AttributeKind.TEXT),
        ("addr", AttributeKind.TEXT),
        ("city", AttributeKind.CATEGORICAL),
        ("phone", AttributeKind.TEXT),
        ("type", AttributeKind.CATEGORICAL),
    )
    noise_words = wordlists.RESTAURANT_WORDS
    left_noise = PerturbationConfig().scaled(0.1)
    right_noise = PerturbationConfig(
        typo_rate=0.015,
        token_drop_rate=0.03,
        token_swap_rate=0.01,
        abbreviation_rate=0.03,
        extra_token_rate=0.01,
        missing_rate=0.01,
        numeric_jitter=0.0,
        numeric_missing_rate=0.0,
    )

    def sample_entity(self, rng: np.random.Generator) -> dict[str, object]:
        n_words = int(rng.integers(1, 4))
        name_words = [
            str(rng.choice(wordlists.RESTAURANT_WORDS)) for _ in range(n_words)
        ]
        suffix = str(
            rng.choice(["restaurant", "grill", "cafe", "bistro", "kitchen", ""])
        )
        name = " ".join(w for w in name_words + [suffix] if w)
        number = int(rng.integers(1, 9999))
        street = str(rng.choice(wordlists.STREET_NAMES))
        city = str(rng.choice(wordlists.CITIES))
        area = int(rng.integers(201, 989))
        exchange = int(rng.integers(200, 999))
        line = int(rng.integers(0, 10000))
        phone = f"{area}-{exchange}-{line:04d}"
        cuisine = str(rng.choice(wordlists.CUISINES))
        return {
            "name": name,
            "addr": f"{number} {street}",
            "city": city,
            "phone": phone,
            "type": cuisine,
        }

    def make_sibling(
        self, entity: dict[str, object], rng: np.random.Generator
    ) -> dict[str, object]:
        """A different restaurant in the same city with the same cuisine."""
        sibling = self.sample_entity(rng)
        sibling["city"] = entity["city"]
        sibling["type"] = entity["type"]
        if rng.random() < 0.3:  # Same street, different number.
            street = str(entity["addr"]).split(" ", 1)
            own_number = str(sibling["addr"]).split(" ", 1)[0]
            if len(street) == 2:
                sibling["addr"] = f"{own_number} {street[1]}"
        return sibling

    def render_pair(
        self,
        entity: dict[str, object],
        rng: np.random.Generator,
        match_noise_scale: float = 1.0,
    ) -> tuple[dict[str, object], dict[str, object]]:
        left, right = super().render_pair(entity, rng, match_noise_scale)
        # Zagat renders phones with slashes and Fodors with dashes.
        right["phone"] = str(right["phone"]).replace("-", "/")
        if rng.random() < 0.2:  # Occasional cuisine granularity mismatch.
            right["type"] = str(rng.choice(wordlists.CUISINES))
        return left, right
