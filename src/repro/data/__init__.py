"""Dataset substrate: schemas, synthetic Magellan-style benchmarks, splits.

The paper evaluates on 12 dataset pairs from the Magellan benchmark
(Table 1). Those datasets are not redistributable here, so this package
generates seeded synthetic equivalents with the same schemas, sizes, match
rates, and Structured / Textual / Dirty typology — see DESIGN.md §2 for the
substitution rationale.
"""

from repro.data.benchmark import (
    DATASET_NAMES,
    DatasetSpec,
    dataset_spec,
    dataset_statistics,
    load_dataset,
)
from repro.data.blocking import (
    Blocker,
    MinHashBlocker,
    SortedNeighborhoodBlocker,
    TokenBlocker,
    blocking_quality,
    cluster_matches,
    make_candidate_dataset,
)
from repro.data.io import load_csv, save_csv
from repro.data.profiling import (
    AttributeProfile,
    DatasetProfile,
    profile_dataset,
)
from repro.data.schema import (
    Attribute,
    AttributeKind,
    EMDataset,
    PairRecord,
    Schema,
)
from repro.data.splits import DatasetSplits, split_dataset

__all__ = [
    "Attribute",
    "AttributeKind",
    "AttributeProfile",
    "Blocker",
    "DATASET_NAMES",
    "DatasetProfile",
    "DatasetSpec",
    "DatasetSplits",
    "EMDataset",
    "MinHashBlocker",
    "PairRecord",
    "Schema",
    "SortedNeighborhoodBlocker",
    "TokenBlocker",
    "blocking_quality",
    "cluster_matches",
    "dataset_spec",
    "dataset_statistics",
    "load_csv",
    "load_dataset",
    "make_candidate_dataset",
    "profile_dataset",
    "save_csv",
    "split_dataset",
]
