"""Dataset substrate: schemas, synthetic Magellan-style benchmarks, splits.

The paper evaluates on 12 dataset pairs from the Magellan benchmark
(Table 1). Those datasets are not redistributable here, so this package
generates seeded synthetic equivalents with the same schemas, sizes, match
rates, and Structured / Textual / Dirty typology — see DESIGN.md §2 for the
substitution rationale.
"""

from repro.data.benchmark import (
    DATASET_NAMES,
    DatasetSpec,
    dataset_spec,
    dataset_statistics,
    load_dataset,
)
from repro.data.schema import (
    Attribute,
    AttributeKind,
    EMDataset,
    PairRecord,
    Schema,
)
from repro.data.splits import DatasetSplits, split_dataset

__all__ = [
    "Attribute",
    "AttributeKind",
    "DATASET_NAMES",
    "DatasetSpec",
    "DatasetSplits",
    "EMDataset",
    "PairRecord",
    "Schema",
    "dataset_spec",
    "dataset_statistics",
    "load_dataset",
    "split_dataset",
]
