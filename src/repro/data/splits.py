"""Train / validation / test splitting for EM datasets.

The paper splits every benchmark dataset 60-20-20 with stratification on
the match label (the Magellan splits are stratified). Splits are
deterministic given the dataset name and seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import SPLIT_PROPORTIONS, rng_for
from repro.data.schema import EMDataset
from repro.exceptions import DataError

__all__ = ["DatasetSplits", "split_dataset"]


@dataclass(frozen=True)
class DatasetSplits:
    """The three partitions of a benchmark dataset."""

    train: EMDataset
    valid: EMDataset
    test: EMDataset

    def __iter__(self):
        return iter((self.train, self.valid, self.test))

    @property
    def sizes(self) -> tuple[int, int, int]:
        return (len(self.train), len(self.valid), len(self.test))


def split_dataset(
    dataset: EMDataset,
    proportions: tuple[float, float, float] = SPLIT_PROPORTIONS,
    seed: int | None = None,
) -> DatasetSplits:
    """Stratified 60-20-20 split of ``dataset``.

    Stratification keeps the match rate of each partition close to the
    dataset's global match rate, mirroring the Magellan benchmark splits.

    Parameters
    ----------
    dataset:
        The dataset to split.
    proportions:
        Train / valid / test fractions; must sum to 1.
    seed:
        Optional seed override; by default the split is derived from the
        dataset name so reloading a benchmark always yields the same split.
    """
    if abs(sum(proportions) - 1.0) > 1e-9:
        raise DataError(f"split proportions must sum to 1, got {proportions}")
    if len(dataset) < 5:
        raise DataError(f"dataset too small to split: {len(dataset)} pairs")

    rng = rng_for("split", dataset.name, seed=seed)
    labels = dataset.labels
    train_idx: list[int] = []
    valid_idx: list[int] = []
    test_idx: list[int] = []
    for label in (0, 1):
        class_indices = np.flatnonzero(labels == label)
        rng.shuffle(class_indices)
        n = len(class_indices)
        n_train = int(round(proportions[0] * n))
        n_valid = int(round(proportions[1] * n))
        train_idx.extend(class_indices[:n_train].tolist())
        valid_idx.extend(class_indices[n_train : n_train + n_valid].tolist())
        test_idx.extend(class_indices[n_train + n_valid :].tolist())

    # Keep original ordering inside each partition for reproducibility of
    # downstream batch iteration.
    train_idx.sort()
    valid_idx.sort()
    test_idx.sort()
    return DatasetSplits(
        train=dataset.subset(train_idx, name_suffix="/train"),
        valid=dataset.subset(valid_idx, name_suffix="/valid"),
        test=dataset.subset(test_idx, name_suffix="/test"),
    )
