"""Dirty-dataset corruption (the Magellan "Dirty" variants).

The Dirty datasets of the Magellan benchmark (D-IA, D-DA, D-DG, D-WA) were
produced from their Structured counterparts by *moving attribute values
into the wrong column*: with some probability, a value is removed from its
own attribute and appended to the ``title`` (or first) attribute of the
same record. This transform defeats attribute-aligned comparison while
leaving the bag of tokens of each record intact — exactly the property the
paper exploits when showing hybrid tokenization recovers performance on
dirty data.

:func:`make_dirty` applies the same transform to our synthetic datasets.
"""

from __future__ import annotations

import numpy as np

from repro.config import rng_for
from repro.data.schema import AttributeKind, EMDataset, PairRecord

__all__ = ["make_dirty"]

#: Probability that any given non-anchor attribute value is displaced,
#: matching the published procedure for the Magellan dirty variants.
DEFAULT_MOVE_PROBABILITY = 0.5


def _dirty_entity(
    entity: dict[str, object],
    anchor: str,
    movable: tuple[str, ...],
    move_probability: float,
    rng: np.random.Generator,
) -> dict[str, object]:
    """Move attribute values of one entity into the anchor attribute."""
    result = dict(entity)
    appended: list[str] = []
    for attr_name in movable:
        value = result[attr_name]
        if value in (None, ""):
            continue
        if rng.random() < move_probability:
            appended.append(str(value))
            result[attr_name] = ""
    if appended:
        anchor_value = str(result[anchor])
        pieces = [anchor_value] if anchor_value else []
        result[anchor] = " ".join(pieces + appended)
    return result


def make_dirty(
    dataset: EMDataset,
    move_probability: float = DEFAULT_MOVE_PROBABILITY,
    rng: np.random.Generator | None = None,
    name: str | None = None,
) -> EMDataset:
    """Produce the Dirty variant of a structured dataset.

    Text/categorical attribute values (except the first attribute, the
    anchor) are independently moved into the anchor attribute with
    probability ``move_probability`` on each side of each pair. Numeric
    attributes are stringified when moved, exactly as in the published
    dirty benchmark where prices and years end up inside titles.

    Parameters
    ----------
    dataset:
        The structured source dataset (left untouched).
    move_probability:
        Per-attribute displacement probability.
    rng:
        Randomness source; required for reproducible output.
    name:
        Name of the new dataset, defaulting to ``"D-" + source suffix``.
    """
    if rng is None:
        rng = rng_for("corruption", dataset.name, move_probability)
    schema = dataset.schema
    anchor = schema.attributes[0].name
    movable = tuple(a.name for a in schema.attributes[1:])

    dirty_pairs: list[PairRecord] = []
    for pair in dataset.pairs:
        left = _dirty_entity(pair.left, anchor, movable, move_probability, rng)
        right = _dirty_entity(pair.right, anchor, movable, move_probability, rng)
        # Displaced numeric attributes become empty strings in their own
        # column; normalise those to None so the schema stays consistent.
        for attr in schema.attributes:
            if attr.kind is AttributeKind.NUMERIC:
                if left[attr.name] == "":
                    left[attr.name] = None
                if right[attr.name] == "":
                    right[attr.name] = None
        dirty_pairs.append(PairRecord(pair.pair_id, left, right, pair.label))

    new_name = name if name is not None else "D-" + dataset.name.split("-", 1)[-1]
    return EMDataset(new_name, schema, dirty_pairs, dataset_type="Dirty")
