"""The benchmark registry: 12 synthetic Magellan-style datasets (Table 1).

Every dataset of the paper's Table 1 is reproduced with the same name,
entity schema, pair count, match percentage and Structured / Textual /
Dirty type. Per-dataset difficulty knobs (match-noise scale and hard
negative fraction) are calibrated so the relative hardness ordering the
paper reports — DBLP-ACM and Fodors-Zagats easy, product datasets hard —
holds on the synthetic substrate.

Dirty variants (D-*) are derived from their structured counterparts with
:func:`repro.data.corruption.make_dirty`, matching how the Magellan dirty
datasets were produced.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import rng_for
from repro.data.corruption import make_dirty
from repro.data.generators import (
    BeerGenerator,
    BibliographicGenerator,
    DomainGenerator,
    MusicGenerator,
    RestaurantGenerator,
    RetailProductGenerator,
    SoftwareProductGenerator,
    TextualProductGenerator,
    generate_pairs,
)
from repro.data.schema import EMDataset
from repro.exceptions import UnknownDatasetError

__all__ = [
    "DatasetSpec",
    "DATASET_NAMES",
    "dataset_spec",
    "load_dataset",
    "dataset_statistics",
]


@dataclass(frozen=True)
class DatasetSpec:
    """Registry entry describing one benchmark dataset.

    ``size`` and ``match_percent`` replicate Table 1. ``noise_scale`` and
    ``hard_negative_fraction`` are the calibrated difficulty knobs;
    ``base`` names the structured dataset a Dirty variant derives from.
    """

    name: str
    source_pair: str
    dataset_type: str
    size: int
    match_percent: float
    noise_scale: float = 1.0
    hard_negative_fraction: float = 0.5
    base: str | None = None

    def make_generator(self) -> DomainGenerator:
        """Instantiate the domain generator for this dataset."""
        factory = _GENERATOR_FACTORIES[self.name if self.base is None else self.base]
        return factory()


_GENERATOR_FACTORIES = {
    "S-DG": lambda: BibliographicGenerator(venue_mismatch=True),
    "S-DA": lambda: BibliographicGenerator(venue_mismatch=False),
    "S-AG": SoftwareProductGenerator,
    "S-WA": RetailProductGenerator,
    "S-BR": BeerGenerator,
    "S-IA": MusicGenerator,
    "S-FZ": RestaurantGenerator,
    "T-AB": TextualProductGenerator,
}

#: The 12 datasets of Table 1, in the paper's order.
_SPECS: tuple[DatasetSpec, ...] = (
    DatasetSpec("S-DG", "DBLP-GoogleScholar", "Structured", 28707, 18.63,
                noise_scale=0.75, hard_negative_fraction=0.55),
    DatasetSpec("S-DA", "DBLP-ACM", "Structured", 12363, 17.96,
                noise_scale=0.30, hard_negative_fraction=0.40),
    DatasetSpec("S-AG", "Amazon-Google", "Structured", 11460, 10.18,
                noise_scale=1.20, hard_negative_fraction=0.70),
    DatasetSpec("S-WA", "Walmart-Amazon", "Structured", 10242, 9.39,
                noise_scale=1.70, hard_negative_fraction=0.80),
    DatasetSpec("S-BR", "BeerAdvo-RateBeer", "Structured", 450, 15.11,
                noise_scale=1.80, hard_negative_fraction=0.70),
    DatasetSpec("S-IA", "iTunes-Amazon", "Structured", 539, 24.49,
                noise_scale=1.00, hard_negative_fraction=0.60),
    DatasetSpec("S-FZ", "Fodors-Zagats", "Structured", 946, 11.63,
                noise_scale=0.55, hard_negative_fraction=0.50),
    DatasetSpec("T-AB", "Abt-Buy", "Textual", 9575, 10.74,
                noise_scale=1.25, hard_negative_fraction=0.75),
    DatasetSpec("D-IA", "iTunes-Amazon", "Dirty", 539, 24.49,
                noise_scale=1.00, hard_negative_fraction=0.60, base="S-IA"),
    DatasetSpec("D-DA", "DBLP-ACM", "Dirty", 12363, 17.96,
                noise_scale=0.30, hard_negative_fraction=0.40, base="S-DA"),
    DatasetSpec("D-DG", "DBLP-GoogleScholar", "Dirty", 28707, 18.63,
                noise_scale=0.75, hard_negative_fraction=0.55, base="S-DG"),
    DatasetSpec("D-WA", "Walmart-Amazon", "Dirty", 10242, 9.39,
                noise_scale=1.70, hard_negative_fraction=0.80, base="S-WA"),
)

_REGISTRY: dict[str, DatasetSpec] = {spec.name: spec for spec in _SPECS}

#: All 12 benchmark names in Table 1 order.
DATASET_NAMES: tuple[str, ...] = tuple(spec.name for spec in _SPECS)

#: Minimum generated size: small datasets (S-BR, S-IA, S-FZ) always run at
#: (near) full size — they are cheap — so reduced scales stay meaningful.
_MIN_SIZE = 450


def dataset_spec(name: str) -> DatasetSpec:
    """Look up the registry entry for ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownDatasetError(
            f"unknown dataset {name!r}; known: {', '.join(DATASET_NAMES)}"
        ) from None


def load_dataset(
    name: str, scale: float = 1.0, seed: int | None = None
) -> EMDataset:
    """Generate benchmark dataset ``name`` at the given scale.

    ``scale=1.0`` reproduces the exact Table 1 pair counts. The same name,
    scale and seed always produce the identical dataset; a Dirty variant is
    generated from the same underlying pairs as its structured counterpart,
    then corrupted.
    """
    spec = dataset_spec(name)
    if not 0.0 < scale <= 1.0:
        raise UnknownDatasetError(
            f"scale must be in (0, 1], got {scale}"
        )
    size = max(_MIN_SIZE, int(round(spec.size * scale)))

    base_name = spec.base if spec.base is not None else spec.name
    base_spec = dataset_spec(base_name)
    rng = rng_for("dataset", base_name, size, seed=seed)
    generator = spec.make_generator()
    structured = generate_pairs(
        generator,
        size=size,
        match_fraction=base_spec.match_percent / 100.0,
        rng=rng,
        hard_negative_fraction=base_spec.hard_negative_fraction,
        match_noise_scale=base_spec.noise_scale,
        name=base_name,
        dataset_type=base_spec.dataset_type,
    )
    if spec.base is None:
        return structured
    dirty_rng = rng_for("dirty", spec.name, size, seed=seed)
    return make_dirty(structured, rng=dirty_rng, name=spec.name)


def dataset_statistics(
    scale: float = 1.0, generate: bool = False, seed: int | None = None
) -> list[dict[str, object]]:
    """Rows of Table 1: per-dataset type, source pair, size and match %.

    With ``generate=False`` (default) the registry's nominal numbers are
    reported, which *are* Table 1. With ``generate=True`` each dataset is
    generated at ``scale`` and measured, verifying that the generator
    realises the registered statistics.
    """
    rows: list[dict[str, object]] = []
    for spec in _SPECS:
        if generate:
            dataset = load_dataset(spec.name, scale=scale, seed=seed)
            size = len(dataset)
            match_percent = 100.0 * dataset.match_fraction
        else:
            size = max(_MIN_SIZE, int(round(spec.size * scale)))
            match_percent = spec.match_percent
        rows.append(
            {
                "dataset": spec.name,
                "type": spec.dataset_type,
                "datasets": spec.source_pair,
                "size": size,
                "match_percent": round(match_percent, 2),
            }
        )
    return rows
