"""CSV serialization of EM datasets (Magellan pair-table format).

The Magellan benchmark ships each dataset as a CSV whose columns are
``id, label, left_<attr>..., right_<attr>...``. This module round-trips
:class:`~repro.data.schema.EMDataset` objects through that format so
generated benchmarks can be exported for external tools and re-imported.
"""

from __future__ import annotations

import csv
import os
import tempfile
from pathlib import Path

from repro import faults
from repro.data.schema import (
    Attribute,
    AttributeKind,
    EMDataset,
    PairRecord,
    Schema,
)
from repro.exceptions import DataError

__all__ = ["save_csv", "load_csv"]

_KIND_TAGS = {
    AttributeKind.TEXT: "text",
    AttributeKind.NUMERIC: "numeric",
    AttributeKind.CATEGORICAL: "categorical",
}
_TAG_KINDS = {tag: kind for kind, tag in _KIND_TAGS.items()}


def save_csv(dataset: EMDataset, path: str | Path) -> Path:
    """Write ``dataset`` to ``path`` in Magellan pair-table CSV format.

    A header comment row (starting ``#schema``) records the schema name,
    dataset type, and attribute kinds so :func:`load_csv` can reconstruct
    the dataset losslessly.

    The write is an atomic ``data.csv.store`` fault seam (temp file +
    rename under :func:`repro.faults.io_retry`): a crash mid-export can
    never truncate a previously exported good copy.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    attrs = dataset.schema.attributes
    meta = [
        "#schema",
        dataset.schema.name,
        dataset.dataset_type,
        dataset.name,
    ] + [f"{a.name}:{_KIND_TAGS[a.kind]}" for a in attrs]
    header = (
        ["id", "label"]
        + [f"left_{a.name}" for a in attrs]
        + [f"right_{a.name}" for a in attrs]
    )

    def _write() -> None:
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, suffix=".tmp", prefix=path.stem
        )
        try:
            with os.fdopen(fd, "w", newline="", encoding="utf-8") as handle:
                faults.checkpoint("data.csv.store.write", path=str(path))
                writer = csv.writer(handle)
                writer.writerow(meta)
                writer.writerow(header)
                for pair in dataset.pairs:
                    row: list[str] = [str(pair.pair_id), str(pair.label)]
                    for side in (pair.left, pair.right):
                        for attr in attrs:
                            value = side[attr.name]
                            row.append("" if value is None else str(value))
                    writer.writerow(row)
            faults.checkpoint("data.csv.store.replace", path=str(path))
            os.replace(tmp_name, path)
        finally:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)

    faults.io_retry(_write, "data.csv.store")
    return path


def load_csv(path: str | Path) -> EMDataset:
    """Reconstruct an :class:`EMDataset` written by :func:`save_csv`.

    Raises :class:`~repro.exceptions.DataError` for truncated, garbage,
    or schema-mismatched files (the ``data.csv.read`` corruption seam).
    """
    path = Path(path)
    faults.checkpoint("data.csv.read", path=str(path))
    try:
        with path.open("r", newline="", encoding="utf-8") as handle:
            return _parse_rows(path, csv.reader(handle))
    except (UnicodeDecodeError, csv.Error) as exc:
        # Undecodable or structurally broken bytes settle into a typed
        # DataError the caller can act on — that is the recovery.
        faults.mark_recovered("data.csv.read", path=str(path))
        raise DataError(f"{path}: corrupt CSV payload: {exc}") from exc


def _parse_rows(path: Path, reader) -> EMDataset:
    try:
        meta = next(reader)
        header = next(reader)
    except StopIteration:
        raise DataError(f"{path}: file truncated") from None
    if not meta or meta[0] != "#schema":
        raise DataError(f"{path}: missing #schema header row")
    schema_name, dataset_type, dataset_name = meta[1], meta[2], meta[3]
    attrs: list[Attribute] = []
    for spec in meta[4:]:
        attr_name, _sep, tag = spec.partition(":")
        if tag not in _TAG_KINDS:
            raise DataError(f"{path}: unknown attribute kind tag {tag!r}")
        attrs.append(Attribute(attr_name, _TAG_KINDS[tag]))
    schema = Schema(schema_name, tuple(attrs))

    expected_header = (
        ["id", "label"]
        + [f"left_{a.name}" for a in attrs]
        + [f"right_{a.name}" for a in attrs]
    )
    if header != expected_header:
        raise DataError(f"{path}: header does not match schema row")

    pairs: list[PairRecord] = []
    for row in reader:
        if not row:
            continue
        if len(row) != len(expected_header):
            raise DataError(
                f"{path}: row {row[0]!r} has {len(row)} fields, "
                f"expected {len(expected_header)}"
            )
        pair_id = int(row[0])
        label = int(row[1])
        left: dict[str, object] = {}
        right: dict[str, object] = {}
        offset = 2
        for target in (left, right):
            for attr in attrs:
                raw = row[offset]
                offset += 1
                target[attr.name] = _parse_value(raw, attr.kind)
        pairs.append(PairRecord(pair_id, left, right, label))

    return EMDataset(dataset_name, schema, pairs, dataset_type=dataset_type)


def _parse_value(raw: str, kind: AttributeKind) -> object:
    if kind is AttributeKind.NUMERIC:
        if raw == "":
            return None
        return float(raw)
    return raw
