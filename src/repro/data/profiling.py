"""Dataset profiling: the statistics an AutoML meta-learner consumes.

Profiles one :class:`~repro.data.schema.EMDataset` into per-attribute and
global statistics — value cardinality, missing rates, token counts,
cross-side overlap by label. Besides being generally useful for users
inspecting a new matching task, the profile quantifies the two dataset
properties the paper identifies as what breaks generic AutoML: the
pair-of-entities format (cross-side overlap gap) and class imbalance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.schema import AttributeKind, EMDataset
from repro.text.similarity import jaccard
from repro.text.tokenization import BasicTokenizer

__all__ = ["AttributeProfile", "DatasetProfile", "profile_dataset"]


@dataclass(frozen=True)
class AttributeProfile:
    """Statistics of one attribute across both sides of all pairs."""

    name: str
    kind: str
    missing_rate: float
    distinct_values: int
    mean_tokens: float
    overlap_match: float  # Mean cross-side Jaccard on matching pairs.
    overlap_nonmatch: float  # ... and on non-matching pairs.

    @property
    def overlap_gap(self) -> float:
        """How discriminative the attribute is for matching."""
        return self.overlap_match - self.overlap_nonmatch


@dataclass(frozen=True)
class DatasetProfile:
    """Global + per-attribute statistics of an EM dataset."""

    name: str
    n_pairs: int
    match_fraction: float
    imbalance_ratio: float  # Negatives per positive.
    attributes: tuple[AttributeProfile, ...] = field(default_factory=tuple)

    def most_discriminative(self) -> AttributeProfile:
        """The attribute with the largest match/non-match overlap gap."""
        return max(self.attributes, key=lambda a: a.overlap_gap)

    def summary(self) -> str:
        """Compact human-readable rendering."""
        lines = [
            f"{self.name}: {self.n_pairs} pairs, "
            f"{100 * self.match_fraction:.1f}% matches "
            f"(1:{self.imbalance_ratio:.1f} imbalance)"
        ]
        for attr in self.attributes:
            lines.append(
                f"  {attr.name:16s} [{attr.kind:11s}] "
                f"missing {100 * attr.missing_rate:4.1f}%  "
                f"distinct {attr.distinct_values:5d}  "
                f"overlap match/non {attr.overlap_match:.2f}/"
                f"{attr.overlap_nonmatch:.2f}"
            )
        return "\n".join(lines)


def profile_dataset(dataset: EMDataset, max_pairs: int = 2000) -> DatasetProfile:
    """Profile ``dataset`` (subsampled to ``max_pairs`` for speed)."""
    tokenizer = BasicTokenizer()
    pairs = dataset.pairs[:max_pairs]
    labels = np.array([p.label for p in pairs])
    n_pos = max(1, int(labels.sum()))
    n_neg = max(1, len(labels) - int(labels.sum()))

    profiles = []
    for attr in dataset.schema.attributes:
        values: list[str] = []
        missing = 0
        token_counts: list[int] = []
        overlap_by_label: dict[int, list[float]] = {0: [], 1: []}
        for pair in pairs:
            left = pair.text_of("left", attr.name)
            right = pair.text_of("right", attr.name)
            for value in (left, right):
                if not value:
                    missing += 1
                else:
                    values.append(value)
                    token_counts.append(len(tokenizer.tokenize(value)))
            if left and right:
                overlap_by_label[pair.label].append(
                    jaccard(
                        tokenizer.tokenize(left), tokenizer.tokenize(right)
                    )
                )
        profiles.append(
            AttributeProfile(
                name=attr.name,
                kind=attr.kind.value,
                missing_rate=missing / (2 * len(pairs)) if pairs else 0.0,
                distinct_values=len(set(values)),
                mean_tokens=float(np.mean(token_counts)) if token_counts else 0.0,
                overlap_match=(
                    float(np.mean(overlap_by_label[1]))
                    if overlap_by_label[1]
                    else 0.0
                ),
                overlap_nonmatch=(
                    float(np.mean(overlap_by_label[0]))
                    if overlap_by_label[0]
                    else 0.0
                ),
            )
        )

    return DatasetProfile(
        name=dataset.name,
        n_pairs=len(dataset),
        match_fraction=float(labels.mean()) if len(labels) else 0.0,
        imbalance_ratio=n_neg / n_pos,
        attributes=tuple(profiles),
    )


_ = AttributeKind  # Re-exported context for type readers.
