"""Schemas and records for Entity Matching datasets.

An EM dataset, as consumed by every system in the paper, is a table whose
rows each describe a *pair* of entities drawn from two source tables with
aligned schemas, plus a binary match label. This module defines that data
model:

* :class:`Attribute` / :class:`Schema` — the aligned schema of one entity.
* :class:`PairRecord` — one row: ``left`` and ``right`` attribute dicts and
  a label.
* :class:`EMDataset` — an ordered collection of pair records with schema,
  name, and dataset-type metadata, plus convenience accessors used by the
  adapters and featurizers.
"""

from __future__ import annotations

import enum
from collections.abc import Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from repro.exceptions import SchemaError

__all__ = ["AttributeKind", "Attribute", "Schema", "PairRecord", "EMDataset"]


class AttributeKind(enum.Enum):
    """Value domain of an attribute; drives featurization decisions."""

    TEXT = "text"
    NUMERIC = "numeric"
    CATEGORICAL = "categorical"


@dataclass(frozen=True)
class Attribute:
    """One column of an entity schema."""

    name: str
    kind: AttributeKind = AttributeKind.TEXT

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")


@dataclass(frozen=True)
class Schema:
    """Ordered attribute list shared by both entities of every pair."""

    name: str
    attributes: tuple[Attribute, ...]

    def __post_init__(self) -> None:
        names = [a.name for a in self.attributes]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in schema {self.name!r}")
        if not self.attributes:
            raise SchemaError(f"schema {self.name!r} has no attributes")

    @classmethod
    def of(cls, name: str, *columns: tuple[str, AttributeKind] | str) -> "Schema":
        """Build a schema from ``("col", kind)`` tuples or bare text names."""
        attrs = []
        for col in columns:
            if isinstance(col, str):
                attrs.append(Attribute(col))
            else:
                attrs.append(Attribute(col[0], col[1]))
        return cls(name, tuple(attrs))

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.attributes)

    def attribute(self, name: str) -> Attribute:
        """Look up an attribute by name."""
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise SchemaError(f"schema {self.name!r} has no attribute {name!r}")

    def text_attributes(self) -> tuple[Attribute, ...]:
        """Attributes of TEXT or CATEGORICAL kind (string-valued)."""
        return tuple(
            a for a in self.attributes if a.kind is not AttributeKind.NUMERIC
        )

    def numeric_attributes(self) -> tuple[Attribute, ...]:
        """Attributes of NUMERIC kind."""
        return tuple(a for a in self.attributes if a.kind is AttributeKind.NUMERIC)

    def validate_entity(self, entity: dict[str, object]) -> None:
        """Raise :class:`SchemaError` unless ``entity`` matches the schema."""
        expected = set(self.attribute_names)
        got = set(entity)
        if expected != got:
            missing = expected - got
            extra = got - expected
            raise SchemaError(
                f"entity does not match schema {self.name!r}: "
                f"missing={sorted(missing)} extra={sorted(extra)}"
            )

    def __len__(self) -> int:
        return len(self.attributes)


@dataclass(frozen=True)
class PairRecord:
    """One EM dataset row: a candidate pair of entity descriptions.

    ``left`` and ``right`` map attribute name to value; string values may be
    empty (missing), numeric values may be ``None`` (missing). ``label`` is
    1 for a match, 0 otherwise.
    """

    pair_id: int
    left: dict[str, object]
    right: dict[str, object]
    label: int

    def __post_init__(self) -> None:
        if self.label not in (0, 1):
            raise SchemaError(f"label must be 0 or 1, got {self.label!r}")

    def value(self, side: str, attribute: str) -> object:
        """Value of ``attribute`` on ``side`` ('left' or 'right')."""
        if side == "left":
            return self.left[attribute]
        if side == "right":
            return self.right[attribute]
        raise ValueError(f"side must be 'left' or 'right', got {side!r}")

    def text_of(self, side: str, attribute: str) -> str:
        """String rendering of a value; missing values become ''."""
        value = self.value(side, attribute)
        if value is None:
            return ""
        return str(value)


class EMDataset:
    """An ordered, labelled collection of candidate pairs.

    Parameters
    ----------
    name:
        Benchmark identifier, e.g. ``"S-DG"``.
    schema:
        The aligned entity schema.
    pairs:
        The pair records; validated against the schema on construction.
    dataset_type:
        ``"Structured"``, ``"Textual"`` or ``"Dirty"`` (Table 1 typology).
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        pairs: Sequence[PairRecord],
        dataset_type: str = "Structured",
    ) -> None:
        if dataset_type not in ("Structured", "Textual", "Dirty"):
            raise SchemaError(f"unknown dataset type {dataset_type!r}")
        for pair in pairs:
            schema.validate_entity(pair.left)
            schema.validate_entity(pair.right)
        self.name = name
        self.schema = schema
        self.dataset_type = dataset_type
        self._pairs = tuple(pairs)

    # -------------------------------------------------------------- access

    def __len__(self) -> int:
        return len(self._pairs)

    def __iter__(self) -> Iterator[PairRecord]:
        return iter(self._pairs)

    def __getitem__(self, index: int) -> PairRecord:
        return self._pairs[index]

    @property
    def pairs(self) -> tuple[PairRecord, ...]:
        return self._pairs

    @property
    def labels(self) -> np.ndarray:
        """Label vector, shape ``(len(self),)``, dtype int64."""
        return np.array([p.label for p in self._pairs], dtype=np.int64)

    @property
    def match_fraction(self) -> float:
        """Fraction of pairs labelled as matches (Table 1 '% Match')."""
        if not self._pairs:
            return 0.0
        return float(self.labels.mean())

    def subset(self, indices: Sequence[int], name_suffix: str = "") -> "EMDataset":
        """A new dataset containing the pairs at ``indices`` (in order)."""
        selected = [self._pairs[i] for i in indices]
        return EMDataset(
            self.name + name_suffix, self.schema, selected, self.dataset_type
        )

    def entity_texts(self, side: str) -> list[str]:
        """Denormalized text of every entity on one side (corpus building)."""
        texts = []
        for pair in self._pairs:
            parts = [
                pair.text_of(side, attr.name) for attr in self.schema.attributes
            ]
            texts.append(" ".join(part for part in parts if part))
        return texts

    def corpus(self) -> list[str]:
        """All entity texts from both sides, left side first."""
        return self.entity_texts("left") + self.entity_texts("right")

    def __repr__(self) -> str:
        return (
            f"EMDataset(name={self.name!r}, type={self.dataset_type!r}, "
            f"pairs={len(self)}, match%={100 * self.match_fraction:.2f})"
        )
