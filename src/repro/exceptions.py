"""Exception hierarchy for the ``repro`` library.

All library errors derive from :class:`ReproError` so callers can catch a
single base class. Subclasses are grouped by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """An invalid parameter or combination of parameters was supplied."""


class DataError(ReproError):
    """A dataset is malformed, inconsistent, or could not be generated."""


class SchemaError(DataError):
    """A record does not conform to the schema of its table or dataset."""


class NotFittedError(ReproError):
    """A model or transformer was used before :meth:`fit` was called."""


class BudgetExhaustedError(ReproError):
    """The (simulated) training-time budget was consumed.

    AutoML loops catch this internally to stop the search; it only escapes
    to the caller when even a single configuration could not be evaluated.
    """


class SearchSpaceError(ConfigurationError):
    """A hyper-parameter configuration is outside its declared space."""


class UnknownDatasetError(DataError):
    """The benchmark registry has no dataset with the requested name."""


class UnknownModelError(ConfigurationError):
    """A registry lookup (embedder, tokenizer, AutoML system) failed."""
