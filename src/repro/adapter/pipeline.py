"""The EM adapter pipeline: Tokenizer -> Embedder -> Combiner.

:class:`EMAdapter` is the component the paper introduces — it transforms
an EM dataset (records describing *pairs* of entities) into a dense
numeric matrix an off-the-shelf AutoML system can learn from.

Because the experiment grid re-embeds the same dataset under many
(tokenizer, embedder) combinations and across several tables, transformed
matrices are memoized in a process-level cache keyed by dataset identity
and adapter configuration.
"""

from __future__ import annotations

import numpy as np

import os
from pathlib import Path

from repro import faults, telemetry
from repro.adapter.combiner import Combiner, MeanCombiner, make_combiner
from repro.adapter.embedder import TransformerEmbedder
from repro.adapter.entity_store import ByteBudgetLRU, entity_store
from repro.adapter.tokenizer import PairTokenizer, make_tokenizer
from repro.data.schema import EMDataset

__all__ = ["EMAdapter", "clear_adapter_cache"]


def _new_cache() -> ByteBudgetLRU:
    from repro.config import adapter_cache_budget_bytes

    return ByteBudgetLRU(adapter_cache_budget_bytes, "adapter.cache")


#: Process-level matrix memo, LRU-bounded by ``REPRO_ADAPTER_CACHE_MB``
#: so a full experiment grid cannot pin every transformed matrix at
#: once. Eviction only changes residency: every entry is recomputable
#: (or re-readable from disk) byte-identically.
_CACHE: ByteBudgetLRU = _new_cache()


def clear_adapter_cache() -> None:
    """Drop all memoized adapter outputs (fresh workers, tests).

    Rebinds rather than ``.clear()``s so the fork-safety analysis
    (FORK001) can see the re-initialization as a ``global`` assignment.
    """
    global _CACHE
    _CACHE = _new_cache()


def _disk_cache_dir() -> Path | None:
    """Directory for persisted adapter matrices; shared across processes.

    Enabled whenever the experiment result cache is (same env knob,
    ``REPRO_CACHE_DIR`` via :func:`repro.config.cache_root`); disabled
    with ``REPRO_CACHE_DIR=off``.
    """
    from repro.config import cache_root

    root = cache_root()
    if root is None:
        return None
    return root / "adapter"


class EMAdapter:
    """Pipelines the three adapter components of the paper's Section 4.

    Parameters
    ----------
    tokenizer:
        A :class:`PairTokenizer` instance or mode name
        (``"unstructured"`` / ``"attr"`` / ``"hybrid"``).
    embedder:
        A :class:`TransformerEmbedder` instance or architecture name
        (``"bert"`` / ``"dbert"`` / ``"albert"`` / ``"roberta"`` /
        ``"xlnet"``).
    combiner:
        A :class:`Combiner` instance or name (``"mean"`` / ``"concat"``).
        The paper's standard is the mean.
    cache:
        Memoize transformed matrices per (dataset, adapter config).
    entity_cache:
        Serve per-entity and per-couple embeddings from the
        content-addressed :class:`~repro.adapter.entity_store.EntityStore`
        (only effective for embedders that declare
        ``supports_entity_store``). Defaults to following ``cache``, so
        ``cache=False`` still measures a fully cold transform.
    """

    def __init__(
        self,
        tokenizer: PairTokenizer | str = "hybrid",
        embedder: TransformerEmbedder | str = "albert",
        combiner: Combiner | str = "mean",
        cache: bool = True,
        entity_cache: bool | None = None,
    ) -> None:
        self.tokenizer = (
            make_tokenizer(tokenizer) if isinstance(tokenizer, str) else tokenizer
        )
        self.embedder = (
            TransformerEmbedder(embedder) if isinstance(embedder, str) else embedder
        )
        self.combiner = (
            make_combiner(combiner) if isinstance(combiner, str) else combiner
        )
        self.cache = cache
        self.entity_cache = cache if entity_cache is None else entity_cache

    @property
    def name(self) -> str:
        """Stable identifier, e.g. ``hybrid+albert/first_last+mean``."""
        return (
            f"{self.tokenizer.name}+{self.embedder.name}+{self.combiner.name}"
        )

    def output_dim(self, dataset: EMDataset) -> int:
        """Feature count produced for ``dataset``."""
        per_sequence = self.embedder.output_dim
        if isinstance(self.combiner, MeanCombiner):
            return per_sequence
        return per_sequence * self.tokenizer.sequence_count(dataset.schema)

    def transform(self, dataset: EMDataset) -> np.ndarray:
        """Encode every pair of ``dataset`` into one feature row.

        The adapter is stateless (frozen embedder, closed-form combiner),
        so there is no ``fit``: train/valid/test splits are transformed
        independently with identical results.
        """
        from repro.config import DATA_VERSION, ENCODE_VERSION, stable_digest

        with telemetry.span(
            "adapter.transform",
            adapter=self.name,
            dataset=dataset.name,
            pairs=len(dataset),
        ) as root:
            # The pair-id fingerprint keeps two different same-length
            # subsets of one dataset (e.g. active-learning rounds) from
            # colliding; 64-bit so the disk cache stays collision-free
            # across many thousands of distinct subsets. Both calibration
            # versions are part of the key (memory *and* disk), so a
            # process that upgrades data generation or the encode
            # discipline mid-run can never serve stale matrices.
            fingerprint = stable_digest(tuple(p.pair_id for p in dataset))
            key = (
                DATA_VERSION,
                ENCODE_VERSION,
                dataset.name,
                len(dataset),
                dataset.dataset_type,
                fingerprint,
                self.name,
            )
            if self.cache:
                features = _CACHE.get(key)
                if features is not None:
                    root.set(cache="memory")
                    return features
            disk_dir = _disk_cache_dir() if self.cache else None
            disk_path = None
            if disk_dir is not None:
                # Digest-named files: raw key parts joined with "_" could
                # collide once separators are substituted (dataset names
                # "a/b" and "a-b" both became "a-b") and could smuggle
                # filesystem-hostile characters. Legacy "v<N>_*"-named
                # files from older releases are simply never referenced —
                # they encode pre-ENCODE_VERSION bits, so ignoring them
                # *is* the migration.
                disk_path = disk_dir / f"{stable_digest(*key):016x}.npy"
                if disk_path.exists():
                    faults.checkpoint("adapter.cache.read", path=str(disk_path))
                    try:
                        features = np.load(disk_path)
                    except (OSError, ValueError, EOFError):
                        # Half-written, truncated, or garbage file
                        # (np.load raises EOFError for a zero-byte
                        # entry): unlink it so nothing re-reads the bad
                        # bytes, then recompute and overwrite. Counted
                        # apart from plain misses so a concurrent run's
                        # interference is visible.
                        features = None
                        telemetry.counter("adapter.cache.disk.corrupt").inc()
                        try:
                            os.unlink(disk_path)
                        except OSError:
                            pass  # Already replaced by a healthy writer.
                        faults.mark_recovered(
                            "adapter.cache.read", path=str(disk_path)
                        )
                    if features is not None:
                        telemetry.counter("adapter.cache.disk.hits").inc()
                        root.set(cache="disk")
                        _CACHE.put(key, features, features.nbytes)
                        return features
                else:
                    telemetry.counter("adapter.cache.disk.misses").inc()

            n_sequences = self.tokenizer.sequence_count(dataset.schema)
            # Tokenize each pair once, then transpose to per-position
            # batches so each embed batch holds sequences of similar
            # length (position i sequences share structure). Tokenizing
            # inside the position loop would redo the same work
            # n_sequences times (PERF002).
            with telemetry.span(
                "adapter.tokenize",
                tokenizer=self.tokenizer.name,
                positions=n_sequences,
            ):
                per_pair = [
                    self.tokenizer.sequences(pair, dataset.schema)
                    for pair in dataset
                ]
                couples_by_position = [
                    [sequences[position] for sequences in per_pair]
                    for position in range(n_sequences)
                ]
            store = (
                entity_store()
                if self.entity_cache
                and getattr(self.embedder, "supports_entity_store", False)
                else None
            )
            per_position: list[np.ndarray] = []
            for position, couples in enumerate(couples_by_position):
                with telemetry.span(
                    "adapter.embed",
                    embedder=self.embedder.name,
                    position=position,
                    sequences=len(couples),
                ):
                    if store is not None:
                        vectors = self.embedder.embed_pairs(couples, store)
                    else:
                        vectors = self.embedder.embed_pairs(couples)
                    per_position.append(vectors)
            with telemetry.span("adapter.combine", combiner=self.combiner.name):
                features = self.combiner.combine_dataset(per_position)
            return self._store_cache(key, disk_path, features)

    def _store_cache(self, key: tuple, disk_path, features: np.ndarray) -> np.ndarray:
        """Memoize a freshly computed matrix (memory, then disk).

        The disk write is atomic (write to a same-directory temp file,
        then rename), so a concurrent reader never sees a half-written
        matrix. Saving into the open descriptor keeps ``np.save`` from
        appending ``.npy`` and leaving the zero-byte mkstemp file behind,
        and the ``finally`` unlink guarantees a failed save (full disk,
        non-serializable dtype) leaks nothing; after a successful rename
        it is a no-op. Transient failures are retried with a fresh temp
        file per attempt (:func:`repro.faults.io_retry`).
        """
        if self.cache:
            _CACHE.put(key, features, features.nbytes)
            if disk_path is not None:
                import tempfile

                disk_path.parent.mkdir(parents=True, exist_ok=True)

                def _write() -> None:
                    fd, tmp_name = tempfile.mkstemp(
                        dir=disk_path.parent, suffix=".tmp", prefix=disk_path.stem
                    )
                    try:
                        with os.fdopen(fd, "wb") as handle:
                            faults.checkpoint(
                                "adapter.cache.store.write", path=str(disk_path)
                            )
                            np.save(handle, features)
                        faults.checkpoint(
                            "adapter.cache.store.replace", path=str(disk_path)
                        )
                        os.replace(tmp_name, disk_path)
                    finally:
                        if os.path.exists(tmp_name):
                            os.unlink(tmp_name)

                faults.io_retry(_write, "adapter.cache.store")
        return features

    def transform_splits(self, splits) -> tuple[np.ndarray, ...]:
        """Transform a :class:`~repro.data.splits.DatasetSplits` triple."""
        return tuple(self.transform(part) for part in splits)

    def __repr__(self) -> str:
        return f"EMAdapter({self.name})"
