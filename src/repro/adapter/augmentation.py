"""Data augmentation for class balance (the paper's future-work item 1).

Section 6 of the paper proposes "introducing data augmentation techniques
for creating more balanced training datasets for the AutoML systems".
This module implements the two natural EM-preserving augmentations and an
oversampler that combines them:

* **pair swap** — a match stays a match when left and right entities are
  exchanged (and so does a non-match);
* **attribute shuffle** — token order within one attribute value carries
  little identity information, so shuffling tokens of a random attribute
  yields a new positive example from an existing one.

``balance_dataset`` oversamples the minority (match) class with augmented
copies until a target ratio is reached. The ablation benchmark
``bench_ablations.py`` measures its effect.
"""

from __future__ import annotations

import numpy as np

from repro.config import rng_for
from repro.data.schema import EMDataset, PairRecord

__all__ = ["swap_pair", "shuffle_attribute", "balance_dataset"]


def swap_pair(pair: PairRecord, new_id: int) -> PairRecord:
    """The same candidate pair with sides exchanged (label-preserving)."""
    return PairRecord(new_id, dict(pair.right), dict(pair.left), pair.label)


def shuffle_attribute(
    pair: PairRecord,
    attribute: str,
    rng: np.random.Generator,
    new_id: int,
    side: str = "right",
) -> PairRecord:
    """Shuffle the token order of one attribute value on one side."""
    left = dict(pair.left)
    right = dict(pair.right)
    target = left if side == "left" else right
    value = target.get(attribute)
    if isinstance(value, str) and value:
        tokens = value.split()
        rng.shuffle(tokens)
        target[attribute] = " ".join(tokens)
    return PairRecord(new_id, left, right, pair.label)


def balance_dataset(
    dataset: EMDataset,
    target_match_fraction: float = 0.4,
    rng: np.random.Generator | None = None,
) -> EMDataset:
    """Oversample matches with augmented copies up to a target fraction.

    Only the *training* split should be balanced; evaluation splits must
    keep the natural imbalance, as the paper's F1 is measured on them.
    """
    if not 0.0 < target_match_fraction < 1.0:
        raise ValueError(
            f"target_match_fraction must be in (0, 1), got {target_match_fraction}"
        )
    if rng is None:
        rng = rng_for("augmentation", dataset.name, target_match_fraction)
    positives = [p for p in dataset if p.label == 1]
    n_total = len(dataset)
    n_pos = len(positives)
    if n_pos == 0 or n_pos / n_total >= target_match_fraction:
        return dataset

    # Solve (n_pos + k) / (n_total + k) = target for k.
    k = int(
        np.ceil(
            (target_match_fraction * n_total - n_pos)
            / (1.0 - target_match_fraction)
        )
    )
    text_attrs = [a.name for a in dataset.schema.text_attributes()]
    augmented: list[PairRecord] = list(dataset.pairs)
    next_id = max(p.pair_id for p in dataset) + 1
    for i in range(k):
        source = positives[int(rng.integers(0, n_pos))]
        if rng.random() < 0.5:
            new_pair = swap_pair(source, next_id)
        else:
            attribute = text_attrs[int(rng.integers(0, len(text_attrs)))]
            side = "left" if rng.random() < 0.5 else "right"
            new_pair = shuffle_attribute(source, attribute, rng, next_id, side)
        augmented.append(new_pair)
        next_id += 1

    return EMDataset(
        dataset.name + "+balanced",
        dataset.schema,
        augmented,
        dataset.dataset_type,
    )
