"""Local-embedding embedder (the paper's future-work item 2).

Section 6 proposes improving the adapter "via 'local embeddings' ...
generated taking into account the current dataset" instead of generic
pre-trained ones. This embedder implements that idea: token vectors come
from a Word2Vec model trained on the dataset's own corpus, and the
segment-comparison readout of the transformer embedder is reused without
a contextualization stage (local embeddings are static).

It is drop-in compatible with :class:`~repro.adapter.pipeline.EMAdapter`
(same ``embed_pairs`` / ``output_dim`` / ``name`` surface), so the
ablation benchmarks can swap it against the five simulated checkpoints.
"""

from __future__ import annotations

import numpy as np

from repro.adapter.tokenizer import PairSequence
from repro.data.schema import EMDataset
from repro.text.tokenization import BasicTokenizer
from repro.text.word2vec import Word2Vec

__all__ = ["LocalWord2VecEmbedder"]


def _normalize_rows(v: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(v, axis=-1, keepdims=True)
    return v / np.maximum(norms, 1e-9)


class LocalWord2VecEmbedder:
    """Pair embedder over dataset-local Word2Vec vectors."""

    def __init__(self, model: Word2Vec, corpus_name: str = "local") -> None:
        self._model = model
        self._corpus_name = corpus_name
        self._tokenizer = BasicTokenizer()

    @classmethod
    def from_dataset(
        cls, dataset: EMDataset, dim: int = 48, epochs: int = 2, seed: int = 0
    ) -> "LocalWord2VecEmbedder":
        """Train the local embeddings on a dataset's entity corpus."""
        model = Word2Vec(dim=dim, epochs=epochs, min_count=2, seed=seed)
        model.fit(dataset.corpus())
        return cls(model, corpus_name=dataset.name)

    @property
    def name(self) -> str:
        return f"local-w2v[{self._corpus_name}]"

    @property
    def output_dim(self) -> int:
        # Same readout block as one transformer layer: mean / |diff| /
        # product / cosine / distance.
        return 3 * self._model.dim + 2

    def _pool(self, text: str) -> np.ndarray:
        tokens = self._tokenizer.tokenize(text)
        if not tokens:
            return np.zeros(self._model.dim)
        # One fancy-indexed gather instead of a per-token python loop;
        # accessing ``vectors`` first preserves the NotFittedError.
        vectors = self._model.vectors
        ids = self._model.vocab.encode(tokens)
        return vectors[np.asarray(ids)].mean(axis=0)

    def embed_pairs(self, sequences: list[PairSequence]) -> np.ndarray:
        """Segment-comparison readout over local embeddings."""
        out = np.zeros((len(sequences), self.output_dim))
        for row, (left, right) in enumerate(sequences):
            pooled_left = _normalize_rows(self._pool(left))
            pooled_right = _normalize_rows(self._pool(right))
            cos = float(pooled_left @ pooled_right)
            dist = float(np.linalg.norm(pooled_left - pooled_right))
            out[row] = np.concatenate(
                [
                    (pooled_left + pooled_right) / 2.0,
                    np.abs(pooled_left - pooled_right),
                    pooled_left * pooled_right,
                    [cos, dist],
                ]
            )
        return out

    def __repr__(self) -> str:
        return f"LocalWord2VecEmbedder(dim={self._model.dim})"
