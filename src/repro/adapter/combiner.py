"""The Combiner stage of the EM adapter.

A combiner reduces the per-sequence embeddings of one record (one per
tokenizer sequence) to a single feature vector. The paper's standard
choice is the average (:class:`MeanCombiner`); :class:`ConcatCombiner` is
the natural alternative for fixed-schema datasets and is exercised by the
ablation benchmarks.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.exceptions import UnknownModelError

__all__ = ["Combiner", "MeanCombiner", "ConcatCombiner", "make_combiner"]


class Combiner(abc.ABC):
    """Reduces a ``(n_sequences, dim)`` stack to one feature vector."""

    name: str = ""

    @abc.abstractmethod
    def combine(self, embeddings: np.ndarray) -> np.ndarray:
        """Reduce one record's sequence embeddings to a single vector."""

    def combine_dataset(self, per_sequence: list[np.ndarray]) -> np.ndarray:
        """Combine a whole dataset at once.

        ``per_sequence`` holds one ``(n_records, dim)`` matrix per
        tokenizer sequence position; the result is ``(n_records, out_dim)``.
        """
        stacked = np.stack(per_sequence, axis=1)  # (records, sequences, dim)
        return np.vstack(
            [self.combine(stacked[i]) for i in range(stacked.shape[0])]
        )


class MeanCombiner(Combiner):
    """Average of the sequence embeddings (the paper's standard)."""

    name = "mean"

    def combine(self, embeddings: np.ndarray) -> np.ndarray:
        return embeddings.mean(axis=0)

    def combine_dataset(self, per_sequence: list[np.ndarray]) -> np.ndarray:
        return np.mean(per_sequence, axis=0)


class ConcatCombiner(Combiner):
    """Concatenation of the sequence embeddings (fixed-schema datasets)."""

    name = "concat"

    def combine(self, embeddings: np.ndarray) -> np.ndarray:
        return embeddings.reshape(-1)

    def combine_dataset(self, per_sequence: list[np.ndarray]) -> np.ndarray:
        return np.hstack(per_sequence)


_REGISTRY = {cls.name: cls for cls in (MeanCombiner, ConcatCombiner)}


def make_combiner(name: str) -> Combiner:
    """Instantiate a combiner by name (``mean`` or ``concat``)."""
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise UnknownModelError(
            f"unknown combiner {name!r}; known: {', '.join(_REGISTRY)}"
        ) from None
