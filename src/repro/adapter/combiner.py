"""The Combiner stage of the EM adapter.

A combiner reduces the per-sequence embeddings of one record (one per
tokenizer sequence) to a single feature vector. The paper's standard
choice is the average (:class:`MeanCombiner`); :class:`ConcatCombiner` is
the natural alternative for fixed-schema datasets and is exercised by the
ablation benchmarks.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.exceptions import UnknownModelError

__all__ = ["Combiner", "MeanCombiner", "ConcatCombiner", "make_combiner"]


class Combiner(abc.ABC):
    """Reduces a ``(n_sequences, dim)`` stack to one feature vector.

    The whole-dataset form (:meth:`combine_dataset`) is the primitive —
    it is what the adapter pipeline calls and what subclasses implement
    as a single vectorized numpy expression. The per-record
    :meth:`combine` is derived from it by treating one record as a
    one-row dataset, so the two can never drift apart.
    """

    name: str = ""

    @abc.abstractmethod
    def combine_dataset(self, per_sequence: list[np.ndarray]) -> np.ndarray:
        """Combine a whole dataset at once.

        ``per_sequence`` holds one ``(n_records, dim)`` matrix per
        tokenizer sequence position; the result is ``(n_records, out_dim)``.
        """

    def combine(self, embeddings: np.ndarray) -> np.ndarray:
        """Reduce one record's sequence embeddings to a single vector."""
        return self.combine_dataset([row[None, :] for row in embeddings])[0]


class MeanCombiner(Combiner):
    """Average of the sequence embeddings (the paper's standard)."""

    name = "mean"

    def combine_dataset(self, per_sequence: list[np.ndarray]) -> np.ndarray:
        return np.mean(per_sequence, axis=0)


class ConcatCombiner(Combiner):
    """Concatenation of the sequence embeddings (fixed-schema datasets)."""

    name = "concat"

    def combine_dataset(self, per_sequence: list[np.ndarray]) -> np.ndarray:
        return np.hstack(per_sequence)


_REGISTRY = {cls.name: cls for cls in (MeanCombiner, ConcatCombiner)}


def make_combiner(name: str) -> Combiner:
    """Instantiate a combiner by name (``mean`` or ``concat``)."""
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise UnknownModelError(
            f"unknown combiner {name!r}; known: {', '.join(_REGISTRY)}"
        ) from None
