"""Content-addressed entity-embedding store (ROADMAP item 1).

Every entity recurs in many candidate pairs, but the pre-refactor
adapter re-ran the transformer forward for each *pair*. This module is
the reuse layer under :meth:`TransformerEmbedder.embed_pairs`: arrays
derived from an entity (or a pair of entities) are stored under a
64-bit :func:`repro.config.stable_digest` of their full provenance —
``ENCODE_VERSION``, encoder identity, and the exact text — so a record
is valid wherever the same content shows up again, across datasets,
splits, processes, and parallel workers.

Two record kinds live here, both plain ``dict[str, np.ndarray]``
bundles (the store itself is agnostic):

* *half* records — the token-embedding matrix and ``[sep]`` positions
  of one entity text under one encoder;
* *sequence* records — the finished readout vector of one
  ``(left, right)`` couple under one embedder.

Tiers mirror the pair-matrix cache in :mod:`repro.adapter.pipeline`:
a byte-bounded in-memory LRU (:class:`ByteBudgetLRU`) in front of an
``.npz``-per-record disk tier under ``cache_root()/entity``. Disk
writes are atomic (mkstemp + ``os.replace``) under
:func:`repro.faults.io_retry` with ``adapter.entity.store.*``
checkpoints; reads recover from corrupt or zero-byte files by deleting
the record and recomputing (``adapter.entity.read`` seam). Every tier
transition is counted under ``adapter.entity_cache.*``.

The module-level singleton is rebound (not mutated) by
:func:`clear_entity_store`, which :func:`repro.parallel.executor._init_worker`
calls so forked workers never inherit a parent's hot cache (FORK001).
"""

from __future__ import annotations

import os
import threading
import zipfile
from collections import OrderedDict
from pathlib import Path
from typing import Callable

import numpy as np

from repro import faults, telemetry

__all__ = ["ByteBudgetLRU", "EntityStore", "clear_entity_store", "entity_store"]


class ByteBudgetLRU:
    """An LRU mapping bounded by the byte size of its values.

    Used for both the adapter matrix cache and the entity store's memory
    tier. The budget is resolved lazily through ``budget_fn`` (a
    :mod:`repro.config` reader) so each rebound instance re-reads the
    environment knob — tests and workers see the current setting, and
    the deterministic core itself never touches ``os.environ``.

    Eviction changes only *what is resident*, never what is computed:
    every entry is content-addressed and deterministic, so a re-miss
    recomputes (or re-reads from disk) byte-identical data.

    All mutations hold one per-instance lock: ``get`` reorders the
    ``OrderedDict`` and ``put`` rewrites both the dict and the resident
    byte tally, so unsynchronized callers (the serving daemon's handler
    threads share one store) could corrupt the LRU chain mid-``move_to_end``
    or mis-account ``resident_bytes``. Telemetry is reported outside the
    lock — the instruments carry their own locks.
    """

    def __init__(
        self,
        budget_fn: Callable[[], int | None],
        metric_prefix: str,
    ) -> None:
        self._budget_fn = budget_fn
        self._budget: int | None = None
        self._resolved = False
        self._prefix = metric_prefix
        self._entries: OrderedDict[object, tuple[object, int]] = OrderedDict()
        self._resident_bytes = 0
        self._lock = threading.Lock()

    @property
    def budget(self) -> int | None:
        with self._lock:
            if not self._resolved:
                self._budget = self._budget_fn()
                self._resolved = True
            return self._budget

    @property
    def resident_bytes(self) -> int:
        with self._lock:
            return self._resident_bytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: object) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: object):
        """Return the cached value (now most-recently-used) or None."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
        if entry is None:
            telemetry.counter(f"{self._prefix}.memory.misses").inc()
            return None
        telemetry.counter(f"{self._prefix}.memory.hits").inc()
        return entry[0]

    def put(self, key: object, value: object, nbytes: int) -> None:
        """Insert ``value`` and evict least-recently-used entries.

        The newest entry is never evicted — a single oversized matrix
        still gets cached (otherwise back-to-back transforms of one
        large dataset would thrash), it just pushes everything else out.
        """
        budget = self.budget  # resolve before taking the entries lock
        evictions = 0
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._resident_bytes -= old[1]
            self._entries[key] = (value, nbytes)
            self._resident_bytes += nbytes
            if budget is not None:
                while self._resident_bytes > budget and len(self._entries) > 1:
                    _evicted, (_value, size) = self._entries.popitem(last=False)
                    self._resident_bytes -= size
                    evictions += 1
            resident = self._resident_bytes
        if evictions:
            telemetry.counter(f"{self._prefix}.memory.evictions").inc(evictions)
        telemetry.gauge(f"{self._prefix}.memory.resident_bytes").set(resident)


def _bundle_nbytes(arrays: dict[str, np.ndarray]) -> int:
    return sum(a.nbytes for a in arrays.values())


class EntityStore:
    """Memory + disk tiers for content-addressed embedding records."""

    def __init__(self) -> None:
        from repro.config import entity_cache_budget_bytes

        self._memory = ByteBudgetLRU(
            entity_cache_budget_bytes, "adapter.entity_cache"
        )

    @staticmethod
    def _disk_dir() -> Path | None:
        """``cache_root()/entity``, or None when disk caching is off."""
        from repro.config import cache_root

        root = cache_root()
        if root is None:
            return None
        return root / "entity"

    def _path(self, key: int) -> Path | None:
        disk = self._disk_dir()
        if disk is None:
            return None
        return disk / f"{key:016x}.npz"

    @property
    def resident_bytes(self) -> int:
        return self._memory.resident_bytes

    def load(self, key: int) -> dict[str, np.ndarray] | None:
        """Fetch a record bundle by digest (memory first, then disk)."""
        arrays = self._memory.get(key)
        if arrays is not None:
            return arrays
        path = self._path(key)
        if path is None:
            return None
        if not path.exists():
            telemetry.counter("adapter.entity_cache.disk.misses").inc()
            return None
        faults.checkpoint("adapter.entity.read", path=str(path))
        try:
            with np.load(path) as payload:
                arrays = {name: payload[name] for name in payload.files}
        except (OSError, ValueError, EOFError, zipfile.BadZipFile):
            # Torn write, truncated zip, or garbage bytes: unlink so the
            # bad record is never re-read, then report recovery — the
            # caller recomputes from the entity text, byte-identically.
            telemetry.counter("adapter.entity_cache.disk.corrupt").inc()
            try:
                os.unlink(path)
            except OSError:
                pass  # Already replaced by a healthy writer.
            faults.mark_recovered("adapter.entity.read", path=str(path))
            return None
        telemetry.counter("adapter.entity_cache.disk.hits").inc()
        self._memory.put(key, arrays, _bundle_nbytes(arrays))
        return arrays

    def save(self, key: int, arrays: dict[str, np.ndarray]) -> None:
        """Persist a record bundle to both tiers.

        The disk write mirrors the pair-matrix cache: save into an open
        mkstemp descriptor (so ``np.savez`` cannot append a suffix and
        strand the temp file), atomically rename, retry transient
        failures with a fresh temp file (:func:`repro.faults.io_retry`).
        Concurrent writers racing on one key replace the file with
        byte-identical content, so the race is benign.
        """
        self._memory.put(key, arrays, _bundle_nbytes(arrays))
        path = self._path(key)
        if path is None:
            return
        import tempfile

        path.parent.mkdir(parents=True, exist_ok=True)

        def _write() -> None:
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, suffix=".tmp", prefix=path.stem
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    faults.checkpoint(
                        "adapter.entity.store.write", path=str(path)
                    )
                    np.savez(handle, **arrays)
                faults.checkpoint(
                    "adapter.entity.store.replace", path=str(path)
                )
                os.replace(tmp_name, path)
            finally:
                if os.path.exists(tmp_name):
                    os.unlink(tmp_name)

        faults.io_retry(_write, "adapter.entity.store")


_STORE = EntityStore()


def entity_store() -> EntityStore:
    """The process-wide store instance."""
    return _STORE


def clear_entity_store() -> None:
    """Rebind a fresh store (fresh workers, tests; FORK001-visible)."""
    global _STORE
    _STORE = EntityStore()
