"""The Embedder stage of the EM adapter.

A :class:`TransformerEmbedder` turns pair sequences into fixed-size
vectors with a frozen simulated pre-trained encoder
(:mod:`repro.transformers`). Following the paper's Section 4, the
embedding of a sequence is built from the hidden layers of the
transformer; since our checkpoints are random-weight simulations
(DESIGN.md §2), the readout is the *segment-comparison* form: the two
entities' token spans are mean-pooled separately per selected layer and
combined as ``[(p_L+p_R)/2, |p_L−p_R|, p_L⊙p_R, cos, dist]``. The
comparison itself still happens inside the transformer (cross-segment
attention aligns near-duplicate tokens); the readout is fixed and
untrained, standing in for the learned pooler of a real checkpoint.

``layers="first_last"`` (default) reads the embedding layer and the final
hidden layer; ``layers="last"`` reads only the final one; ``layers=
"last4"`` mirrors the paper's concatenation-of-last-four variant.

Since the canonical exact-length-bucketed forward
(:func:`repro.transformers.pad_length_buckets`) makes every vector a
pure function of the couple's content, :meth:`embed_pairs` deduplicates
couples within a call and can serve them from the content-addressed
:class:`~repro.adapter.entity_store.EntityStore` across calls: warm
couples skip the transformer entirely, and cold couples are assembled
from per-entity *half* records so each entity text is tokenized and
embedded once however many pairs it appears in.
"""

from __future__ import annotations

import numpy as np

from repro.adapter.entity_store import EntityStore
from repro.adapter.tokenizer import PairSequence
from repro.exceptions import UnknownModelError
from repro.transformers import (
    PretrainedEncoder,
    load_pretrained,
    pad_length_buckets,
)

__all__ = ["TransformerEmbedder"]

_LAYER_MODES = ("first_last", "last", "last4")


def _normalize_rows(v: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(v, axis=-1, keepdims=True)
    return v / np.maximum(norms, 1e-9)


class TransformerEmbedder:
    """Embeds pair sequences with a frozen pre-trained architecture.

    Parameters
    ----------
    architecture:
        One of :data:`repro.transformers.EMBEDDER_NAMES`
        (``bert``/``dbert``/``albert``/``roberta``/``xlnet``).
    layers:
        Which hidden layers feed the readout (see module docstring).
    batch_size:
        Sequences per encoder forward pass.
    """

    def __init__(
        self,
        architecture: str = "albert",
        layers: str = "first_last",
        batch_size: int = 256,
    ) -> None:
        if layers not in _LAYER_MODES:
            raise UnknownModelError(
                f"unknown layers mode {layers!r}; known: {_LAYER_MODES}"
            )
        self.architecture = architecture
        self.layers = layers
        self.batch_size = batch_size
        self._encoder: PretrainedEncoder = load_pretrained(architecture)

    @property
    def name(self) -> str:
        """Stable identifier used in cache keys and table headers."""
        return f"{self.architecture}/{self.layers}"

    @property
    def output_dim(self) -> int:
        """Feature size produced per pair sequence."""
        per_layer = 3 * self._encoder.dim + 2
        return per_layer * self._n_layers_read()

    def _n_layers_read(self) -> int:
        if self.layers == "last":
            return 1
        if self.layers == "first_last":
            return 2
        return min(4, self._encoder.spec.encoder.n_layers)

    # ------------------------------------------------------------- embed

    #: Duck-typed capability flag checked by :class:`~repro.adapter.pipeline.EMAdapter`
    #: before passing a ``store`` (alternative embedders such as
    #: :class:`~repro.adapter.local_embedder.LocalWord2VecEmbedder`
    #: keep the plain ``embed_pairs(sequences)`` signature).
    supports_entity_store = True

    def _sequence_key(self, couple: PairSequence) -> int:
        from repro.config import ENCODE_VERSION, stable_digest

        return stable_digest(
            "pair-seq", ENCODE_VERSION, self.name, couple[0], couple[1]
        )

    def _half_key(self, text: str) -> int:
        from repro.config import ENCODE_VERSION, stable_digest

        # Keyed by architecture, not layers: the token matrix depends
        # only on the tokenizer + embedding table, so bert/first_last
        # and bert/last4 share half records.
        return stable_digest(
            "entity-half", ENCODE_VERSION, self.architecture, text
        )

    def _entity_half(
        self,
        text: str,
        store: EntityStore | None,
        local: dict[str, tuple[np.ndarray, np.ndarray]],
    ) -> tuple[np.ndarray, np.ndarray]:
        """One entity's (matrix, sep_positions), via call memo and store."""
        half = local.get(text)
        if half is not None:
            return half
        if store is not None:
            record = store.load(self._half_key(text))
            if record is not None:
                half = (record["matrix"], record["sep_positions"])
                local[text] = half
                return half
        half = self._encoder.entity_half(text)
        if store is not None:
            store.save(
                self._half_key(text),
                {"matrix": half[0], "sep_positions": half[1]},
            )
        local[text] = half
        return half

    def embed_pairs(
        self,
        sequences: list[PairSequence],
        store: EntityStore | None = None,
    ) -> np.ndarray:
        """Embed ``(left, right)`` value couples, one vector per couple.

        With a ``store``, finished couple vectors are served from (and
        written back to) the entity store; cold couples are assembled
        from cached per-entity halves. Without one, the same bits are
        computed from scratch — the bucketed forward makes every vector
        content-determined, so store-on and store-off agree exactly.
        """
        out = np.zeros((len(sequences), self.output_dim))
        if not sequences:
            return out
        rows_of: dict[PairSequence, list[int]] = {}
        for row, couple in enumerate(sequences):
            rows_of.setdefault(couple, []).append(row)
        missing: list[PairSequence] = []
        for couple in rows_of:
            record = (
                store.load(self._sequence_key(couple))
                if store is not None
                else None
            )
            if record is None:
                missing.append(couple)
            else:
                out[rows_of[couple]] = record["vector"]
        if not missing:
            return out
        encoder = self._encoder
        halves: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        prepared = [
            encoder.assemble_pair(
                self._entity_half(left, store, halves),
                self._entity_half(right, store, halves),
            )
            for left, right in missing
        ]
        for chunk, stacked, mask, segments in pad_length_buckets(
            prepared, self.batch_size
        ):
            block = self._readout(stacked, mask, segments)
            for local_index, vector in zip(chunk, block):
                couple = missing[local_index]
                if store is not None:
                    # Copy: a row view would pin the whole block in the
                    # store's memory tier while only counting one row.
                    store.save(
                        self._sequence_key(couple), {"vector": vector.copy()}
                    )
                out[rows_of[couple]] = vector
        return out

    def _selected_layers(
        self, padded: np.ndarray, mask: np.ndarray, segments: np.ndarray
    ) -> list[np.ndarray]:
        if self.layers == "first_last":
            hidden = self._encoder._encoder.encode(padded, mask, segments)
            return [padded, hidden]
        all_layers = self._encoder._encoder.encode_all_layers(
            padded, mask, segments
        )
        if self.layers == "last":
            return [all_layers[-1]]
        return all_layers[-self._n_layers_read() :]

    def _readout(
        self, padded: np.ndarray, mask: np.ndarray, segments: np.ndarray
    ) -> np.ndarray:
        seg_left = mask & (segments == 0)
        seg_right = mask & (segments == 1)
        count_left = np.maximum(seg_left.sum(axis=1, keepdims=True), 1)
        count_right = np.maximum(seg_right.sum(axis=1, keepdims=True), 1)

        blocks: list[np.ndarray] = []
        for hidden in self._selected_layers(padded, mask, segments):
            pooled_left = _normalize_rows(
                (hidden * seg_left[:, :, None]).sum(axis=1) / count_left
            )
            pooled_right = _normalize_rows(
                (hidden * seg_right[:, :, None]).sum(axis=1) / count_right
            )
            cos = np.sum(pooled_left * pooled_right, axis=1, keepdims=True)
            dist = np.linalg.norm(
                pooled_left - pooled_right, axis=1, keepdims=True
            )
            blocks.append(
                np.hstack(
                    [
                        (pooled_left + pooled_right) / 2.0,
                        np.abs(pooled_left - pooled_right),
                        pooled_left * pooled_right,
                        cos,
                        dist,
                    ]
                )
            )
        return np.hstack(blocks)

    def __repr__(self) -> str:
        return (
            f"TransformerEmbedder(architecture={self.architecture!r}, "
            f"layers={self.layers!r})"
        )
