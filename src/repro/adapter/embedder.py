"""The Embedder stage of the EM adapter.

A :class:`TransformerEmbedder` turns pair sequences into fixed-size
vectors with a frozen simulated pre-trained encoder
(:mod:`repro.transformers`). Following the paper's Section 4, the
embedding of a sequence is built from the hidden layers of the
transformer; since our checkpoints are random-weight simulations
(DESIGN.md §2), the readout is the *segment-comparison* form: the two
entities' token spans are mean-pooled separately per selected layer and
combined as ``[(p_L+p_R)/2, |p_L−p_R|, p_L⊙p_R, cos, dist]``. The
comparison itself still happens inside the transformer (cross-segment
attention aligns near-duplicate tokens); the readout is fixed and
untrained, standing in for the learned pooler of a real checkpoint.

``layers="first_last"`` (default) reads the embedding layer and the final
hidden layer; ``layers="last"`` reads only the final one; ``layers=
"last4"`` mirrors the paper's concatenation-of-last-four variant.
"""

from __future__ import annotations

import numpy as np

from repro.adapter.tokenizer import PairSequence
from repro.exceptions import UnknownModelError
from repro.transformers import PretrainedEncoder, load_pretrained

__all__ = ["TransformerEmbedder"]

_LAYER_MODES = ("first_last", "last", "last4")


def _normalize_rows(v: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(v, axis=-1, keepdims=True)
    return v / np.maximum(norms, 1e-9)


class TransformerEmbedder:
    """Embeds pair sequences with a frozen pre-trained architecture.

    Parameters
    ----------
    architecture:
        One of :data:`repro.transformers.EMBEDDER_NAMES`
        (``bert``/``dbert``/``albert``/``roberta``/``xlnet``).
    layers:
        Which hidden layers feed the readout (see module docstring).
    batch_size:
        Sequences per encoder forward pass.
    """

    def __init__(
        self,
        architecture: str = "albert",
        layers: str = "first_last",
        batch_size: int = 256,
    ) -> None:
        if layers not in _LAYER_MODES:
            raise UnknownModelError(
                f"unknown layers mode {layers!r}; known: {_LAYER_MODES}"
            )
        self.architecture = architecture
        self.layers = layers
        self.batch_size = batch_size
        self._encoder: PretrainedEncoder = load_pretrained(architecture)

    @property
    def name(self) -> str:
        """Stable identifier used in cache keys and table headers."""
        return f"{self.architecture}/{self.layers}"

    @property
    def output_dim(self) -> int:
        """Feature size produced per pair sequence."""
        per_layer = 3 * self._encoder.dim + 2
        return per_layer * self._n_layers_read()

    def _n_layers_read(self) -> int:
        if self.layers == "last":
            return 1
        if self.layers == "first_last":
            return 2
        return min(4, self._encoder.spec.encoder.n_layers)

    # ------------------------------------------------------------- embed

    def embed_pairs(self, sequences: list[PairSequence]) -> np.ndarray:
        """Embed ``(left, right)`` value couples, one vector per couple."""
        encoder = self._encoder
        texts = [encoder.pair_text(left, right) for left, right in sequences]
        prepared = [encoder._sequence_matrix(text) for text in texts]
        out = np.zeros((len(texts), self.output_dim))
        order = np.argsort([len(m) for m, _s in prepared], kind="stable")
        for start in range(0, len(order), self.batch_size):
            batch_ids = order[start : start + self.batch_size]
            batch = [prepared[i] for i in batch_ids]
            max_len = max(len(m) for m, _s in batch)
            padded = np.zeros((len(batch), max_len, encoder.dim))
            mask = np.zeros((len(batch), max_len), dtype=bool)
            segments = np.zeros((len(batch), max_len), dtype=np.int64)
            for row, (matrix, seg) in enumerate(batch):
                padded[row, : len(matrix)] = matrix
                mask[row, : len(matrix)] = True
                segments[row, : len(seg)] = seg
            out[batch_ids] = self._readout(padded, mask, segments)
        return out

    def _selected_layers(
        self, padded: np.ndarray, mask: np.ndarray, segments: np.ndarray
    ) -> list[np.ndarray]:
        if self.layers == "first_last":
            hidden = self._encoder._encoder.encode(padded, mask, segments)
            return [padded, hidden]
        all_layers = self._encoder._encoder.encode_all_layers(
            padded, mask, segments
        )
        if self.layers == "last":
            return [all_layers[-1]]
        return all_layers[-self._n_layers_read() :]

    def _readout(
        self, padded: np.ndarray, mask: np.ndarray, segments: np.ndarray
    ) -> np.ndarray:
        seg_left = mask & (segments == 0)
        seg_right = mask & (segments == 1)
        count_left = np.maximum(seg_left.sum(axis=1, keepdims=True), 1)
        count_right = np.maximum(seg_right.sum(axis=1, keepdims=True), 1)

        blocks: list[np.ndarray] = []
        for hidden in self._selected_layers(padded, mask, segments):
            pooled_left = _normalize_rows(
                (hidden * seg_left[:, :, None]).sum(axis=1) / count_left
            )
            pooled_right = _normalize_rows(
                (hidden * seg_right[:, :, None]).sum(axis=1) / count_right
            )
            cos = np.sum(pooled_left * pooled_right, axis=1, keepdims=True)
            dist = np.linalg.norm(
                pooled_left - pooled_right, axis=1, keepdims=True
            )
            blocks.append(
                np.hstack(
                    [
                        (pooled_left + pooled_right) / 2.0,
                        np.abs(pooled_left - pooled_right),
                        pooled_left * pooled_right,
                        cos,
                        dist,
                    ]
                )
            )
        return np.hstack(blocks)

    def __repr__(self) -> str:
        return (
            f"TransformerEmbedder(architecture={self.architecture!r}, "
            f"layers={self.layers!r})"
        )
