"""Pair tokenization: the first stage of the EM adapter (Section 4).

A pair tokenizer maps one :class:`~repro.data.schema.PairRecord` to one or
more *pair sequences* — ``(left_text, right_text)`` string couples that
the Embedder will serialize as ``left [SEP] right``. The three modes of
the paper:

* **unstructured** — all attribute values concatenated; schema forgotten;
  one sequence per record.
* **attribute-based** — one sequence per attribute, coupling the two
  entities' values of that attribute.
* **hybrid** — incremental concatenations: the *i*-th sequence couples
  the values of the first *i* attributes, so the last sequence compares
  the entire records while earlier ones stay attribute-anchored.
"""

from __future__ import annotations

import abc

from repro.data.schema import PairRecord, Schema
from repro.exceptions import UnknownModelError

__all__ = [
    "PairSequence",
    "PairTokenizer",
    "UnstructuredTokenizer",
    "AttributeTokenizer",
    "HybridTokenizer",
    "make_tokenizer",
    "TOKENIZER_NAMES",
]

#: One pair sequence: the left and right value strings to couple.
PairSequence = tuple[str, str]


class PairTokenizer(abc.ABC):
    """Base class of the three tokenization modes."""

    #: Registry key; also used in cache keys and table headers.
    name: str = ""

    @abc.abstractmethod
    def sequences(self, pair: PairRecord, schema: Schema) -> list[PairSequence]:
        """The pair sequences of one record, in a fixed order."""

    def sequence_count(self, schema: Schema) -> int:
        """How many sequences each record produces under this mode."""
        return len(self.sequences(_probe_record(schema), schema))

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def _probe_record(schema: Schema) -> PairRecord:
    empty = {a.name: "" for a in schema.attributes}
    return PairRecord(0, dict(empty), dict(empty), 0)


def _values(pair: PairRecord, side: str, names: tuple[str, ...]) -> str:
    parts = [pair.text_of(side, name) for name in names]
    return " ".join(part for part in parts if part)


class UnstructuredTokenizer(PairTokenizer):
    """All attributes concatenated into one sequence; schema discarded."""

    name = "unstructured"

    def sequences(self, pair: PairRecord, schema: Schema) -> list[PairSequence]:
        names = schema.attribute_names
        return [(_values(pair, "left", names), _values(pair, "right", names))]


class AttributeTokenizer(PairTokenizer):
    """One sequence per attribute, coupling the two entities' values."""

    name = "attr"

    def sequences(self, pair: PairRecord, schema: Schema) -> list[PairSequence]:
        return [
            (pair.text_of("left", a.name), pair.text_of("right", a.name))
            for a in schema.attributes
        ]


class HybridTokenizer(PairTokenizer):
    """Incremental prefix concatenations (the paper's hybrid strategy).

    Sequence *i* couples the concatenated values of attributes ``1..i``;
    the final sequence therefore compares the entire records, while the
    first equals the attribute-based sequence of attribute 1. This is the
    exact hybrid variant described in Section 4.
    """

    name = "hybrid"

    def sequences(self, pair: PairRecord, schema: Schema) -> list[PairSequence]:
        names = schema.attribute_names
        result: list[PairSequence] = []
        for i in range(1, len(names) + 1):
            prefix = names[:i]
            result.append(
                (_values(pair, "left", prefix), _values(pair, "right", prefix))
            )
        return result


_REGISTRY = {
    cls.name: cls
    for cls in (UnstructuredTokenizer, AttributeTokenizer, HybridTokenizer)
}

#: Valid tokenizer mode names.
TOKENIZER_NAMES: tuple[str, ...] = tuple(_REGISTRY)


def make_tokenizer(name: str) -> PairTokenizer:
    """Instantiate a tokenizer by mode name (``attr``/``hybrid``/...)."""
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise UnknownModelError(
            f"unknown tokenizer {name!r}; known: {', '.join(TOKENIZER_NAMES)}"
        ) from None
