"""No-adapter featurizations (the Section 5.1 baseline inputs).

The paper feeds each AutoML system the raw pair table:

* **AutoSklearn** cannot consume categorical/text columns, so the paper
  computes "the average Word2Vec embedding for each token of non-numeric
  attributes ... and concatenated" — :class:`Word2VecFeaturizer`.
* **AutoGluon / H2OAutoML** ingest the table with their own limited
  native preprocessing (label/frequency encoding of categoricals, basic
  text statistics, hashed bags of words) — :class:`NativeTabularFeaturizer`
  models exactly that capability level.

Both deliberately encode each entity *independently*: no component
compares the left value with the right one. That information bottleneck —
a tree model has to reverse-engineer "are these two 50-dimensional blocks
the same string?" from axis-aligned splits — is precisely why raw AutoML
underperforms on EM (Table 2) and what the EM adapter removes.
"""

from __future__ import annotations

import numpy as np

from repro.config import stable_hash
from repro.data.schema import AttributeKind, EMDataset
from repro.exceptions import NotFittedError
from repro.text.tokenization import BasicTokenizer
from repro.text.word2vec import Word2Vec

__all__ = ["Word2VecFeaturizer", "NativeTabularFeaturizer"]


class Word2VecFeaturizer:
    """Concatenated per-attribute average Word2Vec embeddings (+ numerics).

    For each side and each non-numeric attribute, the average embedding of
    its tokens (zeros when empty); numeric attributes pass through as-is
    (NaN when missing). Matches the paper's AutoSklearn preprocessing.
    """

    def __init__(self, dim: int = 32, epochs: int = 2, seed: int = 0) -> None:
        self.dim = dim
        self.epochs = epochs
        self.seed = seed
        self._model: Word2Vec | None = None

    def fit(self, dataset: EMDataset) -> "Word2VecFeaturizer":
        """Train Word2Vec on the dataset's denormalized entity corpus."""
        self._model = Word2Vec(
            dim=self.dim, epochs=self.epochs, min_count=2, seed=self.seed
        )
        self._model.fit(dataset.corpus())
        self._schema = dataset.schema
        return self

    def transform(self, dataset: EMDataset) -> np.ndarray:
        """Feature matrix, one row per pair."""
        if self._model is None:
            raise NotFittedError("Word2VecFeaturizer must be fitted first")
        rows = []
        text_attrs = self._schema.text_attributes()
        numeric_attrs = self._schema.numeric_attributes()
        for pair in dataset:
            parts: list[np.ndarray] = []
            for side in ("left", "right"):
                for attr in text_attrs:
                    parts.append(
                        self._model.embed_text(pair.text_of(side, attr.name))
                    )
                numerics = []
                for attr in numeric_attrs:
                    value = pair.value(side, attr.name)
                    numerics.append(np.nan if value is None else float(value))
                if numerics:
                    parts.append(np.asarray(numerics))
            rows.append(np.concatenate(parts))
        return np.vstack(rows)

    def fit_transform(self, dataset: EMDataset) -> np.ndarray:
        return self.fit(dataset).transform(dataset)

    @property
    def output_dim(self) -> int:
        """Feature count: 2 sides x (text_attrs x dim + numeric_attrs)."""
        if self._model is None:
            raise NotFittedError("Word2VecFeaturizer must be fitted first")
        n_text = len(self._schema.text_attributes())
        n_num = len(self._schema.numeric_attributes())
        return 2 * (n_text * self.dim + n_num)


class NativeTabularFeaturizer:
    """The built-in preprocessing level of AutoGluon / H2O on raw tables.

    Per side and attribute:

    * numeric -> passthrough (NaN for missing);
    * categorical -> frequency encoding + a stable label hash;
    * text -> length, token count, digit fraction, plus a small hashed
      bag-of-words (``text_hash_dim`` buckets).

    No cross-side comparison features, faithfully reproducing what the
    systems' default featurizers see in the paper's Section 5.1 runs.
    """

    def __init__(self, text_hash_dim: int = 16) -> None:
        if text_hash_dim < 1:
            raise ValueError(f"text_hash_dim must be >= 1, got {text_hash_dim}")
        self.text_hash_dim = text_hash_dim
        self._tokenizer = BasicTokenizer()

    def fit(self, dataset: EMDataset) -> "NativeTabularFeaturizer":
        """Learn per-attribute category frequencies from the dataset."""
        self._schema = dataset.schema
        self._frequencies: dict[tuple[str, str], dict[str, float]] = {}
        n = max(1, len(dataset))
        for side in ("left", "right"):
            for attr in dataset.schema.attributes:
                if attr.kind is not AttributeKind.CATEGORICAL:
                    continue
                counts: dict[str, int] = {}
                for pair in dataset:
                    value = pair.text_of(side, attr.name)
                    counts[value] = counts.get(value, 0) + 1
                self._frequencies[(side, attr.name)] = {
                    value: count / n for value, count in counts.items()
                }
        return self

    def transform(self, dataset: EMDataset) -> np.ndarray:
        if not hasattr(self, "_schema"):
            raise NotFittedError("NativeTabularFeaturizer must be fitted first")
        rows = []
        for pair in dataset:
            row: list[float] = []
            for side in ("left", "right"):
                for attr in self._schema.attributes:
                    row.extend(self._attribute_features(pair, side, attr))
            rows.append(row)
        return np.asarray(rows, dtype=np.float64)

    def fit_transform(self, dataset: EMDataset) -> np.ndarray:
        return self.fit(dataset).transform(dataset)

    def _attribute_features(self, pair, side: str, attr) -> list[float]:
        if attr.kind is AttributeKind.NUMERIC:
            value = pair.value(side, attr.name)
            return [np.nan if value is None else float(value)]
        text = pair.text_of(side, attr.name)
        if attr.kind is AttributeKind.CATEGORICAL:
            freq = self._frequencies.get((side, attr.name), {}).get(text, 0.0)
            label = (stable_hash("cat", attr.name, text) % 1000) / 1000.0
            return [freq, label]
        # TEXT: statistics + hashed bag of words.
        tokens = self._tokenizer.tokenize(text)
        digits = sum(ch.isdigit() for ch in text)
        stats = [
            float(len(text)),
            float(len(tokens)),
            digits / max(1, len(text)),
        ]
        bag = [0.0] * self.text_hash_dim
        for token in tokens:
            bag[stable_hash("bow", attr.name, token) % self.text_hash_dim] += 1.0
        return stats + bag
