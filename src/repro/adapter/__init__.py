"""The EM adapter — the paper's core contribution (Sections 3-4).

An :class:`EMAdapter` pipelines three components:

* a **Tokenizer** (:mod:`repro.adapter.tokenizer`) that turns each pair
  record into one or more ``left [SEP] right`` token sequences —
  unstructured, attribute-based, or hybrid (incremental concatenations);
* an **Embedder** (:mod:`repro.adapter.embedder`) that encodes every
  sequence with a frozen pre-trained transformer into a fixed-size vector;
* a **Combiner** (:mod:`repro.adapter.combiner`) that reduces the
  per-sequence vectors of one record to a single feature vector.

The resulting matrix is what AutoML systems consume. The module also
provides the *no-adapter* featurizations of Section 5.1
(:mod:`repro.adapter.features`) and the data-augmentation future-work
extension (:mod:`repro.adapter.augmentation`).
"""

from repro.adapter.augmentation import balance_dataset, shuffle_attribute, swap_pair
from repro.adapter.combiner import Combiner, ConcatCombiner, MeanCombiner, make_combiner
from repro.adapter.embedder import TransformerEmbedder
from repro.adapter.entity_store import (
    EntityStore,
    clear_entity_store,
    entity_store,
)
from repro.adapter.features import (
    NativeTabularFeaturizer,
    Word2VecFeaturizer,
)
from repro.adapter.local_embedder import LocalWord2VecEmbedder
from repro.adapter.pipeline import EMAdapter, clear_adapter_cache
from repro.adapter.tokenizer import (
    TOKENIZER_NAMES,
    AttributeTokenizer,
    HybridTokenizer,
    PairTokenizer,
    UnstructuredTokenizer,
    make_tokenizer,
)

__all__ = [
    "AttributeTokenizer",
    "Combiner",
    "ConcatCombiner",
    "EMAdapter",
    "EntityStore",
    "HybridTokenizer",
    "LocalWord2VecEmbedder",
    "MeanCombiner",
    "NativeTabularFeaturizer",
    "PairTokenizer",
    "TOKENIZER_NAMES",
    "TransformerEmbedder",
    "UnstructuredTokenizer",
    "Word2VecFeaturizer",
    "balance_dataset",
    "clear_adapter_cache",
    "clear_entity_store",
    "entity_store",
    "make_combiner",
    "make_tokenizer",
    "shuffle_attribute",
    "swap_pair",
]
