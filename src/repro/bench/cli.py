"""Bench driver shared by ``repro-em bench`` and ``python -m repro.bench``.

Exit codes: 0 when every selected spec is within its baseline's
tolerance bands (or baselines were just rewritten), 1 when any gated
metric regressed or a baseline is missing, and 2 for usage errors
(unknown spec names, an unknown tier).

Each run writes a schema-valid ``BENCH_<name>.json`` snapshot into
``--output-dir``; ``--update-baselines`` copies the snapshots over the
committed baselines in ``--baseline-dir`` instead of comparing.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.bench.baseline import (
    SpecComparison,
    baseline_path,
    build_payload,
    compare_payload,
    load_payload,
    write_payload,
)
from repro.bench.runner import run_spec
from repro.bench.schema import validate_payload
from repro.bench.spec import TIERS, registered_specs
from repro.bench.suites import load_suites

__all__ = ["add_bench_arguments", "run_bench", "main"]

#: Where per-run snapshots land (the CI artifact directory).
DEFAULT_OUTPUT_DIR = "benchmarks/output"


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the bench options to ``parser`` (shared with repro-em)."""
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_specs",
        help="print the registered specs and exit",
    )
    parser.add_argument(
        "--tier",
        choices=TIERS,
        default=None,
        help="run only this tier (default: every tier)",
    )
    parser.add_argument(
        "--only",
        default=None,
        help="comma-separated spec names to run (intersected with --tier)",
    )
    parser.add_argument(
        "--update-baselines",
        action="store_true",
        help="rewrite the committed baselines from this run and exit 0",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit one machine-readable JSON report on stdout",
    )
    parser.add_argument(
        "--output-dir",
        default=DEFAULT_OUTPUT_DIR,
        help=f"directory for per-run BENCH_<name>.json snapshots "
        f"(default: {DEFAULT_OUTPUT_DIR})",
    )
    parser.add_argument(
        "--baseline-dir",
        default=".",
        help="directory holding the committed BENCH_<name>.json baselines "
        "(default: current directory)",
    )


def _selected_specs(args: argparse.Namespace):
    only = None
    if args.only is not None:
        only = tuple(
            name.strip() for name in args.only.split(",") if name.strip()
        )
    try:
        return registered_specs(tier=args.tier, only=only)
    except KeyError as exc:
        raise SystemExit(f"error: {exc.args[0]}")


def _spec_passed(comparison: SpecComparison) -> bool:
    """A spec passes only when a baseline exists and every gated
    metric is within its band — a missing baseline fails the run so it
    cannot silently ride through CI unbaselined."""
    return comparison.ok and comparison.baseline_found


def _json_report(results: list[dict]) -> str:
    ok = all(r["passed"] for r in results)
    return json.dumps(
        {"ok": ok, "specs": results}, indent=2, sort_keys=True
    )


def _comparison_dict(comparison: SpecComparison) -> dict:
    return {
        "ok": comparison.ok,
        "baseline_found": comparison.baseline_found,
        "environment_matches": comparison.environment_matches,
        "metrics": [
            {
                "name": c.name,
                "status": c.status,
                "current": c.current,
                "baseline": c.baseline,
                "delta": c.delta,
                "message": c.message,
            }
            for c in comparison.comparisons
        ],
    }


def run_bench(args: argparse.Namespace) -> int:
    """Execute one bench invocation; returns the process exit code."""
    load_suites()

    if args.list_specs:
        specs = registered_specs(tier=args.tier)
        if args.as_json:
            print(
                json.dumps(
                    [
                        {
                            "name": s.name,
                            "tier": s.tier,
                            "description": s.description,
                            "metrics": [p.name for p in s.metrics],
                        }
                        for s in specs
                    ],
                    indent=2,
                )
            )
        else:
            for spec in specs:
                print(f"{spec.name:24s} [{spec.tier:5s}] {spec.description}")
        return 0

    specs = _selected_specs(args)
    if not specs:
        print("error: no specs selected", file=sys.stderr)
        return 2

    output_dir = Path(args.output_dir)
    baseline_dir = Path(args.baseline_dir)
    results: list[dict] = []
    failed = False

    for spec in specs:
        if not args.as_json:
            print(f"running {spec.name} [{spec.tier}] ...", flush=True)
        result = run_spec(spec)
        payload = build_payload(result)
        validate_payload(payload)
        snapshot_path = write_payload(
            payload, baseline_path(output_dir, spec.name)
        )

        if args.update_baselines:
            target = write_payload(
                payload, baseline_path(baseline_dir, spec.name)
            )
            if not args.as_json:
                print(f"  baseline updated: {target}")
            continue

        comparison = compare_payload(
            payload, load_payload(baseline_path(baseline_dir, spec.name))
        )
        failed = failed or not _spec_passed(comparison)
        results.append(
            {
                "name": spec.name,
                "tier": spec.tier,
                "passed": _spec_passed(comparison),
                "snapshot": str(snapshot_path),
                "metrics": {
                    name: entry["value"]
                    for name, entry in payload["metrics"].items()
                },
                "comparison": _comparison_dict(comparison),
            }
        )
        if not args.as_json:
            print(comparison.render())

    if args.update_baselines:
        if not args.as_json:
            print(f"{len(specs)} baseline(s) written to {baseline_dir}")
        return 0

    if args.as_json:
        print(_json_report(results))
    elif failed:
        bad = [r["name"] for r in results if not r["passed"]]
        print(
            f"FAIL: {len(bad)} spec(s) regressed or unbaselined: "
            f"{', '.join(bad)}"
        )
    else:
        print(f"OK: {len(results)} spec(s) within tolerance")
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro.bench``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="declarative benchmark registry with persisted perf "
        "baselines and a tolerance-band regression gate",
    )
    add_bench_arguments(parser)
    return run_bench(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
