"""Benchmark definitions and the process-global spec registry.

A :class:`BenchmarkSpec` is declarative: a name, a tier, a ``run``
callable that executes the workload and returns a JSON-able detail
payload, and the :class:`MetricPolicy` tolerance bands the regression
gate applies to each metric it emits. Registration is
import-triggered (see :mod:`repro.bench.suites`) and deduplicated by
name — two specs competing for one name is a programming error, not a
last-writer-wins.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator

__all__ = [
    "AUTO_METRIC_POLICIES",
    "TIERS",
    "BenchContext",
    "BenchmarkSpec",
    "MetricPolicy",
    "get_spec",
    "register",
    "registered_specs",
    "scratch_registry",
]

#: The two execution tiers: ``quick`` runs per PR in CI, ``full`` is
#: the paper-table regeneration suite run on demand.
TIERS: tuple[str, ...] = ("quick", "full")

#: Comparison directions the tolerance gate understands.
DIRECTIONS: tuple[str, ...] = ("lower_better", "higher_better", "two_sided")


@dataclass(frozen=True)
class MetricPolicy:
    """How the regression gate treats one metric of one spec.

    ``tolerance`` is a relative band on the baseline value: a
    ``lower_better`` metric regresses when the current value exceeds
    ``baseline * (1 + tolerance)``, a ``higher_better`` one when it
    falls below ``baseline * (1 - tolerance)``, and ``two_sided`` when
    the relative delta leaves ``±tolerance``. Against a zero baseline
    the band is applied absolutely. ``gate=False`` records the metric
    in the baseline without ever failing on it (wall-noise context like
    peak RSS).
    """

    name: str
    unit: str = ""
    direction: str = "lower_better"
    tolerance: float = 0.25
    gate: bool = True

    def __post_init__(self) -> None:
        if self.direction not in DIRECTIONS:
            raise ValueError(
                f"metric {self.name!r}: direction must be one of "
                f"{DIRECTIONS}, got {self.direction!r}"
            )
        if self.tolerance < 0:
            raise ValueError(
                f"metric {self.name!r}: tolerance must be >= 0, "
                f"got {self.tolerance}"
            )


#: Policies for the metrics every run records automatically (the
#: runner's own timing and the profiling hooks). Wall clocks get wide
#: bands — they absorb machine variance, not logic changes; peak RSS is
#: informational because ``ru_maxrss`` is monotone over the process.
AUTO_METRIC_POLICIES: dict[str, MetricPolicy] = {
    "wall_seconds": MetricPolicy(
        "wall_seconds", unit="s", direction="lower_better", tolerance=2.0
    ),
    "tracemalloc_peak_kb": MetricPolicy(
        "tracemalloc_peak_kb",
        unit="KiB",
        direction="lower_better",
        tolerance=1.0,
    ),
    "peak_rss_kb": MetricPolicy(
        "peak_rss_kb", unit="KiB", direction="lower_better", gate=False
    ),
}


class BenchContext:
    """Handed to every spec's ``run`` callable to record metrics."""

    def __init__(self) -> None:
        self._metrics: dict[str, float] = {}

    def metric(self, name: str, value: float) -> None:
        """Record (or overwrite) one named scalar metric."""
        self._metrics[str(name)] = float(value)

    @property
    def metrics(self) -> dict[str, float]:
        return dict(self._metrics)


@dataclass(frozen=True)
class BenchmarkSpec:
    """One registered benchmark.

    ``run(ctx)`` executes the workload under a fresh telemetry recorder
    and returns the JSON-able ``detail`` payload; explicit metrics go
    through ``ctx.metric``. ``counters`` names telemetry counters to
    copy from the run's snapshot into the metrics (cache hit/miss
    rates). ``profile_memory`` turns the tracemalloc hook off for
    long workloads where allocation tracking is all cost and no
    signal.
    """

    name: str
    tier: str
    run: Callable[[BenchContext], dict]
    metrics: tuple[MetricPolicy, ...] = ()
    counters: tuple[str, ...] = ()
    description: str = ""
    profile_memory: bool = True

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name or self.name != self.name.strip():
            raise ValueError(f"invalid benchmark name {self.name!r}")
        if self.tier not in TIERS:
            raise ValueError(
                f"benchmark {self.name!r}: tier must be one of {TIERS}, "
                f"got {self.tier!r}"
            )
        declared = [policy.name for policy in self.metrics]
        if len(declared) != len(set(declared)):
            raise ValueError(
                f"benchmark {self.name!r} declares duplicate metric policies"
            )

    def policy_for(self, metric_name: str) -> MetricPolicy:
        """The declared policy of a metric, the automatic-metric
        default, or an ungated informational fallback."""
        for policy in self.metrics:
            if policy.name == metric_name:
                return policy
        auto = AUTO_METRIC_POLICIES.get(metric_name)
        if auto is not None:
            return auto
        return MetricPolicy(metric_name, direction="two_sided", gate=False)


_REGISTRY: dict[str, BenchmarkSpec] = {}


def register(spec: BenchmarkSpec) -> BenchmarkSpec:
    """Add a spec to the registry; duplicate names are an error.

    Re-registering the *same object* is a no-op, so
    :func:`~repro.bench.suites.load_suites` is idempotent and can
    restore the built-ins after a :func:`scratch_registry` block
    discarded them.
    """
    existing = _REGISTRY.get(spec.name)
    if existing is spec:
        return spec
    if existing is not None:
        raise ValueError(
            f"benchmark {spec.name!r} is already registered "
            f"(tier {existing.tier!r}); names must be unique"
        )
    _REGISTRY[spec.name] = spec
    return spec


def registered_specs(
    tier: str | None = None, only: tuple[str, ...] | None = None
) -> list[BenchmarkSpec]:
    """Registered specs, name-sorted, optionally filtered by tier and
    an explicit name subset. Unknown ``only`` names raise."""
    if only is not None:
        unknown = sorted(set(only) - set(_REGISTRY))
        if unknown:
            raise KeyError(
                f"unknown benchmark(s): {', '.join(unknown)}; "
                f"registered: {', '.join(sorted(_REGISTRY))}"
            )
    specs = [
        spec
        for name, spec in sorted(_REGISTRY.items())
        if (tier is None or spec.tier == tier)
        and (only is None or name in only)
    ]
    return specs


def get_spec(name: str) -> BenchmarkSpec:
    """The registered spec of that name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; registered: "
            f"{', '.join(sorted(_REGISTRY)) or '(none)'}"
        ) from None


@contextmanager
def scratch_registry() -> Iterator[dict[str, BenchmarkSpec]]:
    """Swap in an empty registry for a ``with`` block (test isolation);
    the previous registry is restored on exit."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = {}
    try:
        yield _REGISTRY
    finally:
        _REGISTRY = previous
