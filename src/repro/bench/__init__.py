"""Declarative benchmark registry with persisted perf baselines.

``repro.bench`` turns the repo's benchmarks from print-and-exit scripts
into a registry of :class:`BenchmarkSpec` definitions that execute in
isolation (fresh :mod:`repro.telemetry` recorder, memory-profiling
hooks, wall-clock timing), emit machine-readable ``BENCH_<name>.json``
files validated against ``docs/bench_schema.json``, and compare every
run against the committed baseline with per-metric tolerance bands —
the regression gate that makes "measurably faster" verifiable across
PRs.

Specs live in two tiers:

* ``quick`` — seconds-to-minutes, run per PR by the CI ``bench-quick``
  job with the tolerance gate (components, ablations, the analysis
  engine);
* ``full`` — the paper-table regenerations (hours at full scale), run
  on demand.

Usage::

    repro-em bench --list                 # what is registered
    repro-em bench --tier quick           # run + gate against baselines
    repro-em bench --only analysis --update-baselines

or programmatically::

    from repro.bench import get_spec, load_suites, run_spec

    load_suites()
    result = run_spec(get_spec("analysis"))
    print(result.metrics["cold_seconds"])

See ``docs/BENCHMARKS.md`` for the registry model and tolerance
policy.
"""

from repro.bench.baseline import (
    SCHEMA_VERSION,
    MetricComparison,
    SpecComparison,
    baseline_path,
    build_payload,
    compare_payload,
    environment_stamp,
    load_payload,
    write_payload,
)
from repro.bench.runner import BenchmarkResult, run_spec
from repro.bench.schema import BENCH_SCHEMA, validate_payload
from repro.bench.spec import (
    AUTO_METRIC_POLICIES,
    TIERS,
    BenchContext,
    BenchmarkSpec,
    MetricPolicy,
    get_spec,
    register,
    registered_specs,
    scratch_registry,
)
from repro.bench.suites import load_suites

__all__ = [
    "AUTO_METRIC_POLICIES",
    "BENCH_SCHEMA",
    "BenchContext",
    "BenchmarkResult",
    "BenchmarkSpec",
    "MetricComparison",
    "MetricPolicy",
    "SCHEMA_VERSION",
    "SpecComparison",
    "TIERS",
    "baseline_path",
    "build_payload",
    "compare_payload",
    "environment_stamp",
    "get_spec",
    "load_payload",
    "load_suites",
    "register",
    "registered_specs",
    "run_spec",
    "scratch_registry",
    "validate_payload",
    "write_payload",
]
