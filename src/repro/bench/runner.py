"""Isolated benchmark execution.

Each spec runs under a fresh :class:`~repro.telemetry.TelemetryRecorder`
(so counters and spans start at zero and nothing leaks between specs),
inside the :func:`~repro.telemetry.memory_profile` hook, with the
runner owning the wall clock. Three metrics are recorded automatically
— ``wall_seconds``, ``tracemalloc_peak_kb``, ``peak_rss_kb`` — and any
telemetry counters the spec names in ``counters`` are copied out of the
run's snapshot (cache hit/miss totals, fault counters, ...).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro import telemetry
from repro.bench.spec import BenchContext, BenchmarkSpec
from repro.telemetry import memory_profile, snapshot

__all__ = ["BenchmarkResult", "run_spec"]


@dataclass
class BenchmarkResult:
    """One executed spec: its metrics, detail payload, and trace."""

    spec: BenchmarkSpec
    metrics: dict[str, float]
    detail: dict
    trace: dict

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def tier(self) -> str:
        return self.spec.tier


def _counter_values(trace: dict, names: tuple[str, ...]) -> dict[str, float]:
    """The requested counter totals from a snapshot (absent => 0.0)."""
    found = {
        line["name"]: float(line.get("value", 0.0))
        for line in trace.get("metrics", [])
        if line.get("type") == "counter"
    }
    return {name: found.get(name, 0.0) for name in names}


def run_spec(spec: BenchmarkSpec) -> BenchmarkResult:
    """Execute one spec in isolation and return its result.

    The spec's explicit metrics win over the automatic ones, so a
    workload that times an inner phase can publish that as its own
    ``wall_seconds`` if the harness overhead would drown the signal.
    """
    context = BenchContext()
    with telemetry.recording() as recorder:
        if spec.profile_memory:
            with memory_profile() as profile:
                start = time.perf_counter()
                detail = spec.run(context)
                wall = time.perf_counter() - start
        else:
            profile = None
            start = time.perf_counter()
            detail = spec.run(context)
            wall = time.perf_counter() - start
    trace = snapshot(recorder)

    metrics = {"wall_seconds": round(wall, 4)}
    if profile is not None:
        metrics["tracemalloc_peak_kb"] = round(profile.tracemalloc_peak_kb, 1)
        metrics["peak_rss_kb"] = round(profile.peak_rss_kb, 1)
    metrics.update(_counter_values(trace, spec.counters))
    metrics.update(context.metrics)

    if not isinstance(detail, dict):
        raise TypeError(
            f"benchmark {spec.name!r}: run() must return a dict detail "
            f"payload, got {type(detail).__name__}"
        )
    return BenchmarkResult(spec=spec, metrics=metrics, detail=detail, trace=trace)
