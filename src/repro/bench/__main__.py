"""``python -m repro.bench`` — run the benchmark registry."""

import sys

from repro.bench.cli import main

sys.exit(main())
