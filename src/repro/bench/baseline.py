"""``BENCH_<name>.json`` payloads, environment stamps, and the gate.

A payload is the schema-versioned envelope around one executed spec:
the environment stamp (stable facts about the machine and configured
scale — identical across fixed-seed re-runs), every metric with the
tolerance policy that governs it, and the spec's free-form detail
payload. Baselines are these files committed at the repo root; the
tolerance gate compares a fresh payload against the committed one
per-metric and reports regressions by name with the relative delta.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

import repro
from repro.bench.runner import BenchmarkResult
from repro.bench.spec import MetricPolicy

__all__ = [
    "SCHEMA_VERSION",
    "MetricComparison",
    "SpecComparison",
    "baseline_path",
    "build_payload",
    "compare_payload",
    "environment_stamp",
    "load_payload",
    "write_payload",
]

#: Version of the ``BENCH_<name>.json`` envelope; the pre-registry
#: ``BENCH_analysis.json`` was version 1.
SCHEMA_VERSION = 2


def environment_stamp() -> dict:
    """Stable facts about this run's environment.

    Everything here is constant across repeated fixed-seed runs on one
    machine — comparisons use it to flag baselines recorded under a
    different interpreter, hardware, or experiment scale.
    """
    from repro.experiments.config import ExperimentConfig

    config = ExperimentConfig()
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "numpy": np.__version__,
        "repro": repro.__version__,
        "scale": config.scale,
        "max_models": config.max_models,
    }


def _jsonable(value):
    """Recursively coerce numpy scalars/arrays so payloads serialize."""
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [_jsonable(item) for item in value.tolist()]
    return value


def build_payload(result: BenchmarkResult) -> dict:
    """The ``BENCH_<name>.json`` envelope of one executed spec."""
    metrics = {}
    for name in sorted(result.metrics):
        policy = result.spec.policy_for(name)
        metrics[name] = {
            "value": _jsonable(result.metrics[name]),
            "unit": policy.unit,
            "direction": policy.direction,
            "tolerance": policy.tolerance,
            "gate": policy.gate,
        }
    return {
        "schema_version": SCHEMA_VERSION,
        "name": result.name,
        "tier": result.tier,
        "created_unix": time.time(),
        "environment": environment_stamp(),
        "metrics": metrics,
        "detail": _jsonable(result.detail),
    }


def baseline_path(root: str | Path, name: str) -> Path:
    """Where the committed baseline of ``name`` lives under ``root``."""
    return Path(root) / f"BENCH_{name}.json"


def write_payload(payload: dict, path: str | Path) -> Path:
    """Serialize a payload (sorted keys, trailing newline) to ``path``."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(_jsonable(payload), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return target


def load_payload(path: str | Path) -> dict | None:
    """A previously written payload, or ``None`` when absent."""
    target = Path(path)
    if not target.exists():
        return None
    return json.loads(target.read_text(encoding="utf-8"))


# ------------------------------------------------------------- the gate


@dataclass(frozen=True)
class MetricComparison:
    """One metric of one spec measured against its baseline."""

    name: str
    status: str  # ok | regression | improvement | new-metric |
    #              missing-metric | informational
    current: float | None
    baseline: float | None
    delta: float | None  # relative when baseline != 0, absolute at 0
    message: str

    @property
    def failed(self) -> bool:
        return self.status in ("regression", "missing-metric")


@dataclass
class SpecComparison:
    """Every metric comparison of one spec, plus the overall verdict."""

    name: str
    baseline_found: bool
    environment_matches: bool = True
    comparisons: list[MetricComparison] = field(default_factory=list)

    @property
    def failures(self) -> list[MetricComparison]:
        return [c for c in self.comparisons if c.failed]

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        """One line per metric, gate verdict first."""
        if not self.baseline_found:
            return (
                f"{self.name}: NO BASELINE — run "
                f"`repro-em bench --only {self.name} --update-baselines` "
                "and commit the result"
            )
        verdict = "ok" if self.ok else (
            f"REGRESSION ({len(self.failures)} metric(s))"
        )
        lines = [f"{self.name}: {verdict}"]
        if not self.environment_matches:
            lines.append(
                "  note: baseline was recorded in a different environment"
            )
        for comparison in self.comparisons:
            lines.append(f"  {comparison.message}")
        return "\n".join(lines)


def _policy_from_payload(name: str, entry: dict) -> MetricPolicy:
    return MetricPolicy(
        name,
        unit=str(entry.get("unit", "")),
        direction=str(entry.get("direction", "lower_better")),
        tolerance=float(entry.get("tolerance", 0.25)),
        gate=bool(entry.get("gate", True)),
    )


def _compare_metric(
    name: str, policy: MetricPolicy, current: float, base: float
) -> MetricComparison:
    if base != 0:
        delta = (current - base) / abs(base)
        delta_text = f"{delta:+.1%}"
    else:
        delta = current - base
        delta_text = f"{delta:+.4g} (absolute; baseline is 0)"
    if policy.direction == "lower_better":
        regressed = delta > policy.tolerance
        improved = delta < -policy.tolerance
    elif policy.direction == "higher_better":
        regressed = delta < -policy.tolerance
        improved = delta > policy.tolerance
    else:  # two_sided
        regressed = abs(delta) > policy.tolerance
        improved = False
    unit = f" {policy.unit}" if policy.unit else ""
    if not policy.gate:
        status = "informational"
        verdict = "not gated"
    elif regressed:
        status = "regression"
        verdict = f"REGRESSED beyond ±{policy.tolerance:.0%}"
    elif improved:
        status = "improvement"
        verdict = "improved"
    else:
        status = "ok"
        verdict = "within band"
    message = (
        f"{name}: {current:.6g}{unit} vs baseline {base:.6g}{unit} "
        f"({delta_text}, {policy.direction}, tolerance ±{policy.tolerance:.0%})"
        f" — {verdict}"
    )
    return MetricComparison(
        name=name,
        status=status,
        current=current,
        baseline=base,
        delta=delta,
        message=message,
    )


def compare_payload(current: dict, baseline: dict | None) -> SpecComparison:
    """Gate one fresh payload against its committed baseline.

    Policies come from the *current* payload (the spec is the source of
    truth; a PR that tightens a tolerance re-judges the old numbers).
    A gated metric present in the baseline but absent from the run is a
    failure — silently losing a measured signal is itself a regression.
    New metrics and a missing baseline file are reported, not failed,
    so adding coverage never blocks the PR that adds it.
    """
    name = str(current.get("name", "?"))
    if baseline is None:
        return SpecComparison(name=name, baseline_found=False)

    current_metrics: dict = current.get("metrics", {})
    baseline_metrics: dict = baseline.get("metrics", {})
    comparison = SpecComparison(
        name=name,
        baseline_found=True,
        environment_matches=(
            current.get("environment") == baseline.get("environment")
        ),
    )
    for metric_name in sorted(set(current_metrics) | set(baseline_metrics)):
        entry = current_metrics.get(metric_name)
        base_entry = baseline_metrics.get(metric_name)
        if entry is None:
            policy = _policy_from_payload(metric_name, base_entry)
            if policy.gate:
                comparison.comparisons.append(
                    MetricComparison(
                        name=metric_name,
                        status="missing-metric",
                        current=None,
                        baseline=float(base_entry["value"]),
                        delta=None,
                        message=(
                            f"{metric_name}: gated metric present in the "
                            "baseline but missing from this run — MISSING"
                        ),
                    )
                )
            continue
        policy = _policy_from_payload(metric_name, entry)
        if base_entry is None:
            comparison.comparisons.append(
                MetricComparison(
                    name=metric_name,
                    status="new-metric",
                    current=float(entry["value"]),
                    baseline=None,
                    delta=None,
                    message=(
                        f"{metric_name}: {float(entry['value']):.6g} — new "
                        "metric, no baseline yet"
                    ),
                )
            )
            continue
        comparison.comparisons.append(
            _compare_metric(
                metric_name,
                policy,
                float(entry["value"]),
                float(base_entry["value"]),
            )
        )
    return comparison
