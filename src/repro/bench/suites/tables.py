"""Full-tier specs: the paper-table regenerations (Tables 1–5).

Migrated from ``benchmarks/bench_table{1..5}.py``; the pytest files run
these specs and keep their paper-shape assertions. Wall time rides the
``.repro_cache`` state (a warmed grid replays instantly), so it is
recorded but not gated; the gated metrics are the scale-stable quality
aggregates each table's shape assertions pin — the same signal, now
persisted in ``BENCH_table<N>.json`` so the trajectory across speed
PRs is on record.
"""

from __future__ import annotations

import numpy as np

from repro.bench.spec import BenchmarkSpec, MetricPolicy

#: Registered by :func:`repro.bench.suites.load_suites`.
SPECS: list[BenchmarkSpec] = []

_SYSTEMS = ("autosklearn", "autogluon", "h2o")

#: Deterministic under a fixed (scale, seed) config; the band absorbs
#: float/BLAS drift only.
_QUALITY = dict(direction="two_sided", tolerance=0.05)

#: Experiment-grid cache counters worth recording on every table run.
_RUNNER_COUNTERS = (
    "runner.cache.memory.hits",
    "runner.cache.disk.hits",
    "runner.cache.disk.misses",
)


def _config():
    from repro.experiments import ExperimentConfig

    return ExperimentConfig()


def _run_table1(ctx) -> dict:
    from repro.experiments import run_table1
    from repro.experiments.table1 import table1_rows

    config = _config()
    text = run_table1(scale=config.scale, generate=True)
    nominal = {r["dataset"]: r["match_percent"] for r in table1_rows()}
    measured = table1_rows(scale=config.scale, generate=True)
    drift = [
        abs(row["match_percent"] - nominal[row["dataset"]]) for row in measured
    ]
    ctx.metric("datasets", len(measured))
    ctx.metric("max_match_rate_drift", max(drift))
    return {
        "scale": config.scale,
        "rows": measured,
        "text": text,
    }


SPECS.append(
    BenchmarkSpec(
        name="table1",
        tier="full",
        run=_run_table1,
        description="Table 1: dataset statistics, generated at scale",
        profile_memory=False,
        metrics=(
            MetricPolicy("datasets", direction="two_sided", tolerance=0.0),
            # Generators must realise the registered match rates.
            MetricPolicy("max_match_rate_drift", tolerance=1.0),
            MetricPolicy("wall_seconds", unit="s", gate=False),
        ),
    )
)


def _run_table2(ctx) -> dict:
    from repro.experiments import ExperimentRunner, run_table2
    from repro.experiments.table2 import table2_rows

    config = _config()
    rows = table2_rows(ExperimentRunner(config))
    text = run_table2(config)
    deepmatcher = np.array([row["deepmatcher_f1"] for row in rows])
    ctx.metric("datasets", len(rows))
    ctx.metric("deepmatcher_f1_mean", float(deepmatcher.mean()))
    for system in _SYSTEMS:
        raw = np.array([row[f"{system}_f1"] for row in rows])
        ctx.metric(f"{system}_f1_mean", float(raw.mean()))
        ctx.metric(
            f"{system}_deepmatcher_margin", float(deepmatcher.mean() - raw.mean())
        )
    return {"scale": config.scale, "rows": rows, "text": text}


SPECS.append(
    BenchmarkSpec(
        name="table2",
        tier="full",
        run=_run_table2,
        description="Table 2: raw AutoML systems vs DeepMatcher",
        profile_memory=False,
        counters=_RUNNER_COUNTERS,
        metrics=(
            MetricPolicy("datasets", direction="two_sided", tolerance=0.0),
            MetricPolicy("deepmatcher_f1_mean", **_QUALITY),
            MetricPolicy("autosklearn_f1_mean", **_QUALITY),
            MetricPolicy("autogluon_f1_mean", **_QUALITY),
            MetricPolicy("h2o_f1_mean", **_QUALITY),
            MetricPolicy("wall_seconds", unit="s", gate=False),
        ),
    )
)


def _run_table3(ctx) -> dict:
    from repro.experiments import ExperimentRunner, run_table3
    from repro.experiments.table3 import table3_rows
    from repro.transformers import EMBEDDER_NAMES

    config = _config()
    runner = ExperimentRunner(config)
    grids = {system: table3_rows(system, runner) for system in _SYSTEMS}
    text = run_table3(config)
    hybrid_wins = 0
    cells = 0
    best_cells = []
    for rows in grids.values():
        for row in rows:
            attr_best = max(row[f"attr_{e}"] for e in EMBEDDER_NAMES)
            hybrid_best = max(row[f"hybrid_{e}"] for e in EMBEDDER_NAMES)
            if hybrid_best >= attr_best:
                hybrid_wins += 1
            best_cells.append(max(attr_best, hybrid_best))
            cells += 1
    ctx.metric("cells", cells)
    ctx.metric("hybrid_win_rate", hybrid_wins / cells)
    ctx.metric("best_f1_mean", float(np.mean(best_cells)))
    return {"scale": config.scale, "grids": grids, "text": text}


SPECS.append(
    BenchmarkSpec(
        name="table3",
        tier="full",
        run=_run_table3,
        description="Table 3: the adapter grid (tokenizers x embedders)",
        profile_memory=False,
        counters=_RUNNER_COUNTERS,
        metrics=(
            MetricPolicy("cells", direction="two_sided", tolerance=0.0),
            MetricPolicy("hybrid_win_rate", direction="higher_better", tolerance=0.2),
            MetricPolicy("best_f1_mean", **_QUALITY),
            MetricPolicy("wall_seconds", unit="s", gate=False),
        ),
    )
)


def _run_table4(ctx) -> dict:
    from repro.experiments import ExperimentRunner, run_table4
    from repro.experiments.table4 import average_deltas, table4_rows

    config = _config()
    rows = table4_rows(ExperimentRunner(config))
    text = run_table4(config)
    deltas = average_deltas(rows)
    for system, delta in deltas.items():
        ctx.metric(f"{system}_adapter_delta", delta)
    improved = sum(
        1
        for row in rows
        for system in _SYSTEMS
        if row[f"{system}_delta"] > 0
    )
    ctx.metric("datasets", len(rows))
    ctx.metric("improved_cell_rate", improved / (len(rows) * len(_SYSTEMS)))
    return {"scale": config.scale, "rows": rows, "text": text}


SPECS.append(
    BenchmarkSpec(
        name="table4",
        tier="full",
        run=_run_table4,
        description="Table 4: adapter impact deltas per AutoML system",
        profile_memory=False,
        counters=_RUNNER_COUNTERS,
        metrics=(
            MetricPolicy("datasets", direction="two_sided", tolerance=0.0),
            MetricPolicy("autosklearn_adapter_delta", **_QUALITY),
            MetricPolicy("autogluon_adapter_delta", **_QUALITY),
            MetricPolicy("h2o_adapter_delta", **_QUALITY),
            MetricPolicy(
                "improved_cell_rate", direction="higher_better", tolerance=0.15
            ),
            MetricPolicy("wall_seconds", unit="s", gate=False),
        ),
    )
)


def _run_table5(ctx) -> dict:
    from repro.experiments import ExperimentRunner, run_table5
    from repro.experiments.table5 import table5_rows

    config = _config()
    rows = table5_rows(ExperimentRunner(config))
    text = run_table5(config)
    mean_1h = float(
        np.mean([max(row[f"{s}_1h"] for s in _SYSTEMS) for row in rows])
    )
    mean_6h = float(
        np.mean([max(row[f"{s}_6h"] for s in _SYSTEMS) for row in rows])
    )
    ctx.metric("datasets", len(rows))
    ctx.metric("best_1h_f1_mean", mean_1h)
    ctx.metric("best_6h_f1_mean", mean_6h)
    ctx.metric("budget_gain_6h_over_1h", mean_6h - mean_1h)
    return {"scale": config.scale, "rows": rows, "text": text}


SPECS.append(
    BenchmarkSpec(
        name="table5",
        tier="full",
        run=_run_table5,
        description="Table 5: adapted AutoML vs DeepMatcher under budgets",
        profile_memory=False,
        counters=_RUNNER_COUNTERS,
        metrics=(
            MetricPolicy("datasets", direction="two_sided", tolerance=0.0),
            MetricPolicy("best_1h_f1_mean", **_QUALITY),
            MetricPolicy("best_6h_f1_mean", **_QUALITY),
            MetricPolicy("wall_seconds", unit="s", gate=False),
        ),
    )
)
