"""Ablation specs: the design-choice studies from DESIGN.md.

Migrated from ``benchmarks/bench_ablations.py``; the pytest file now
runs these specs and keeps its shape assertions. Each spec isolates one
adapter/AutoML design decision on a compact dataset subset. F1 scores
are deterministic under the pinned scale and seeds, so they gate with a
tight two-sided band — a quality regression fails the bench even when
the wall clock is fine. Wall times ride the cache state (cold vs warm
``.repro_cache``), so they are informational only.
"""

from __future__ import annotations

from repro.bench.spec import BenchmarkSpec, MetricPolicy

#: Registered by :func:`repro.bench.suites.load_suites`.
SPECS: list[BenchmarkSpec] = []

_SCALE = 0.06
_MAX_MODELS = 6

#: Deterministic quality metric: identical inputs reproduce the exact
#: score, so the band only absorbs float/BLAS drift across platforms.
_F1 = dict(direction="two_sided", tolerance=0.02)


def _pipeline_f1(splits, tokenizer, embedder, combiner="mean", automl="h2o"):
    from repro.adapter import EMAdapter
    from repro.matching import EMPipeline

    pipeline = EMPipeline(
        adapter=EMAdapter(tokenizer, embedder, combiner),
        automl=automl,
        budget_hours=1.0,
        max_models=_MAX_MODELS,
    )
    pipeline.fit(splits.train, splits.valid)
    return 100.0 * pipeline.score(splits.test)


def _splits(name):
    from repro.data import load_dataset, split_dataset

    return split_dataset(load_dataset(name, scale=_SCALE))


def _score_metrics(ctx, scores: dict) -> dict:
    for key, value in scores.items():
        ctx.metric(f"f1_{key}", value)
    return {"scale": _SCALE, "max_models": _MAX_MODELS, "scores": scores}


def _run_combiner(ctx) -> dict:
    splits = _splits("S-DA")
    return _score_metrics(
        ctx,
        {
            "mean": _pipeline_f1(splits, "attr", "albert", "mean"),
            "concat": _pipeline_f1(splits, "attr", "albert", "concat"),
        },
    )


SPECS.append(
    BenchmarkSpec(
        name="ablation_combiner",
        tier="quick",
        run=_run_combiner,
        description="mean vs concat combiner (S-DA, attr+albert)",
        profile_memory=False,
        metrics=(
            MetricPolicy("f1_mean", **_F1),
            MetricPolicy("f1_concat", **_F1),
            MetricPolicy("wall_seconds", unit="s", gate=False),
        ),
    )
)


def _run_tokenizer(ctx) -> dict:
    splits = _splits("D-DA")
    return _score_metrics(
        ctx,
        {
            mode: _pipeline_f1(splits, mode, "albert")
            for mode in ("unstructured", "attr", "hybrid")
        },
    )


SPECS.append(
    BenchmarkSpec(
        name="ablation_tokenizer",
        tier="quick",
        run=_run_tokenizer,
        description="tokenizer modes on Dirty data (D-DA, albert)",
        profile_memory=False,
        metrics=(
            MetricPolicy("f1_unstructured", **_F1),
            MetricPolicy("f1_attr", **_F1),
            MetricPolicy("f1_hybrid", **_F1),
            MetricPolicy("wall_seconds", unit="s", gate=False),
        ),
    )
)


def _run_search_strategy(ctx) -> dict:
    splits = _splits("S-AG")
    return _score_metrics(
        ctx,
        {
            "smbo": _pipeline_f1(splits, "hybrid", "albert", automl="autosklearn"),
            "random": _pipeline_f1(splits, "hybrid", "albert", automl="h2o"),
        },
    )


SPECS.append(
    BenchmarkSpec(
        name="ablation_search",
        tier="quick",
        run=_run_search_strategy,
        description="SMBO vs random search at equal budget (S-AG)",
        profile_memory=False,
        metrics=(
            MetricPolicy("f1_smbo", **_F1),
            MetricPolicy("f1_random", **_F1),
            MetricPolicy("wall_seconds", unit="s", gate=False),
        ),
    )
)


def _run_augmentation(ctx) -> dict:
    from repro.adapter import EMAdapter
    from repro.adapter.augmentation import balance_dataset
    from repro.matching import EMPipeline
    from repro.ml.metrics import f1_score

    splits = _splits("S-WA")
    adapter = EMAdapter("hybrid", "albert")
    plain = EMPipeline(adapter=adapter, automl="h2o", max_models=_MAX_MODELS)
    plain.fit(splits.train, splits.valid)
    from repro.config import rng_for

    balanced_train = balance_dataset(
        splits.train,
        target_match_fraction=0.35,
        rng=rng_for("bench", "ablation_augmentation"),
    )
    balanced = EMPipeline(adapter=adapter, automl="h2o", max_models=_MAX_MODELS)
    balanced.fit(balanced_train, splits.valid)
    return _score_metrics(
        ctx,
        {
            "imbalanced": 100.0
            * f1_score(splits.test.labels, plain.predict(splits.test)),
            "balanced": 100.0
            * f1_score(splits.test.labels, balanced.predict(splits.test)),
        },
    )


SPECS.append(
    BenchmarkSpec(
        name="ablation_augmentation",
        tier="quick",
        run=_run_augmentation,
        description="training-split augmentation on vs off (S-WA)",
        profile_memory=False,
        metrics=(
            MetricPolicy("f1_imbalanced", **_F1),
            MetricPolicy("f1_balanced", **_F1),
            MetricPolicy("wall_seconds", unit="s", gate=False),
        ),
    )
)


def _run_local_embedder(ctx) -> dict:
    from repro.adapter import EMAdapter
    from repro.adapter.local_embedder import LocalWord2VecEmbedder
    from repro.data import load_dataset, split_dataset
    from repro.matching import EMPipeline

    dataset = load_dataset("S-DA", scale=_SCALE)
    splits = split_dataset(dataset)
    local = LocalWord2VecEmbedder.from_dataset(dataset, dim=48, epochs=2)
    local_pipeline = EMPipeline(
        adapter=EMAdapter("attr", local, "mean", cache=False),
        automl="h2o",
        budget_hours=1.0,
        max_models=_MAX_MODELS,
    )
    local_pipeline.fit(splits.train, splits.valid)
    return _score_metrics(
        ctx,
        {
            "albert": _pipeline_f1(splits, "attr", "albert"),
            "local_word2vec": 100.0 * local_pipeline.score(splits.test),
        },
    )


SPECS.append(
    BenchmarkSpec(
        name="ablation_local_embedder",
        tier="quick",
        run=_run_local_embedder,
        description="dataset-local Word2Vec vs simulated pre-trained ALBERT",
        profile_memory=False,
        metrics=(
            MetricPolicy("f1_albert", **_F1),
            MetricPolicy("f1_local_word2vec", **_F1),
            MetricPolicy("wall_seconds", unit="s", gate=False),
        ),
    )
)


def _run_matcher_families(ctx) -> dict:
    from repro.matching import DeepMatcherHybrid, MagellanMatcher
    from repro.ml.metrics import f1_score

    splits = _splits("S-DA")
    scores = {}
    magellan = MagellanMatcher(seed=0)
    magellan.fit(splits.train, splits.valid)
    scores["magellan"] = 100.0 * f1_score(
        splits.test.labels, magellan.predict(splits.test)
    )
    deep = DeepMatcherHybrid(seed=0)
    deep.fit(splits.train, splits.valid)
    scores["deepmatcher"] = 100.0 * f1_score(
        splits.test.labels, deep.predict(splits.test)
    )
    scores["adapted_automl"] = _pipeline_f1(
        splits, "hybrid", "albert", automl="autosklearn"
    )
    return _score_metrics(ctx, scores)


SPECS.append(
    BenchmarkSpec(
        name="ablation_matchers",
        tier="quick",
        run=_run_matcher_families,
        description="matcher generations: Magellan vs DeepMatcher vs adapted AutoML",
        profile_memory=False,
        metrics=(
            MetricPolicy("f1_magellan", **_F1),
            MetricPolicy("f1_deepmatcher", **_F1),
            MetricPolicy("f1_adapted_automl", **_F1),
            MetricPolicy("wall_seconds", unit="s", gate=False),
        ),
    )
)
