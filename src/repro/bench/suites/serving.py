"""Serving-path benchmark: daemon latency and throughput under load.

One quick-tier spec: fit a tiny pipeline, serve it from an in-process
:class:`~repro.serving.daemon.MatchDaemon` on an ephemeral port, drive
it with the deterministic :func:`~repro.serving.loadtest.run_loadtest`
stream, and gate the client-observed p50/p99 latency and the measured
throughput. The run also pins the serving contract in-line: fused
(micro-batched) predictions must be bit-identical to one-at-a-time
serving of the same pairs.

The bench runner installs its own telemetry recorder around every spec,
so the daemon's metrics land there and the server-side histogram counts
can be asserted without extra wiring.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.bench.spec import BenchmarkSpec, MetricPolicy

#: Registered by :func:`repro.bench.suites.load_suites`.
SPECS: list[BenchmarkSpec] = []

_REQUESTS = 60
_CONCURRENCY = 4
_PAIRS_PER_REQUEST = 2
_SCALE = 0.02


def _run_serving_latency(ctx) -> dict:
    from repro.data import load_dataset, split_dataset
    from repro.matching import EMPipeline
    from repro.persistence import save_model
    from repro.serving import MatchDaemon, MatchEngine, run_loadtest

    import tempfile
    from pathlib import Path

    splits = split_dataset(load_dataset("S-FZ", scale=_SCALE))
    pipeline = EMPipeline(automl="autosklearn", seed=7, max_models=3)
    pipeline.fit(splits.train, splits.valid)

    with tempfile.TemporaryDirectory(prefix="repro-bench-serving") as tmp:
        model_path = Path(tmp) / "model.pkl"
        save_model(pipeline, model_path)
        engine = MatchEngine(model_path, "S-FZ")

        # In-line contract check: fused == serial, bit for bit.
        pairs = [
            {"left": dict(p.left), "right": dict(p.right)}
            for p in splits.test
        ]
        batched_proba, batched_labels = engine.match_pairs(pairs)
        serial = [engine.match_pairs([pair]) for pair in pairs]
        if not np.array_equal(
            batched_proba, np.concatenate([s[0] for s in serial])
        ) or not np.array_equal(
            batched_labels, np.concatenate([s[1] for s in serial])
        ):
            raise AssertionError(
                "batched and one-at-a-time serving predictions diverge"
            )

        daemon = MatchDaemon(engine, ("127.0.0.1", 0), max_delay_seconds=0.002)
        thread = threading.Thread(target=daemon.serve_forever, daemon=True)
        thread.start()
        try:
            report = run_loadtest(
                "127.0.0.1",
                daemon.port,
                "S-FZ",
                requests=_REQUESTS,
                concurrency=_CONCURRENCY,
                pairs_per_request=_PAIRS_PER_REQUEST,
                scale=_SCALE,
            )
        finally:
            daemon.stop()
            thread.join(timeout=10)
            daemon.close()

    if report["errors"]:
        raise AssertionError(
            f"loadtest saw {report['errors']} failed requests: "
            f"{report['error_messages']}"
        )
    server = report["server_metrics"]
    served = server["histograms"]["serving.request.seconds"]["count"]
    if served < _REQUESTS:
        raise AssertionError(
            f"server histogram recorded {served} < {_REQUESTS} requests"
        )

    ctx.metric("p50_ms", report["client_latency_ms"]["p50"])
    ctx.metric("p99_ms", report["client_latency_ms"]["p99"])
    ctx.metric("requests_per_second", report["requests_per_second"])
    ctx.metric(
        "batch_flushes", server["counters"].get("serving.batch.flushes", 0)
    )
    return {
        "dataset": "S-FZ",
        "scale": _SCALE,
        "requests": _REQUESTS,
        "concurrency": _CONCURRENCY,
        "pairs_per_request": _PAIRS_PER_REQUEST,
        "server_p50_s": server["histograms"]["serving.request.seconds"]["p50"],
        "server_p99_s": server["histograms"]["serving.request.seconds"]["p99"],
    }


SPECS.append(
    BenchmarkSpec(
        name="serving_latency",
        tier="quick",
        run=_run_serving_latency,
        description="online daemon: seeded loadtest latency + throughput "
        "with the fused==serial prediction contract asserted in-run",
        metrics=(
            # Latency on shared CI runners is noisy; the wide bands fail
            # on collapses (an accidental cold transform per request),
            # not scheduler jitter.
            MetricPolicy("p50_ms", unit="ms", tolerance=3.0),
            MetricPolicy("p99_ms", unit="ms", tolerance=3.0),
            MetricPolicy(
                "requests_per_second",
                unit="1/s",
                direction="higher_better",
                tolerance=0.75,
            ),
            # Fusion must keep happening at all: ungated context metric.
            MetricPolicy("batch_flushes", direction="two_sided", gate=False),
        ),
        profile_memory=False,
    )
)
