"""Component micro-benchmarks: the substrate pieces, timed in isolation.

Migrated from ``benchmarks/bench_components.py``: dataset-generation
throughput, transformer embedding throughput, the full (uncached)
adapter transform plus its cache-replay contract, GBM training, and the
telemetry disabled-overhead guarantee. All quick tier — these are the
per-PR regression sentinels for the hot paths ROADMAP items 1–3 aim
at.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench.spec import BenchmarkSpec, MetricPolicy

#: Registered by :func:`repro.bench.suites.load_suites`.
SPECS: list[BenchmarkSpec] = []

#: Throughput metrics compare across machines only loosely; the wide
#: higher-better band fails on collapses (>4x slowdown), not jitter.
_THROUGHPUT = dict(direction="higher_better", tolerance=0.75)


def _run_dataset_generation(ctx) -> dict:
    from repro.data import load_dataset

    rounds = 3
    records = 0
    best = float("inf")
    for seed in range(rounds):
        start = time.perf_counter()
        dataset = load_dataset("S-DA", scale=0.08, seed=seed)
        best = min(best, time.perf_counter() - start)
        records = len(dataset)
    ctx.metric("records", records)
    ctx.metric("records_per_second", records / best)
    ctx.metric("generate_seconds", best)
    return {"dataset": "S-DA", "scale": 0.08, "rounds": rounds, "records": records}


SPECS.append(
    BenchmarkSpec(
        name="dataset_generation",
        tier="quick",
        run=_run_dataset_generation,
        description="generate a ~1k-pair benchmark dataset (best of 3)",
        metrics=(
            MetricPolicy("records_per_second", unit="1/s", **_THROUGHPUT),
            MetricPolicy("generate_seconds", unit="s", tolerance=2.0),
            # Fixed seed + fixed scale => the record count is exact.
            MetricPolicy("records", direction="two_sided", tolerance=0.0),
        ),
    )
)


def _run_embedding_throughput(ctx) -> dict:
    from repro.data import load_dataset
    from repro.transformers import load_pretrained

    dataset = load_dataset("S-IA", scale=0.08)
    encoder = load_pretrained("albert")
    attributes = dataset.schema.attribute_names
    texts = [
        encoder.pair_text(
            " ".join(pair.text_of("left", a) for a in attributes),
            " ".join(pair.text_of("right", a) for a in attributes),
        )
        for pair in list(dataset)[:200]
    ]
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        out = encoder.embed_sequences(texts)
        best = min(best, time.perf_counter() - start)
    ctx.metric("sequences", len(texts))
    ctx.metric("sequences_per_second", len(texts) / best)
    ctx.metric("embed_seconds", best)
    return {
        "embedder": "albert",
        "sequences": len(texts),
        "output_dim": int(out.shape[1]),
    }


SPECS.append(
    BenchmarkSpec(
        name="embedding_throughput",
        tier="quick",
        run=_run_embedding_throughput,
        description="embed 200 pair sequences with the ALBERT encoder",
        metrics=(
            MetricPolicy("sequences_per_second", unit="1/s", **_THROUGHPUT),
            MetricPolicy("embed_seconds", unit="s", tolerance=2.0),
        ),
    )
)


def _run_adapter_transform(ctx) -> dict:
    from repro.adapter import EMAdapter, clear_adapter_cache
    from repro.data import load_dataset

    dataset = load_dataset("S-IA", scale=0.08)

    # Uncached leg: the full hybrid+albert tokenize/embed/combine cost.
    uncached = EMAdapter("hybrid", "albert", cache=False)
    clear_adapter_cache()
    start = time.perf_counter()
    out = uncached.transform(dataset)
    uncached_seconds = time.perf_counter() - start

    # Cached leg: a second transform through the memory cache must be
    # pure lookup — exactly one memory miss (the seeding pass) and one
    # memory hit (the replay), whatever the disk cache holds.
    cached = EMAdapter("hybrid", "albert")
    clear_adapter_cache()
    cached.transform(dataset)
    start = time.perf_counter()
    cached.transform(dataset)
    replay_seconds = time.perf_counter() - start
    clear_adapter_cache()

    ctx.metric("pairs", len(dataset))
    ctx.metric("pairs_per_second", len(dataset) / uncached_seconds)
    ctx.metric("uncached_seconds", uncached_seconds)
    ctx.metric("cache_replay_seconds", replay_seconds)
    return {
        "dataset": "S-IA",
        "scale": 0.08,
        "adapter": "hybrid+albert+mean",
        "pairs": len(dataset),
        "output_dim": int(out.shape[1]),
    }


SPECS.append(
    BenchmarkSpec(
        name="adapter_transform",
        tier="quick",
        run=_run_adapter_transform,
        description="full hybrid+albert adapter transform, uncached + cache replay",
        counters=(
            "adapter.cache.memory.hits",
            "adapter.cache.memory.misses",
        ),
        metrics=(
            MetricPolicy("pairs_per_second", unit="1/s", **_THROUGHPUT),
            MetricPolicy("uncached_seconds", unit="s", tolerance=2.0),
            MetricPolicy("cache_replay_seconds", unit="s", tolerance=3.0),
            MetricPolicy("pairs", direction="two_sided", tolerance=0.0),
            # Exactly one memory miss (seed) and one hit (replay) per
            # run — deterministic, so zero band.
            MetricPolicy(
                "adapter.cache.memory.hits", direction="two_sided", tolerance=0.0
            ),
            MetricPolicy(
                "adapter.cache.memory.misses",
                direction="two_sided",
                tolerance=0.0,
            ),
        ),
    )
)


def _run_entity_embedding_cache(ctx) -> dict:
    import os
    import tempfile

    from repro.adapter import EMAdapter, clear_entity_store
    from repro.data import load_dataset

    dataset = load_dataset("S-DA", scale=0.06)

    # Hermetic disk tier: the store's hit/miss counts are gated exactly,
    # so the run must not see records a previous run left behind. The
    # dataset is loaded above, before the swap, to keep its cache warm.
    with tempfile.TemporaryDirectory(prefix="bench-entity-") as scratch:
        previous = os.environ.get("REPRO_CACHE_DIR")
        os.environ["REPRO_CACHE_DIR"] = scratch
        try:
            # Cold leg: entity store off — every pair pays the full
            # transformer forward, exactly the pre-store per-pair cost.
            cold = EMAdapter("hybrid", "albert", cache=False, entity_cache=False)
            start = time.perf_counter()
            cold_out = cold.transform(dataset)
            cold_seconds = time.perf_counter() - start

            # Warm leg: populate the store once, transform again —
            # every couple resolves to a stored readout vector and the
            # transformer never runs. The pair-matrix cache stays off
            # so the store alone carries the replay.
            clear_entity_store()
            warm = EMAdapter("hybrid", "albert", cache=False, entity_cache=True)
            start = time.perf_counter()
            warm.transform(dataset)
            populate_seconds = time.perf_counter() - start
            start = time.perf_counter()
            warm_out = warm.transform(dataset)
            warm_seconds = time.perf_counter() - start
        finally:
            clear_entity_store()
            if previous is None:
                os.environ.pop("REPRO_CACHE_DIR", None)
            else:
                os.environ["REPRO_CACHE_DIR"] = previous

    if not np.array_equal(cold_out, warm_out):
        raise AssertionError("entity store changed the transform bits")
    speedup = cold_seconds / warm_seconds
    if speedup < 2.0:
        raise AssertionError(
            f"warm-entity replay only {speedup:.2f}x over cold encoding"
        )
    ctx.metric("pairs", len(dataset))
    ctx.metric("cold_seconds", cold_seconds)
    ctx.metric("populate_seconds", populate_seconds)
    ctx.metric("warm_seconds", warm_seconds)
    ctx.metric("warm_speedup", speedup)
    return {
        "dataset": "S-DA",
        "scale": 0.06,
        "adapter": "hybrid+albert+mean",
        "pairs": len(dataset),
        "output_dim": int(cold_out.shape[1]),
    }


SPECS.append(
    BenchmarkSpec(
        name="entity_embedding_cache",
        tier="quick",
        run=_run_entity_embedding_cache,
        description="adapter transform cold vs warm through the entity store",
        counters=(
            "adapter.entity_cache.memory.hits",
            "adapter.entity_cache.memory.misses",
        ),
        metrics=(
            MetricPolicy("cold_seconds", unit="s", tolerance=2.0),
            MetricPolicy("populate_seconds", unit="s", tolerance=2.0),
            MetricPolicy("warm_seconds", unit="s", tolerance=3.0),
            # The acceptance floor is the in-run >=2x assertion; the
            # gate additionally holds the replay within an order of
            # magnitude of the committed baseline.
            MetricPolicy(
                "warm_speedup", direction="higher_better", tolerance=0.9
            ),
            MetricPolicy("pairs", direction="two_sided", tolerance=0.0),
            # Store traffic is a pure function of the dataset's entity
            # structure, never of disk state — exact.
            MetricPolicy(
                "adapter.entity_cache.memory.hits",
                direction="two_sided",
                tolerance=0.0,
            ),
            MetricPolicy(
                "adapter.entity_cache.memory.misses",
                direction="two_sided",
                tolerance=0.0,
            ),
        ),
    )
)


def _run_gbm_training(ctx) -> dict:
    from repro.ml import GradientBoostingClassifier

    from repro.config import rng_for

    rng = rng_for("bench", "gbm_training")
    X = rng.normal(size=(2000, 200))
    y = (X[:, :3].sum(axis=1) > 0).astype(np.int64)
    best = float("inf")
    trees = 0
    for _ in range(2):
        start = time.perf_counter()
        model = GradientBoostingClassifier(
            n_estimators=100, max_depth=4, colsample=0.7, seed=0
        ).fit(X, y)
        best = min(best, time.perf_counter() - start)
        trees = model.n_trees_
    ctx.metric("fit_seconds", best)
    ctx.metric("samples_per_second", X.shape[0] / best)
    ctx.metric("trees", trees)
    return {"samples": 2000, "features": 200, "trees": trees}


SPECS.append(
    BenchmarkSpec(
        name="gbm_training",
        tier="quick",
        run=_run_gbm_training,
        description="train the default GBM on a 2k x 200 matrix (best of 2)",
        metrics=(
            MetricPolicy("samples_per_second", unit="1/s", **_THROUGHPUT),
            MetricPolicy("fit_seconds", unit="s", tolerance=2.0),
            MetricPolicy("trees", direction="two_sided", tolerance=0.0),
        ),
    )
)


def _run_telemetry_overhead(ctx) -> dict:
    from repro import telemetry

    calls = 10_000
    best = float("inf")
    total = 0
    # The runner records every spec; this one measures the *disabled*
    # cost, so telemetry is switched off for the timed loops and the
    # runner's recorder reinstalled afterwards.
    previous = telemetry.disable()
    try:
        for _ in range(3):
            start = time.perf_counter()
            total = 0
            for index in range(calls):
                with telemetry.span("bench.noop", index=index):
                    total += index
                telemetry.counter("bench.noop").inc()
            best = min(best, time.perf_counter() - start)
    finally:
        if previous is not None:
            telemetry.enable(previous)
    if total != calls * (calls - 1) // 2:
        raise AssertionError("instrumented loop computed the wrong total")
    ctx.metric("ns_per_disabled_call", best / calls * 1e9)

    # Enabled leg: the per-instrument lock added for the threaded
    # serving daemon must stay negligible on the single-threaded path —
    # an uncontended lock acquire is tens of nanoseconds, and a counter
    # increment must stay within the low-microsecond regime.
    from repro.telemetry import MetricsRegistry

    registry = MetricsRegistry()
    instrument = registry.counter("bench.enabled")
    best_enabled = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(calls):
            instrument.inc()
        best_enabled = min(best_enabled, time.perf_counter() - start)
    if instrument.value != 3 * calls:
        raise AssertionError("enabled counter lost increments")
    ns_per_inc = best_enabled / calls * 1e9
    if ns_per_inc > 5_000:
        raise AssertionError(
            f"locked counter increment costs {ns_per_inc:.0f}ns; the "
            "thread-safety lock is no longer negligible"
        )
    ctx.metric("ns_per_enabled_inc", ns_per_inc)
    return {"calls": calls, "rounds": 3}


SPECS.append(
    BenchmarkSpec(
        name="telemetry_overhead",
        tier="quick",
        run=_run_telemetry_overhead,
        description="disabled span+counter cost per call (the <5µs contract)",
        profile_memory=False,
        metrics=(
            # The no-op-when-off guarantee: nanosecond regime, wide band
            # for scheduler noise, but a 5x blowup is a real regression.
            MetricPolicy("ns_per_disabled_call", unit="ns", tolerance=4.0),
            # Enabled, locked counter increment: same wide band; the
            # in-run 5µs assertion is the hard acceptance floor.
            MetricPolicy("ns_per_enabled_inc", unit="ns", tolerance=4.0),
        ),
    )
)
