"""Built-in benchmark suites.

Each suite module builds its specs into a module-level ``SPECS`` list;
:func:`load_suites` — the one entry point the CLI and tests use —
registers them all. Re-registration of the same spec objects is a
no-op, so repeated calls (and calls after a
:func:`~repro.bench.spec.scratch_registry` block discarded the
registry) are safe.
"""

from __future__ import annotations

__all__ = ["load_suites"]


def load_suites() -> None:
    """Import every built-in suite and register its specs."""
    from repro.bench.spec import register
    from repro.bench.suites import (
        ablations,
        analysis,
        components,
        serving,
        tables,
    )

    for module in (ablations, analysis, components, serving, tables):
        for spec in module.SPECS:
            register(spec)
