"""The ``analysis`` spec: cold vs warm full-repo lint.

Migrated from the bespoke ``benchmarks/bench_analysis.py`` harness (its
pytest shape-assertions now run against this spec). The detail payload
keeps the exact keys the version-1 ``BENCH_analysis.json`` committed —
``salt``, ``modules``, ``rules``, ``findings``, ``cold``, ``warm``,
``warm_over_cold``, ``cost_pass`` — so downstream readers survive the
migration; the envelope's ``schema_version`` is bumped to 2.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import repro
from repro.bench.spec import BenchmarkSpec, MetricPolicy

#: Registered by :func:`repro.bench.suites.load_suites`.
SPECS: list[BenchmarkSpec] = []

#: The source tree the lint benchmark runs over: the directory holding
#: the ``repro`` package (``src/`` in the repo's editable layout).
SRC_ROOT = Path(repro.__file__).resolve().parents[1]


def run_analysis_benchmark(cache_dir: Path, warm_rounds: int = 3) -> dict:
    """Time one cold and ``warm_rounds`` warm full-repo analysis runs.

    Returns the legacy detail payload. ``cache_dir`` must not hold a
    previous cache — the first run is the cold leg by definition.
    """
    from repro.analysis import (
        AnalysisCache,
        Project,
        all_rules,
        analysis_salt,
        analyze_project,
    )
    from repro.analysis.cost import cost_analysis

    salt = analysis_salt(SRC_ROOT)

    cold_cache = AnalysisCache(cache_dir, salt=salt)
    start = time.perf_counter()
    cold_findings = analyze_project([SRC_ROOT], cache=cold_cache)
    cold_seconds = time.perf_counter() - start

    warm_seconds = []
    warm_hits = warm_misses = 0
    warm_findings: list = []
    for _ in range(warm_rounds):
        warm_cache = AnalysisCache(cache_dir, salt=salt)
        start = time.perf_counter()
        warm_findings = analyze_project([SRC_ROOT], cache=warm_cache)
        warm_seconds.append(time.perf_counter() - start)
        warm_hits, warm_misses = warm_cache.hits, warm_cache.misses

    # Cost fixpoint in isolation: cold (fresh project, summaries built
    # from source) vs warm (summaries replayed from the cache above,
    # only the multiplicity propagation itself re-runs).
    start = time.perf_counter()
    cold_project = Project.load([SRC_ROOT])
    cost_analysis(cold_project)
    cost_cold_seconds = time.perf_counter() - start

    cost_warm_seconds = []
    for _ in range(warm_rounds):
        warm_project = Project.load(
            [SRC_ROOT], cache=AnalysisCache(cache_dir, salt=salt)
        )
        start = time.perf_counter()
        cost_analysis(warm_project)
        cost_warm_seconds.append(time.perf_counter() - start)

    modules = len(cold_project.modules)
    return {
        "benchmark": "repro.analysis full-repo lint of src/",
        "salt": salt,
        "modules": modules,
        "rules": len(all_rules()),
        "findings": {
            "cold": len(cold_findings),
            "warm": len(warm_findings),
        },
        "cold": {
            "seconds": round(cold_seconds, 4),
            "cache_hits": cold_cache.hits,
            "cache_misses": cold_cache.misses,
        },
        "warm": {
            "seconds": round(min(warm_seconds), 4),
            "rounds": warm_rounds,
            "cache_hits": warm_hits,
            "cache_misses": warm_misses,
        },
        "warm_over_cold": round(min(warm_seconds) / cold_seconds, 4),
        "cost_pass": {
            "cold_seconds": round(cost_cold_seconds, 4),
            "warm_seconds": round(min(cost_warm_seconds), 4),
            "hotspots": len(cost_analysis(cold_project).hotspots()),
        },
    }


def _run(ctx) -> dict:
    with tempfile.TemporaryDirectory(prefix="repro-bench-analysis-") as tmp:
        detail = run_analysis_benchmark(Path(tmp) / "cache")
    ctx.metric("cold_seconds", detail["cold"]["seconds"])
    ctx.metric("warm_seconds", detail["warm"]["seconds"])
    ctx.metric("warm_over_cold", detail["warm_over_cold"])
    ctx.metric("warm_cache_hits", detail["warm"]["cache_hits"])
    ctx.metric("warm_cache_misses", detail["warm"]["cache_misses"])
    ctx.metric("findings", detail["findings"]["cold"])
    ctx.metric("modules", detail["modules"])
    ctx.metric("cost_warm_seconds", detail["cost_pass"]["warm_seconds"])
    ctx.metric("hotspots", detail["cost_pass"]["hotspots"])
    return detail


SPECS.append(
    BenchmarkSpec(
        name="analysis",
        tier="quick",
        run=_run,
        description="repro.analysis full-repo lint: cold vs warm cache",
        metrics=(
            MetricPolicy("cold_seconds", unit="s", tolerance=2.0),
            MetricPolicy("warm_seconds", unit="s", tolerance=2.0),
            # Machine-independent-ish ratio: the cache's perf contract.
            MetricPolicy("warm_over_cold", tolerance=1.5),
            # The lint baseline ships empty; any finding is a regression.
            MetricPolicy("findings", direction="two_sided", tolerance=0.0),
            # A warm run must replay every module from the cache.
            MetricPolicy("warm_cache_misses", direction="two_sided", tolerance=0.0),
            MetricPolicy("cost_warm_seconds", unit="s", tolerance=2.0),
            # Counts move legitimately as the repo grows: record, don't gate.
            MetricPolicy("warm_cache_hits", direction="two_sided", gate=False),
            MetricPolicy("modules", direction="two_sided", gate=False),
            MetricPolicy("hotspots", direction="two_sided", gate=False),
        ),
    )
)
