"""The ``BENCH_<name>.json`` schema and its validator.

The same schema is checked in at ``docs/bench_schema.json`` (a sync
test keeps the two identical) so CI and external tooling can validate
benchmark baselines without importing this package. Validation reuses
the stdlib Draft-7-subset validator from :mod:`repro.telemetry.schema`.
"""

from __future__ import annotations

from repro.telemetry.schema import validate_instance

__all__ = ["BENCH_SCHEMA", "validate_payload"]

_ENVIRONMENT = {
    "type": "object",
    "properties": {
        "python": {"type": "string"},
        "implementation": {"type": "string"},
        "platform": {"type": "string"},
        "machine": {"type": "string"},
        "cpu_count": {"type": "integer", "minimum": 1},
        "numpy": {"type": "string"},
        "repro": {"type": "string"},
        "scale": {"type": "number", "minimum": 0},
        "max_models": {"type": "integer", "minimum": 1},
    },
    "required": [
        "python",
        "platform",
        "machine",
        "cpu_count",
        "numpy",
        "repro",
        "scale",
    ],
    "additionalProperties": False,
}

_METRIC = {
    "type": "object",
    "properties": {
        "value": {"type": "number"},
        "unit": {"type": "string"},
        "direction": {"enum": ["lower_better", "higher_better", "two_sided"]},
        "tolerance": {"type": "number", "minimum": 0},
        "gate": {"type": "boolean"},
    },
    "required": ["value", "direction", "tolerance", "gate"],
    "additionalProperties": False,
}

#: One ``BENCH_<name>.json`` file (see ``docs/bench_schema.json``).
BENCH_SCHEMA: dict = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro.bench baseline file",
    "description": (
        "One BENCH_<name>.json benchmark result emitted by the "
        "repro.bench registry (repro-em bench): a schema-versioned, "
        "environment-stamped set of metrics with the tolerance "
        "policies the regression gate applies, plus the spec's "
        "free-form detail payload."
    ),
    "type": "object",
    "properties": {
        "schema_version": {"type": "integer", "minimum": 2},
        "name": {"type": "string"},
        "tier": {"enum": ["quick", "full"]},
        "created_unix": {"type": "number"},
        "environment": _ENVIRONMENT,
        "metrics": {"type": "object", "additionalProperties": _METRIC},
        "detail": {"type": "object"},
    },
    "required": [
        "schema_version",
        "name",
        "tier",
        "environment",
        "metrics",
        "detail",
    ],
    "additionalProperties": False,
}


def validate_payload(payload: object) -> None:
    """Raise :class:`ValueError` listing every schema violation."""
    errors = validate_instance(payload, BENCH_SCHEMA)
    if errors:
        raise ValueError(
            "invalid benchmark payload: " + "; ".join(errors)
        )
