"""Stateless neural ops shared by the forward-only and trainable networks."""

from __future__ import annotations

import numpy as np

__all__ = ["softmax", "gelu", "relu", "sigmoid", "layer_norm"]


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def gelu(x: np.ndarray) -> np.ndarray:
    """Gaussian Error Linear Unit (tanh approximation, as in BERT)."""
    return 0.5 * x * (1.0 + np.tanh(0.7978845608 * (x + 0.044715 * x**3)))


def hard_gelu(x: np.ndarray) -> np.ndarray:
    """Piecewise-linear GELU approximation: ``x * clip(0.25x + 0.5, 0, 1)``.

    Transcendental-free, so it is ~10x cheaper on large arrays; the frozen
    random-feature encoders use it because only the qualitative shape of
    the nonlinearity matters there, not its exact curvature.
    """
    return x * np.clip(0.25 * x + 0.5, 0.0, 1.0)


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Logistic sigmoid with clipping for numerical stability."""
    return 1.0 / (1.0 + np.exp(-np.clip(x, -35.0, 35.0)))


def layer_norm(x: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Zero-mean unit-variance normalization over the last axis."""
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    return (x - mean) / np.sqrt(var + eps)
