"""Optimizers for the manual-gradient networks (SGD and Adam)."""

from __future__ import annotations

import numpy as np

__all__ = ["SGD", "Adam"]


class SGD:
    """Vanilla SGD with optional momentum."""

    def __init__(self, lr: float = 0.01, momentum: float = 0.0) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.lr = lr
        self.momentum = momentum
        self._velocity: dict[int, np.ndarray] = {}

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        """Update ``params`` in place from matching ``grads``."""
        for i, (param, grad) in enumerate(zip(params, grads)):
            if self.momentum > 0:
                v = self._velocity.get(i)
                if v is None:
                    v = np.zeros_like(param)
                v = self.momentum * v - self.lr * grad
                self._velocity[i] = v
                param += v
            else:
                param -= self.lr * grad


class Adam:
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}
        self._t = 0

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        """Update ``params`` in place from matching ``grads``."""
        self._t += 1
        for i, (param, grad) in enumerate(zip(params, grads)):
            m = self._m.get(i)
            v = self._v.get(i)
            if m is None:
                m = np.zeros_like(param)
                v = np.zeros_like(param)
            m = self.beta1 * m + (1 - self.beta1) * grad
            v = self.beta2 * v + (1 - self.beta2) * grad**2
            self._m[i] = m
            self._v[i] = v
            m_hat = m / (1 - self.beta1**self._t)
            v_hat = v / (1 - self.beta2**self._t)
            param -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
