"""Minimal manual-gradient network: an MLP classifier trained with Adam.

This is the trainable half of the neural substrate; the frozen
transformers never need gradients, but the DeepMatcher baseline does. The
MLP keeps explicit forward caches and hand-derived backward passes —
enough machinery for the paper's comparison network without dragging in a
general autograd engine.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import NotFittedError
from repro.nn.optim import Adam

__all__ = ["MLPClassifier"]


def _relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


class MLPClassifier:
    """Two-hidden-layer binary MLP with dropout, class weighting and Adam.

    Trained on logistic loss with early stopping on a validation split.
    Probabilities are sigmoid outputs; the network is intentionally small
    (the DeepMatcher classifier head is a 2-layer HighwayNet of similar
    capacity).
    """

    def __init__(
        self,
        hidden: int = 64,
        epochs: int = 30,
        batch_size: int = 64,
        lr: float = 1e-3,
        dropout: float = 0.2,
        weight_decay: float = 1e-5,
        class_weighted: bool = True,
        patience: int = 5,
        seed: int = 0,
    ) -> None:
        self.hidden = hidden
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.dropout = dropout
        self.weight_decay = weight_decay
        self.class_weighted = class_weighted
        self.patience = patience
        self.seed = seed

    # ---------------------------------------------------------------- fit

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        X_valid: np.ndarray | None = None,
        y_valid: np.ndarray | None = None,
    ) -> "MLPClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        rng = np.random.default_rng(self.seed)
        d = X.shape[1]
        h = self.hidden

        def init(rows: int, cols: int) -> np.ndarray:
            return rng.normal(0.0, np.sqrt(2.0 / rows), size=(rows, cols))

        self._params = [
            init(d, h), np.zeros(h),      # W1, b1
            init(h, h), np.zeros(h),      # W2, b2
            init(h, 1).reshape(h), 0.0,   # w3, b3 (scalar handled below)
        ]
        # Keep b3 as a 1-element array so the optimizer can update in place.
        self._params[5] = np.zeros(1)

        if self.class_weighted:
            pos = max(1.0, float(y.sum()))
            neg = max(1.0, float(len(y) - y.sum()))
            w_pos = len(y) / (2.0 * pos)
            w_neg = len(y) / (2.0 * neg)
        else:
            w_pos = w_neg = 1.0

        optimizer = Adam(lr=self.lr)
        best_loss = np.inf
        best_params = [p.copy() for p in self._params]
        stale = 0

        for _epoch in range(self.epochs):
            order = rng.permutation(len(y))
            for start in range(0, len(y), self.batch_size):
                batch = order[start : start + self.batch_size]
                grads = self._backward(X[batch], y[batch], w_pos, w_neg, rng)
                optimizer.step(self._params, grads)

            if X_valid is not None and y_valid is not None and len(y_valid):
                # Validation pass: rng=None switches dropout off.
                proba = self._forward(
                    np.asarray(X_valid, dtype=np.float64), rng=None
                )
                eps = 1e-9
                yv = np.asarray(y_valid, dtype=np.float64)
                loss = float(
                    -np.mean(
                        yv * np.log(proba + eps)
                        + (1 - yv) * np.log(1 - proba + eps)
                    )
                )
                if loss < best_loss - 1e-5:
                    best_loss = loss
                    best_params = [p.copy() for p in self._params]
                    stale = 0
                else:
                    stale += 1
                    if stale >= self.patience:
                        break
        if best_loss < np.inf:
            self._params = best_params
        self._fitted = True
        return self

    # ------------------------------------------------------------ forward

    def _forward(
        self,
        X: np.ndarray,
        rng: np.random.Generator | None = None,
        cache: dict | None = None,
    ) -> np.ndarray:
        W1, b1, W2, b2, w3, b3 = self._params
        z1 = X @ W1 + b1
        a1 = _relu(z1)
        if rng is not None and self.dropout > 0:
            mask1 = rng.random(a1.shape) >= self.dropout
            a1 = a1 * mask1 / (1.0 - self.dropout)
        else:
            mask1 = None
        z2 = a1 @ W2 + b2
        a2 = _relu(z2)
        if rng is not None and self.dropout > 0:
            mask2 = rng.random(a2.shape) >= self.dropout
            a2 = a2 * mask2 / (1.0 - self.dropout)
        else:
            mask2 = None
        logits = a2 @ w3 + b3[0]
        proba = 1.0 / (1.0 + np.exp(-np.clip(logits, -35, 35)))
        if cache is not None:
            cache.update(
                X=X, z1=z1, a1=a1, z2=z2, a2=a2, proba=proba,
                mask1=mask1, mask2=mask2,
            )
        return proba

    def _backward(
        self,
        X: np.ndarray,
        y: np.ndarray,
        w_pos: float,
        w_neg: float,
        rng: np.random.Generator,
    ) -> list[np.ndarray]:
        W1, b1, W2, b2, w3, b3 = self._params
        cache: dict = {}
        proba = self._forward(X, rng=rng, cache=cache)
        n = len(y)
        sample_w = np.where(y == 1, w_pos, w_neg)
        # d(loss)/d(logits) for weighted binary cross-entropy.
        dlogits = sample_w * (proba - y) / n

        a2, a1 = cache["a2"], cache["a1"]
        dw3 = a2.T @ dlogits + self.weight_decay * w3
        db3 = np.array([dlogits.sum()])
        da2 = np.outer(dlogits, w3)
        if cache["mask2"] is not None:
            da2 = da2 * cache["mask2"] / (1.0 - self.dropout)
        dz2 = da2 * (cache["z2"] > 0)
        dW2 = a1.T @ dz2 + self.weight_decay * W2
        db2 = dz2.sum(axis=0)
        da1 = dz2 @ W2.T
        if cache["mask1"] is not None:
            da1 = da1 * cache["mask1"] / (1.0 - self.dropout)
        dz1 = da1 * (cache["z1"] > 0)
        dW1 = cache["X"].T @ dz1 + self.weight_decay * W1
        db1 = dz1.sum(axis=0)
        return [dW1, db1, dW2, db2, dw3, db3]

    # ---------------------------------------------------------- inference

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if not getattr(self, "_fitted", False):
            raise NotFittedError("MLPClassifier must be fitted first")
        p1 = self._forward(np.asarray(X, dtype=np.float64))
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Class labels at ``threshold`` on P(match)."""
        return (self.predict_proba(X)[:, 1] >= threshold).astype(np.int64)
