"""Forward-only transformer encoder (the simulated pre-trained backbone).

This is a real multi-head self-attention encoder — per-layer Q/K/V/output
projections, GELU feed-forward blocks, residual connections and layer
normalization — whose weights are drawn deterministically from a seed
instead of being learned. Three design choices make random weights behave
like a *pre-trained* featurizer for entity matching (DESIGN.md §2), each
mirroring a pattern documented in trained checkpoints:

* **Tied query/key projections with cosine logits.** With ``W_q ≈ W_k``
  and per-head L2 normalization, the attention logit between tokens *i*
  and *j* is (up to the sharpness gain) the cosine similarity of their
  representations — the "matching head" pattern of trained BERT layers.
  Identical or near-identical surface tokens, which the hash embeddings
  map to nearby vectors, attend strongly to each other.
* **Self-attention masking + segment-aware cross heads.** When the caller
  provides segment ids (the two entities of an EM pair), the diagonal is
  masked and half the heads may only attend *across* segments. A token
  with a duplicate on the other side of ``[SEP]`` then receives its twin's
  content through the value path (soft alignment, as in DeepER's
  decomposable attention and in BERT's inter-sentence heads); a token
  without one receives a diffuse mixture. After the residual, matched
  tokens carry roughly doubled content vectors while unmatched ones do
  not — a first-order, mean-pool-surviving signal of pair similarity.
* **Content-preserving value path.** The value projection is a damped
  identity plus noise, so attention mixes token *content* rather than
  scrambling it.

``attention_temperature`` divides the logits (lower = sharper attention)
and is one of the knobs that differentiates the five simulated
architectures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.functional import hard_gelu, layer_norm, softmax

__all__ = ["EncoderConfig", "TransformerEncoder"]

_NEG_INF = np.float64(-1e9)  # Cast to float32 where biases are assembled.


@dataclass(frozen=True)
class EncoderConfig:
    """Architecture hyper-parameters of one simulated pre-trained model."""

    dim: int = 96
    n_layers: int = 4
    n_heads: int = 4
    ffn_multiplier: int = 2
    attention_temperature: float = 1.0
    attention_sharpness: float = 8.0  # Gain on cosine attention logits.
    ffn_scale: float = 0.15  # Residual weight of the feed-forward block.
    value_gating: bool = True  # Second-order (sharpness-gated) attention.
    share_layers: bool = False  # ALBERT-style cross-layer parameter sharing.
    qk_noise: float = 0.05  # Deviation between W_q and W_k.
    cross_segment_heads: bool = True  # Half the heads attend across [SEP].
    max_len: int = 128
    seed: int = 0

    def __post_init__(self) -> None:
        if self.dim % self.n_heads != 0:
            raise ValueError(
                f"dim {self.dim} not divisible by n_heads {self.n_heads}"
            )


@dataclass
class _LayerWeights:
    w_q: np.ndarray
    w_k: np.ndarray
    w_v: np.ndarray
    w_o: np.ndarray
    w_ffn1: np.ndarray
    b_ffn1: np.ndarray
    w_ffn2: np.ndarray


def _orthogonal(rng: np.random.Generator, rows: int, cols: int) -> np.ndarray:
    """Random matrix with orthonormal-ish columns, scaled for unit gain."""
    raw = rng.normal(size=(rows, cols))
    q, _ = np.linalg.qr(raw if rows >= cols else raw.T)
    if rows < cols:
        q = q.T
    return q[:rows, :cols]


def _normalize_heads(x: np.ndarray) -> np.ndarray:
    """L2-normalize the trailing (head-dim) axis."""
    norm = np.linalg.norm(x, axis=-1, keepdims=True)
    return x / np.maximum(norm, 1e-9)


class TransformerEncoder:
    """Seeded random-weight transformer encoder (forward pass only)."""

    def __init__(self, config: EncoderConfig) -> None:
        self.config = config
        rng = np.random.default_rng(config.seed)
        n_unique = 1 if config.share_layers else config.n_layers
        self._layers = [self._init_layer(rng) for _ in range(n_unique)]
        self._position = self._init_positions(rng).astype(np.float32)
        self._segment = (
            0.1 * rng.normal(size=(2, config.dim)) / np.sqrt(config.dim)
        ).astype(np.float32)

    def _init_layer(self, rng: np.random.Generator) -> _LayerWeights:
        dim = self.config.dim
        hidden = dim * self.config.ffn_multiplier
        w_q = _orthogonal(rng, dim, dim)
        # Tied Q/K with controlled deviation: the similarity-kernel prior.
        w_k = w_q + self.config.qk_noise * rng.normal(size=(dim, dim)) / np.sqrt(dim)
        # Value path: damped identity plus noise, preserving token content.
        w_v = 0.85 * np.eye(dim) + 0.15 * _orthogonal(rng, dim, dim)
        w_o = 0.9 * np.eye(dim) + 0.1 * _orthogonal(rng, dim, dim)
        w_ffn1 = _orthogonal(rng, dim, hidden) * np.sqrt(2.0)
        b_ffn1 = 0.1 * rng.normal(size=hidden)
        w_ffn2 = _orthogonal(rng, hidden, dim) * 0.5
        # Weights are float32: the forward pass is compute-bound and the
        # random-feature readout does not need double precision.
        return _LayerWeights(
            *(
                m.astype(np.float32)
                for m in (w_q, w_k, w_v, w_o, w_ffn1, b_ffn1, w_ffn2)
            )
        )

    def _init_positions(self, rng: np.random.Generator) -> np.ndarray:
        """Sinusoidal position encodings with a small gain."""
        dim = self.config.dim
        positions = np.arange(self.config.max_len)[:, None]
        dims = np.arange(dim)[None, :]
        angles = positions / np.power(10000.0, (2 * (dims // 2)) / dim)
        table = np.where(dims % 2 == 0, np.sin(angles), np.cos(angles))
        return 0.05 * table

    def _layer_weights(self, layer_idx: int) -> _LayerWeights:
        if self.config.share_layers:
            return self._layers[0]
        return self._layers[layer_idx]

    # --------------------------------------------------------------- bias

    def _attention_bias(
        self, mask: np.ndarray, segments: np.ndarray | None
    ) -> np.ndarray:
        """Per-head additive attention bias, shape (batch, heads, seq, seq).

        Padding is always masked. With segment ids, the diagonal is masked
        (a token never attends to itself, so duplicate detection must look
        at *other* tokens) and the first half of the heads is restricted
        to cross-segment attention — the soft-alignment heads.
        """
        batch, seq = mask.shape
        n_heads = self.config.n_heads
        bias = np.where(mask[:, None, None, :], 0.0, _NEG_INF)
        bias = np.broadcast_to(bias, (batch, n_heads, seq, seq)).copy()
        if segments is None:
            return bias
        eye = np.eye(seq, dtype=bool)
        bias[:, :, eye] = _NEG_INF
        if self.config.cross_segment_heads and n_heads >= 2:
            same_segment = segments[:, :, None] == segments[:, None, :]
            n_cross = n_heads // 2
            cross_block = np.where(same_segment[:, None, :, :], _NEG_INF, 0.0)
            bias[:, :n_cross] += cross_block
        # Guard: rows whose every logit is masked get the diagonal back,
        # otherwise softmax would produce NaNs (e.g. a one-token segment).
        fully_masked = (bias <= _NEG_INF / 2).all(axis=-1)
        if fully_masked.any():
            b_idx, h_idx, i_idx = np.nonzero(fully_masked)
            bias[b_idx, h_idx, i_idx, i_idx] = 0.0
        return bias

    # ------------------------------------------------------------ forward

    def encode(
        self,
        embeddings: np.ndarray,
        mask: np.ndarray | None = None,
        segments: np.ndarray | None = None,
    ) -> np.ndarray:
        """Contextualize a batch of token embeddings (last layer only)."""
        return self.encode_all_layers(embeddings, mask, segments)[-1]

    def encode_all_layers(
        self,
        embeddings: np.ndarray,
        mask: np.ndarray | None = None,
        segments: np.ndarray | None = None,
    ) -> list[np.ndarray]:
        """Hidden states after every layer.

        Parameters
        ----------
        embeddings:
            ``(batch, seq, dim)`` token embeddings (already truncated to
            ``config.max_len``).
        mask:
            Boolean ``(batch, seq)``; True marks real tokens.
        segments:
            Optional int ``(batch, seq)`` with 0/1 entity-side ids. When
            given, self-attention is masked and cross-segment heads
            activate (see module docstring).
        """
        cfg = self.config
        batch, seq, dim = embeddings.shape
        if dim != cfg.dim:
            raise ValueError(f"expected dim {cfg.dim}, got {dim}")
        if seq > cfg.max_len:
            raise ValueError(f"sequence length {seq} exceeds max_len {cfg.max_len}")
        if mask is None:
            mask = np.ones((batch, seq), dtype=bool)

        h = embeddings.astype(np.float32) + self._position[None, :seq, :]
        if segments is not None:
            h = h + self._segment[np.clip(segments, 0, 1)]
        h = h * mask[:, :, None]

        bias = self._attention_bias(mask, segments).astype(np.float32)
        head_dim = dim // cfg.n_heads
        gain = cfg.attention_sharpness / cfg.attention_temperature

        outputs: list[np.ndarray] = []
        for layer_idx in range(cfg.n_layers):
            w = self._layer_weights(layer_idx)
            x = layer_norm(h)
            # (batch, heads, seq, head_dim) layout so the attention scores
            # come from BLAS batched matmuls rather than einsum loops.
            q = (x @ w.w_q).reshape(batch, seq, cfg.n_heads, head_dim)
            k = (x @ w.w_k).reshape(batch, seq, cfg.n_heads, head_dim)
            v = (x @ w.w_v).reshape(batch, seq, cfg.n_heads, head_dim)
            q = _normalize_heads(q).transpose(0, 2, 1, 3)
            k = _normalize_heads(k).transpose(0, 2, 1, 3)
            v = v.transpose(0, 2, 1, 3)
            logits = q @ k.transpose(0, 1, 3, 2) * gain + bias
            attn = softmax(logits, axis=-1)
            if cfg.value_gating:
                # Second-order attention: weighting values by A² makes the
                # incoming mass per token equal the attention sharpness
                # (inverse participation ratio). A token whose attention
                # locks onto a near-duplicate receives that duplicate's
                # full content; diffuse attention passes almost nothing.
                # This emulates the value gating trained models learn and
                # keeps pooled representations of unrelated pairs apart.
                attn = attn * attn
            mixed = (
                (attn @ v).transpose(0, 2, 1, 3).reshape(batch, seq, dim)
            )
            h = h + mixed @ w.w_o

            x = layer_norm(h)
            h = h + cfg.ffn_scale * (hard_gelu(x @ w.w_ffn1 + w.b_ffn1) @ w.w_ffn2)
            h = h * mask[:, :, None]
            outputs.append(h)
        return outputs
