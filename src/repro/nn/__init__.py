"""Neural substrate in numpy.

``functional`` holds the stateless ops (softmax, GELU, layer norm);
``transformer`` the forward-only encoder the simulated pre-trained models
run on; ``autograd`` the small manual-gradient module set (linear layers,
attention pooling) that trainable networks — the DeepMatcher baseline —
are built from; ``optim`` the SGD/Adam optimizers for those.
"""

from repro.nn.functional import gelu, layer_norm, relu, sigmoid, softmax
from repro.nn.optim import SGD, Adam
from repro.nn.transformer import EncoderConfig, TransformerEncoder

__all__ = [
    "Adam",
    "EncoderConfig",
    "SGD",
    "TransformerEncoder",
    "gelu",
    "layer_norm",
    "relu",
    "sigmoid",
    "softmax",
]
