"""Registry of the five simulated pre-trained architectures.

Each architecture couples

* a *token embedding* scheme: fastText-style hashing of character n-grams
  into a fixed random table, which needs no corpus fitting (this is what
  makes the encoder usable "out of the box", mirroring how the paper uses
  checkpoints without fine-tuning) and maps surface-similar tokens — and
  in particular typo'd duplicates — to nearby vectors;
* a :class:`~repro.nn.transformer.TransformerEncoder` whose depth, heads,
  attention temperature and parameter sharing differ per architecture the
  way the real checkpoints differ (DistilBERT is a shallower BERT; ALBERT
  shares weights across layers and ends up the strongest featurizer here,
  matching the paper's Table 3 finding; XLNet's flavour is emulated with a
  higher temperature and a different n-gram window).

Encoders are memoized by :func:`load_pretrained`, because constructing the
weight tensors is deterministic but not free.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.config import GLOBAL_SEED, stable_hash
from repro.exceptions import UnknownModelError
from repro.nn.transformer import EncoderConfig, TransformerEncoder
from repro.text.similarity import ngrams
from repro.text.tokenization import BasicTokenizer

__all__ = [
    "PretrainedEncoder",
    "load_pretrained",
    "pad_length_buckets",
    "EMBEDDER_NAMES",
]

_HASH_BUCKETS = 8192


def pad_length_buckets(
    prepared: list[tuple[np.ndarray, np.ndarray]],
    batch_size: int,
):
    """Group prepared sequences into exact-length forward batches.

    This is the *canonical batched forward* discipline
    (``repro.config.ENCODE_VERSION``): sequences are bucketed by exact
    token count and stacked **unpadded** — every row in a batch has the
    same shape, and the attention mask is all-True. BLAS GEMM bit
    patterns depend on matrix shapes, so mixed-length padded batches
    (the v1 discipline) gave the *same sequence* different float bits
    depending on which other sequences shared its batch. Under exact
    buckets the encode of a sequence is a pure function of its own
    content — invariant to batch size and batch composition — which is
    what makes the entity-embedding store coherent across datasets,
    processes, and workers. It is also faster cold: no padded rows are
    multiplied just to be masked away.

    Yields ``(indices, stacked, mask, segments)`` per chunk of at most
    ``batch_size`` sequences, in (length, first-occurrence) order.
    """
    by_length: dict[int, list[int]] = {}
    for index, (matrix, _segments) in enumerate(prepared):
        by_length.setdefault(len(matrix), []).append(index)
    for length in sorted(by_length):
        ids = by_length[length]
        for start in range(0, len(ids), batch_size):
            chunk = ids[start : start + batch_size]
            stacked = np.stack([prepared[i][0] for i in chunk])
            segments = np.stack([prepared[i][1] for i in chunk])
            mask = np.ones((len(chunk), length), dtype=bool)
            yield chunk, stacked, mask, segments


@dataclass(frozen=True)
class ArchitectureSpec:
    """Static description of one simulated architecture."""

    name: str
    encoder: EncoderConfig
    ngram_min: int = 3
    ngram_max: int = 4
    embedding_seed: int = 0


_SPECS: dict[str, ArchitectureSpec] = {
    "bert": ArchitectureSpec(
        name="bert",
        encoder=EncoderConfig(
            dim=96, n_layers=4, n_heads=4, attention_temperature=1.0,
            share_layers=False, seed=GLOBAL_SEED + 101,
        ),
        ngram_min=3, ngram_max=4, embedding_seed=GLOBAL_SEED + 1,
    ),
    "dbert": ArchitectureSpec(
        name="dbert",
        encoder=EncoderConfig(
            dim=96, n_layers=2, n_heads=4, attention_temperature=1.05,
            share_layers=False, seed=GLOBAL_SEED + 102,
        ),
        ngram_min=3, ngram_max=4, embedding_seed=GLOBAL_SEED + 1,
    ),
    "albert": ArchitectureSpec(
        name="albert",
        encoder=EncoderConfig(
            dim=96, n_layers=6, n_heads=4, attention_temperature=0.7,
            share_layers=True, qk_noise=0.02, seed=GLOBAL_SEED + 103,
        ),
        ngram_min=3, ngram_max=5, embedding_seed=GLOBAL_SEED + 3,
    ),
    "roberta": ArchitectureSpec(
        name="roberta",
        encoder=EncoderConfig(
            dim=96, n_layers=4, n_heads=8, attention_temperature=1.0,
            share_layers=False, seed=GLOBAL_SEED + 104,
        ),
        ngram_min=2, ngram_max=3, embedding_seed=GLOBAL_SEED + 4,
    ),
    "xlnet": ArchitectureSpec(
        name="xlnet",
        encoder=EncoderConfig(
            dim=96, n_layers=4, n_heads=4, attention_temperature=1.25,
            share_layers=False, qk_noise=0.10, seed=GLOBAL_SEED + 105,
        ),
        ngram_min=3, ngram_max=5, embedding_seed=GLOBAL_SEED + 5,
    ),
}

#: The five embedder names, in the paper's table-column order.
EMBEDDER_NAMES: tuple[str, ...] = ("bert", "dbert", "albert", "roberta", "xlnet")


class PretrainedEncoder:
    """A ready-to-use simulated checkpoint: tokenizer + embeddings + encoder.

    The public surface mirrors how the EM adapter consumes HuggingFace
    models: :meth:`embed_sequences` maps raw strings to fixed-size vectors
    (mean of the last hidden layer, or the concatenation of the last four
    layers' means when ``pooling="last4"``).
    """

    #: Marker token separating the two entities inside one sequence.
    SEP = "[sep]"

    def __init__(self, spec: ArchitectureSpec) -> None:
        self.spec = spec
        self.name = spec.name
        self._tokenizer = BasicTokenizer(lowercase=True)
        self._encoder = TransformerEncoder(spec.encoder)
        rng = np.random.default_rng(spec.embedding_seed)
        dim = spec.encoder.dim
        self._table = rng.normal(size=(_HASH_BUCKETS, dim)) / np.sqrt(dim)
        self._sep_vector = rng.normal(size=dim) / np.sqrt(dim)
        self._token_cache: dict[str, np.ndarray] = {}

    @property
    def dim(self) -> int:
        """Hidden dimensionality of the encoder."""
        return self.spec.encoder.dim

    def output_dim(self, pooling: str = "mean") -> int:
        """Feature size produced by :meth:`embed_sequences`."""
        if pooling == "mean":
            return self.dim
        if pooling == "last4":
            return self.dim * min(4, self.spec.encoder.n_layers)
        raise UnknownModelError(f"unknown pooling {pooling!r}")

    # --------------------------------------------------------- embeddings

    def _token_vector(self, token: str) -> np.ndarray:
        cached = self._token_cache.get(token)
        if cached is not None:
            return cached
        if token == self.SEP:
            vector = self._sep_vector
        else:
            rows = [stable_hash("tok", self.spec.name, token) % _HASH_BUCKETS]
            for n in range(self.spec.ngram_min, self.spec.ngram_max + 1):
                for gram in ngrams(token, n):
                    rows.append(
                        stable_hash("ng", self.spec.name, gram) % _HASH_BUCKETS
                    )
            vector = self._table[rows].mean(axis=0)
            norm = np.linalg.norm(vector)
            if norm > 0:
                vector = vector / norm
        self._token_cache[token] = vector
        return vector

    def tokenize(self, text: str) -> list[str]:
        """Word-level tokens with the ``[sep]`` marker kept intact.

        The basic tokenizer splits punctuation, turning the marker into
        ``[ sep ]``; those triples are re-merged here so segment detection
        works on the token list.
        """
        raw = [token for token in self._tokenizer.tokenize(text) if token]
        tokens: list[str] = []
        i = 0
        while i < len(raw):
            if raw[i] == "[" and i + 2 < len(raw) + 1 and raw[i + 1 : i + 3] == ["sep", "]"]:
                tokens.append(self.SEP)
                i += 3
            else:
                tokens.append(raw[i])
                i += 1
        return tokens

    def _sequence_matrix(self, text: str) -> tuple[np.ndarray, np.ndarray]:
        """Token embedding matrix and 0/1 segment ids for one sequence.

        Segment ids flip after the first ``[sep]`` marker, exactly like
        BERT's ``token_type_ids`` for a sentence pair.
        """
        tokens = self.tokenize(text)[: self.spec.encoder.max_len]
        if not tokens:
            return np.zeros((1, self.dim)), np.zeros(1, dtype=np.int64)
        matrix = np.stack([self._token_vector(t) for t in tokens])
        segments = np.zeros(len(tokens), dtype=np.int64)
        if self.SEP in tokens:
            boundary = tokens.index(self.SEP)
            segments[boundary + 1 :] = 1
        return matrix, segments

    def entity_half(self, text: str) -> tuple[np.ndarray, np.ndarray]:
        """Token embedding matrix and ``[sep]`` positions for one entity.

        The per-*entity* unit the entity-embedding store caches: half of
        a pair sequence, before the two halves are joined by
        :meth:`assemble_pair`. ``sep_positions`` records where literal
        ``[sep]`` markers occur *inside the entity text itself* (data can
        contain them), because the joint segment boundary is defined by
        the first marker in the assembled token list.
        """
        tokens = self.tokenize(text)
        if tokens:
            matrix = np.stack([self._token_vector(t) for t in tokens])
        else:
            matrix = np.zeros((0, self.dim))
        sep_positions = np.array(
            [i for i, t in enumerate(tokens) if t == self.SEP], dtype=np.int64
        )
        return matrix, sep_positions

    def assemble_pair(
        self,
        left: tuple[np.ndarray, np.ndarray],
        right: tuple[np.ndarray, np.ndarray],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Join two :meth:`entity_half` records into one pair sequence.

        Reproduces ``_sequence_matrix(pair_text(l, r))`` bit-for-bit
        without re-tokenizing: the tokenizer is context-free across the
        space-padded ``[sep]`` marker, so the joint token list is exactly
        ``left_tokens + [sep] + right_tokens`` truncated to ``max_len``,
        and the segment boundary is the first marker in that list —
        either a literal ``[sep]`` inside the left text or the injected
        one (whichever comes first).
        """
        left_matrix, left_seps = left
        right_matrix, _right_seps = right
        matrix = np.concatenate(
            [left_matrix, self._sep_vector[None, :], right_matrix]
        )[: self.spec.encoder.max_len]
        n = len(matrix)
        segments = np.zeros(n, dtype=np.int64)
        boundary = int(left_seps[0]) if len(left_seps) else len(left_matrix)
        if boundary < n:
            segments[boundary + 1 :] = 1
        return matrix, segments

    def embed_sequences(
        self,
        texts: list[str],
        pooling: str = "mean",
        batch_size: int = 256,
    ) -> np.ndarray:
        """Encode raw strings into fixed-size vectors.

        Sequences run through the canonical exact-length-bucketed
        forward (:func:`pad_length_buckets`): one stacked matmul per
        layer per bucket, no per-record padding loop, and each text's
        vector is a pure function of its own content. Empty strings
        embed as a single zero token.
        """
        if pooling not in ("mean", "last4"):
            raise UnknownModelError(f"unknown pooling {pooling!r}")
        prepared = [self._sequence_matrix(text) for text in texts]
        out = np.zeros((len(texts), self.output_dim(pooling)))
        for chunk, stacked, mask, segments in pad_length_buckets(
            prepared, batch_size
        ):
            out[chunk] = self._pool(stacked, mask, segments, pooling)
        return out

    def _pool(
        self,
        padded: np.ndarray,
        mask: np.ndarray,
        segments: np.ndarray,
        pooling: str,
    ) -> np.ndarray:
        counts = np.maximum(mask.sum(axis=1, keepdims=True), 1)
        layers = self._encoder.encode_all_layers(padded, mask, segments)
        if pooling == "mean":
            return layers[-1].sum(axis=1) / counts
        last4 = layers[-min(4, len(layers)) :]
        pooled = [layer.sum(axis=1) / counts for layer in last4]
        return np.hstack(pooled)

    def pair_text(self, left: str, right: str) -> str:
        """Serialize two value strings into one ``left [sep] right`` sequence."""
        return f"{left} {self.SEP} {right}"

    def __repr__(self) -> str:
        cfg = self.spec.encoder
        return (
            f"PretrainedEncoder(name={self.name!r}, dim={cfg.dim}, "
            f"layers={cfg.n_layers}, heads={cfg.n_heads})"
        )


@lru_cache(maxsize=None)
def load_pretrained(name: str) -> PretrainedEncoder:
    """Load (and memoize) a simulated checkpoint by architecture name."""
    try:
        spec = _SPECS[name]
    except KeyError:
        raise UnknownModelError(
            f"unknown embedder {name!r}; known: {', '.join(EMBEDDER_NAMES)}"
        ) from None
    return PretrainedEncoder(spec)
