"""Simulated pre-trained transformer language models.

Five architectures — ``bert``, ``dbert`` (DistilBERT), ``albert``,
``roberta`` and ``xlnet`` — matching the embedder set of the paper's
Section 4. Each is a seeded random-weight :class:`TransformerEncoder`
over fastText-style hashed character-n-gram token embeddings; see
DESIGN.md §2 for why this substitution preserves the behaviour the paper
relies on.
"""

from repro.transformers.pretrained import (
    EMBEDDER_NAMES,
    PretrainedEncoder,
    load_pretrained,
    pad_length_buckets,
)

__all__ = [
    "EMBEDDER_NAMES",
    "PretrainedEncoder",
    "load_pretrained",
    "pad_length_buckets",
]
