"""Baseline files: grandfathered findings that don't gate.

A baseline is a checked-in JSON snapshot of known findings, identified
by line-number-free fingerprints (rule, path, message) so they survive
unrelated edits. ``apply_baseline`` partitions a run's findings into
*new* (gating) and *matched* (grandfathered), and also reports *stale*
entries whose finding no longer exists — prune those when you fix debt.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.core import Finding

__all__ = ["Baseline", "BaselineResult", "apply_baseline"]

_FORMAT_VERSION = 1


@dataclass
class Baseline:
    """The persisted set of grandfathered finding fingerprints."""

    entries: list[dict[str, str]] = field(default_factory=list)

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        return cls(
            entries=[
                {"rule": rule, "path": path, "message": message}
                for rule, path, message in sorted(
                    f.fingerprint() for f in findings
                )
            ]
        )

    @classmethod
    def load(cls, path: Path | str) -> "Baseline":
        path = Path(path)
        if not path.exists():
            return cls()
        payload = json.loads(path.read_text(encoding="utf-8"))
        if payload.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported baseline version {payload.get('version')!r} "
                f"in {path}"
            )
        return cls(entries=list(payload.get("findings", [])))

    def save(self, path: Path | str) -> None:
        payload = {"version": _FORMAT_VERSION, "findings": self.entries}
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def fingerprints(self) -> Counter:
        return Counter(
            (e["rule"], e["path"], e["message"]) for e in self.entries
        )


@dataclass
class BaselineResult:
    """Partition of one run's findings against a baseline."""

    new: list[Finding]
    matched: list[Finding]
    stale: list[tuple[str, str, str]]


def apply_baseline(findings: list[Finding], baseline: Baseline) -> BaselineResult:
    """Split findings into gating vs grandfathered, multiset-style.

    Each baseline entry absorbs at most one finding with the same
    fingerprint; duplicates beyond the baselined count still gate.
    """
    budget = baseline.fingerprints()
    new: list[Finding] = []
    matched: list[Finding] = []
    for finding in findings:
        key = finding.fingerprint()
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            matched.append(finding)
        else:
            new.append(finding)
    stale = sorted(
        key for key, remaining in budget.items() for _ in range(remaining)
    )
    return BaselineResult(new=new, matched=matched, stale=stale)
