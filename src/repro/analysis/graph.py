"""Whole-program graphs: module summaries, import graph, call graph.

This module is the substrate for the cross-module rule packs (layering
contracts, import cycles, RNG-flow tracking, dead-symbol detection). It
deliberately works on *summaries* — small, JSON-serializable extracts of
each module's AST — rather than on the trees themselves, so that a warm
run can rebuild every graph from the analysis cache without re-parsing a
single file (see :mod:`repro.analysis.cache`).

Three layers:

* :class:`ModuleSummary` / :func:`summarize_module` — one walk over a
  parsed module collecting imports, top-level definitions, ``__all__``,
  referenced names, and per-function call sites;
* :class:`ImportGraph` — module-level dependency edges with
  ``from pkg import submodule`` resolved to the submodule (the actual
  dependency), strongly-connected-component cycle detection, and
  DOT / JSON dumps at module or package granularity;
* :class:`CallResolver` / :class:`CallGraph` — name-resolution-based
  call edges: local functions, ``self.method``, imported symbols
  (re-export chains are chased through package ``__init__`` modules),
  and class constructors resolved to ``__init__``.

:class:`LayeringContract` parses the declarative layer stack in
``docs/ARCHITECTURE_CONTRACT`` that rule ARC001 checks import edges
against.
"""

from __future__ import annotations

import ast
import json
from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "CallGraph",
    "CallResolver",
    "CallSite",
    "ContractError",
    "EFFECT_TAGS",
    "FunctionInfo",
    "ImportEdge",
    "ImportGraph",
    "ImportRecord",
    "LayeringContract",
    "LoopCall",
    "LoopInfo",
    "ModuleSummary",
    "summarize_module",
]

#: Parameter names treated as carriers of seeded randomness. A function
#: with one of these in its signature participates in RNG-flow tracking.
RNG_PARAM_NAMES = ("rng", "seed")


# ----------------------------------------------------------------- summaries


@dataclass
class ImportRecord:
    """One ``import`` / ``from ... import`` statement, unresolved."""

    module: str  #: dotted source module ("" for pure-relative imports)
    names: tuple[str, ...]  #: imported names; ("*",) for star imports
    level: int  #: relative-import level (0 = absolute)
    lineno: int
    col: int
    top_level: bool  #: directly in the module body (not inside a def/if)
    is_from: bool  #: ``from x import y`` rather than ``import x``

    def to_dict(self) -> dict[str, object]:
        return {
            "module": self.module,
            "names": list(self.names),
            "level": self.level,
            "lineno": self.lineno,
            "col": self.col,
            "top_level": self.top_level,
            "is_from": self.is_from,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ImportRecord":
        return cls(
            module=str(payload["module"]),
            names=tuple(payload["names"]),  # type: ignore[arg-type]
            level=int(payload["level"]),  # type: ignore[arg-type]
            lineno=int(payload["lineno"]),  # type: ignore[arg-type]
            col=int(payload["col"]),  # type: ignore[arg-type]
            top_level=bool(payload["top_level"]),
            is_from=bool(payload["is_from"]),
        )


@dataclass
class CallSite:
    """One resolvable call expression inside a function body.

    ``callee`` is a shape-tagged tuple:

    * ``("name", f)`` — a bare-name call ``f(...)``;
    * ``("self", m)`` — a method call ``self.m(...)``;
    * ``("attr", base, a)`` — an attribute call ``base.a(...)`` where
      ``base`` is a plain name (typically a module alias);
    * ``("method", base, a)`` — a chained-attribute method call
      ``x.y.a(...)`` whose receiver is not a plain name. Never resolved
      by :class:`CallResolver`; the cost analysis duck-types it.

    ``loops`` holds the indices (into the owning
    :attr:`FunctionInfo.loops`) of the loop frames enclosing the call,
    outermost first — the raw material of the multiplicity propagation
    in :mod:`repro.analysis.cost`.
    """

    callee: tuple[str, ...]
    num_positional: int
    keywords: tuple[str, ...]
    has_star_args: bool  #: ``*args`` or ``**kwargs`` present at the call
    lineno: int
    col: int
    loops: tuple[int, ...] = ()

    def to_dict(self) -> dict[str, object]:
        return {
            "callee": list(self.callee),
            "num_positional": self.num_positional,
            "keywords": list(self.keywords),
            "has_star_args": self.has_star_args,
            "lineno": self.lineno,
            "col": self.col,
            "loops": list(self.loops),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "CallSite":
        return cls(
            callee=tuple(payload["callee"]),  # type: ignore[arg-type]
            num_positional=int(payload["num_positional"]),  # type: ignore[arg-type]
            keywords=tuple(payload["keywords"]),  # type: ignore[arg-type]
            has_star_args=bool(payload["has_star_args"]),
            lineno=int(payload["lineno"]),  # type: ignore[arg-type]
            col=int(payload["col"]),  # type: ignore[arg-type]
            loops=tuple(int(i) for i in payload.get("loops", ())),  # type: ignore[union-attr]
        )


@dataclass
class LoopInfo:
    """One loop frame (``for``/``while``/comprehension generator).

    ``parent`` is the index of the enclosing loop frame within the same
    function (-1 at top level), so nest chains can be reconstructed from
    the flat tuple. ``bound`` holds the names the loop target binds;
    ``is_const`` marks trip counts that are compile-time constants
    (literal collections, ``range`` of constants) — such loops multiply
    work by a fixed ``k`` rather than by the workload size.

    ``simple_map``/``appends``/``subscript_by_bound`` summarize the
    direct loop body for the vectorization rule (PERF003): a body of
    plain assignments and ``list.append`` calls that subscripts a
    *numpy-assigned* local by the loop variable is the classic
    per-element loop a single fancy-indexing call replaces
    (``subscript_by_bound`` carries that numpy evidence, not just the
    subscript shape).
    """

    kind: str  #: "for" | "while" | "listcomp" | "setcomp" | "dictcomp" | "genexpr"
    lineno: int
    col: int
    parent: int
    bound: tuple[str, ...]
    iter_repr: str  #: rendered iterable ("" for while loops)
    iter_name: str  #: bare-name iterable id, "" otherwise
    is_const: bool
    has_break: bool = False
    simple_map: bool = False
    appends: tuple[str, ...] = ()
    subscript_by_bound: bool = False

    def to_dict(self) -> dict[str, object]:
        return {
            "kind": self.kind,
            "lineno": self.lineno,
            "col": self.col,
            "parent": self.parent,
            "bound": list(self.bound),
            "iter_repr": self.iter_repr,
            "iter_name": self.iter_name,
            "is_const": self.is_const,
            "has_break": self.has_break,
            "simple_map": self.simple_map,
            "appends": list(self.appends),
            "subscript_by_bound": self.subscript_by_bound,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "LoopInfo":
        return cls(
            kind=str(payload["kind"]),
            lineno=int(payload["lineno"]),  # type: ignore[arg-type]
            col=int(payload["col"]),  # type: ignore[arg-type]
            parent=int(payload["parent"]),  # type: ignore[arg-type]
            bound=tuple(payload["bound"]),  # type: ignore[arg-type]
            iter_repr=str(payload["iter_repr"]),
            iter_name=str(payload["iter_name"]),
            is_const=bool(payload["is_const"]),
            has_break=bool(payload.get("has_break", False)),
            simple_map=bool(payload.get("simple_map", False)),
            appends=tuple(payload.get("appends", ())),  # type: ignore[arg-type]
            subscript_by_bound=bool(payload.get("subscript_by_bound", False)),
        )


@dataclass
class LoopCall:
    """One call expression observed under loop frames.

    Unlike :class:`CallSite` this keeps *dynamic* callees too
    (``self.tokenizer.sequences(...)``) — rendered in ``callee_repr`` —
    because the PERF rules reason about hoistability, not just resolved
    edges. ``deps`` are the bare names the call expression reads;
    ``invariant`` lists the enclosing loop frames (indices into
    :attr:`FunctionInfo.loops`, a subset of ``loops``) none of whose
    bound-or-assigned names the call depends on: the call recomputes an
    identical value once per iteration of each such loop.
    """

    callee_repr: str
    callee: tuple[str, ...]  #: CallSite-style shape, or () when dynamic
    lineno: int
    col: int
    loops: tuple[int, ...]
    deps: tuple[str, ...]
    invariant: tuple[int, ...]
    effect_tag: str = ""  #: direct effect classification, "" when pure
    numpy_ctor_comp: bool = False  #: numpy construction over an inline comp

    def to_dict(self) -> dict[str, object]:
        return {
            "callee_repr": self.callee_repr,
            "callee": list(self.callee),
            "lineno": self.lineno,
            "col": self.col,
            "loops": list(self.loops),
            "deps": list(self.deps),
            "invariant": list(self.invariant),
            "effect_tag": self.effect_tag,
            "numpy_ctor_comp": self.numpy_ctor_comp,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "LoopCall":
        return cls(
            callee_repr=str(payload["callee_repr"]),
            callee=tuple(payload["callee"]),  # type: ignore[arg-type]
            lineno=int(payload["lineno"]),  # type: ignore[arg-type]
            col=int(payload["col"]),  # type: ignore[arg-type]
            loops=tuple(int(i) for i in payload["loops"]),  # type: ignore[union-attr]
            deps=tuple(payload["deps"]),  # type: ignore[arg-type]
            invariant=tuple(int(i) for i in payload["invariant"]),  # type: ignore[union-attr]
            effect_tag=str(payload.get("effect_tag", "")),
            numpy_ctor_comp=bool(payload.get("numpy_ctor_comp", False)),
        )


@dataclass
class FunctionInfo:
    """Signature and call sites of one function or method.

    ``qualname`` is dotted within the module (``Class.method``,
    ``outer.inner``). ``params`` keeps declaration order and includes
    ``self``/``cls`` for methods; ``optional`` holds the subset of
    parameter names that carry a default value.
    """

    qualname: str
    params: tuple[str, ...]
    kwonly: tuple[str, ...]
    optional: tuple[str, ...]
    is_method: bool
    has_varargs: bool
    has_kwargs: bool
    lineno: int
    calls: tuple[CallSite, ...] = ()
    rng_in_scope: tuple[str, ...] = ()  #: rng-ish names visible in the body
    #: direct effect sites: (tag, lineno, col, detail) — see EFFECT_TAGS
    effects: tuple[tuple[str, int, int, str], ...] = ()
    #: fault-seam markers: (kind, point, lineno) with kind in
    #: {"checkpoint", "mark_recovered"} and a literal point name
    checkpoints: tuple[tuple[str, str, int], ...] = ()
    #: ``io_retry(fn, "point")`` wraps: (operand name, point, lineno)
    retry_wraps: tuple[tuple[str, str, int], ...] = ()
    #: exception type names caught by own-body ``except`` handlers
    #: ("*" for a bare except)
    caught: tuple[str, ...] = ()
    #: names rebound via ``global`` statements in the body
    global_assigns: tuple[str, ...] = ()
    #: every loop frame in the own body, in source order; ``parent``
    #: indices point into this tuple
    loops: tuple[LoopInfo, ...] = ()
    #: call expressions under loop frames (plus numpy-of-comprehension
    #: construction calls at any depth) — the PERF rules' raw material
    loop_calls: tuple[LoopCall, ...] = ()

    def accepts(self) -> frozenset[str]:
        names = frozenset(self.params) | frozenset(self.kwonly)
        return names - frozenset(("self", "cls"))

    def rng_params(self) -> tuple[str, ...]:
        accepted = self.accepts()
        return tuple(n for n in RNG_PARAM_NAMES if n in accepted)

    def positional_index(self, name: str) -> int | None:
        """Index of ``name`` among caller-visible positional slots."""
        params = list(self.params)
        if self.is_method and params and params[0] in ("self", "cls"):
            params = params[1:]
        if name in params:
            return params.index(name)
        return None

    def to_dict(self) -> dict[str, object]:
        return {
            "qualname": self.qualname,
            "params": list(self.params),
            "kwonly": list(self.kwonly),
            "optional": list(self.optional),
            "is_method": self.is_method,
            "has_varargs": self.has_varargs,
            "has_kwargs": self.has_kwargs,
            "lineno": self.lineno,
            "calls": [c.to_dict() for c in self.calls],
            "rng_in_scope": list(self.rng_in_scope),
            "effects": [list(e) for e in self.effects],
            "checkpoints": [list(c) for c in self.checkpoints],
            "retry_wraps": [list(r) for r in self.retry_wraps],
            "caught": list(self.caught),
            "global_assigns": list(self.global_assigns),
            "loops": [loop.to_dict() for loop in self.loops],
            "loop_calls": [call.to_dict() for call in self.loop_calls],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "FunctionInfo":
        return cls(
            qualname=str(payload["qualname"]),
            params=tuple(payload["params"]),  # type: ignore[arg-type]
            kwonly=tuple(payload["kwonly"]),  # type: ignore[arg-type]
            optional=tuple(payload["optional"]),  # type: ignore[arg-type]
            is_method=bool(payload["is_method"]),
            has_varargs=bool(payload["has_varargs"]),
            has_kwargs=bool(payload["has_kwargs"]),
            lineno=int(payload["lineno"]),  # type: ignore[arg-type]
            calls=tuple(
                CallSite.from_dict(c) for c in payload["calls"]  # type: ignore[union-attr]
            ),
            rng_in_scope=tuple(payload.get("rng_in_scope", ())),  # type: ignore[arg-type]
            effects=_effect_tuples(payload.get("effects", ())),
            checkpoints=_marker_tuples(payload.get("checkpoints", ())),
            retry_wraps=_marker_tuples(payload.get("retry_wraps", ())),
            caught=tuple(payload.get("caught", ())),  # type: ignore[arg-type]
            global_assigns=tuple(payload.get("global_assigns", ())),  # type: ignore[arg-type]
            loops=tuple(
                LoopInfo.from_dict(l) for l in payload.get("loops", ())  # type: ignore[union-attr]
            ),
            loop_calls=tuple(
                LoopCall.from_dict(c) for c in payload.get("loop_calls", ())  # type: ignore[union-attr]
            ),
        )


def _effect_tuples(raw: object) -> tuple[tuple[str, int, int, str], ...]:
    return tuple(
        (str(t), int(line), int(col), str(d)) for t, line, col, d in raw  # type: ignore[union-attr]
    )


def _marker_tuples(raw: object) -> tuple[tuple[str, str, int], ...]:
    return tuple((str(a), str(b), int(line)) for a, b, line in raw)  # type: ignore[union-attr]


@dataclass
class ModuleSummary:
    """The whole-program-relevant extract of one module."""

    module: str
    rel_path: str
    is_init: bool
    imports: tuple[ImportRecord, ...]
    #: top-level def/class name -> {"kind", "lineno", "col", "decorated"}
    symbols: dict[str, dict[str, object]]
    exports: tuple[str, ...] | None  #: literal ``__all__``, if any
    exports_lineno: int
    #: every name the module mentions: Name loads/stores, attribute
    #: accesses, and imported aliases — the currency of dead-symbol checks
    refs: frozenset[str]
    #: local alias -> (source module, symbol or None for module imports)
    import_aliases: dict[str, tuple[str, str | None]]
    functions: dict[str, FunctionInfo]
    classes: frozenset[str]
    #: effect sites in module-level code (run at import time)
    module_effects: tuple[tuple[str, int, int, str], ...] = ()
    #: module-level bindings of fork-hostile state: (name, kind, lineno)
    #: with kind in {"mutable", "handle", "lock"}
    globals_info: tuple[tuple[str, str, int], ...] = ()

    def to_dict(self) -> dict[str, object]:
        return {
            "module": self.module,
            "rel_path": self.rel_path,
            "is_init": self.is_init,
            "imports": [r.to_dict() for r in self.imports],
            "symbols": self.symbols,
            "exports": None if self.exports is None else list(self.exports),
            "exports_lineno": self.exports_lineno,
            "refs": sorted(self.refs),
            "import_aliases": {
                k: list(v) for k, v in sorted(self.import_aliases.items())
            },
            "functions": {
                k: v.to_dict() for k, v in sorted(self.functions.items())
            },
            "classes": sorted(self.classes),
            "module_effects": [list(e) for e in self.module_effects],
            "globals_info": [list(g) for g in self.globals_info],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ModuleSummary":
        exports = payload["exports"]
        return cls(
            module=str(payload["module"]),
            rel_path=str(payload["rel_path"]),
            is_init=bool(payload["is_init"]),
            imports=tuple(
                ImportRecord.from_dict(r) for r in payload["imports"]  # type: ignore[union-attr]
            ),
            symbols=dict(payload["symbols"]),  # type: ignore[arg-type]
            exports=None if exports is None else tuple(exports),  # type: ignore[arg-type]
            exports_lineno=int(payload["exports_lineno"]),  # type: ignore[arg-type]
            refs=frozenset(payload["refs"]),  # type: ignore[arg-type]
            import_aliases={
                k: (v[0], v[1])
                for k, v in payload["import_aliases"].items()  # type: ignore[union-attr]
            },
            functions={
                k: FunctionInfo.from_dict(v)
                for k, v in payload["functions"].items()  # type: ignore[union-attr]
            },
            classes=frozenset(payload["classes"]),  # type: ignore[arg-type]
            module_effects=_effect_tuples(payload.get("module_effects", ())),
            globals_info=_marker_tuples(payload.get("globals_info", ())),
        )


def _literal_exports(tree: ast.Module) -> tuple[tuple[str, ...] | None, int]:
    """A literal top-level ``__all__`` list, or None when absent/dynamic."""
    for node in tree.body:
        value = None
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
        ):
            value = node.value
        elif (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and node.target.id == "__all__"
        ):
            value = node.value
        if value is None:
            continue
        if not isinstance(value, (ast.List, ast.Tuple)):
            return None, node.lineno
        names = []
        for element in value.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                names.append(element.value)
            else:
                return None, node.lineno
        return tuple(names), node.lineno
    return None, 1


def _callee_shape(func: ast.expr) -> tuple[str, ...] | None:
    """Shape-tag a call's ``func`` expression, or None when fully dynamic."""
    if isinstance(func, ast.Name):
        return ("name", func.id)
    if isinstance(func, ast.Attribute):
        if isinstance(func.value, ast.Name):
            if func.value.id == "self":
                return ("self", func.attr)
            return ("attr", func.value.id, func.attr)
        root = func.value
        while isinstance(root, ast.Attribute):
            root = root.value
        if isinstance(root, ast.Name):
            # ``x.y.m(...)`` — receiver type unknown; keep the root name
            # and the method so duck-typed resolution can take a shot.
            return ("method", root.id, func.attr)
    return None


def _call_site(node: ast.Call, loops: tuple[int, ...] = ()) -> CallSite | None:
    """Extract a resolvable call shape, or None for dynamic callees."""
    callee = _callee_shape(node.func)
    if callee is None:
        return None
    has_star = any(isinstance(a, ast.Starred) for a in node.args) or any(
        kw.arg is None for kw in node.keywords
    )
    return CallSite(
        callee=callee,
        num_positional=sum(
            1 for a in node.args if not isinstance(a, ast.Starred)
        ),
        keywords=tuple(kw.arg for kw in node.keywords if kw.arg is not None),
        has_star_args=has_star,
        lineno=node.lineno,
        col=node.col_offset,
        loops=loops,
    )


# -------------------------------------------------------------- loop nests

#: numpy construction/stacking functions: fed a Python-loop comprehension,
#: they are the signature of a vectorizable per-element loop (PERF003).
_NP_CTORS = frozenset(
    {
        "array", "asarray", "stack", "vstack", "hstack", "concatenate",
        "column_stack", "row_stack", "fromiter",
    }
)

#: Builtins cheap enough that calling them per comprehension element is
#: not worth flagging (``len`` over ragged rows has no vectorized form).
_CHEAP_BUILTINS = frozenset(
    {
        "len", "int", "float", "str", "bool", "bytes", "tuple", "list",
        "abs", "min", "max", "round", "isinstance", "getattr", "id",
        "repr", "format", "ord", "chr", "hash",
    }
)

_COMP_KINDS = {
    ast.ListComp: "listcomp",
    ast.SetComp: "setcomp",
    ast.DictComp: "dictcomp",
    ast.GeneratorExp: "genexpr",
}


def _const_iter(node: ast.expr) -> bool:
    """True when the iterable has a compile-time-constant trip count."""
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return all(isinstance(e, ast.Constant) for e in node.elts)
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "range"
    ):
        return all(isinstance(a, ast.Constant) for a in node.args)
    return False


def _expr_repr(node: ast.expr | None, limit: int = 48) -> str:
    if node is None:
        return ""
    try:
        text = ast.unparse(node)
    except ValueError:  # pragma: no cover - unparse is total on valid ASTs
        return "<expr>"
    return text if len(text) <= limit else text[: limit - 1] + "…"


def _target_names(target: ast.expr) -> tuple[str, ...]:
    return tuple(
        sorted(
            {
                sub.id
                for sub in ast.walk(target)
                if isinstance(sub, ast.Name)
            }
        )
    )


def _call_deps(node: ast.Call) -> tuple[str, ...]:
    """Bare names a call expression reads, minus comp/lambda-bound ones."""
    bound: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, tuple(_COMP_KINDS)):
            for gen in sub.generators:  # type: ignore[attr-defined]
                bound.update(_target_names(gen.target))
        elif isinstance(sub, ast.Lambda):
            args = sub.args
            bound.update(
                a.arg
                for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
            )
    names = {
        sub.id for sub in ast.walk(node) if isinstance(sub, ast.Name)
    }
    return tuple(sorted(names - bound))


def _is_numpy_ctor_of_comp(
    node: ast.Call, aliases: Mapping[str, tuple[str, str | None]]
) -> bool:
    """``np.vstack([f(x) for x in xs])``-shaped construction calls.

    The comprehension must iterate a non-constant source and run a
    non-trivial call per element — exactly the loop one vectorized
    numpy call (or fancy indexing) replaces.
    """
    func = node.func
    if not (isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name)):
        return False
    if _alias_module(aliases, func.value.id) != "numpy":
        return False
    if func.attr not in _NP_CTORS or not node.args:
        return False
    comp = node.args[0]
    if not isinstance(comp, (ast.ListComp, ast.GeneratorExp)):
        return False
    if not comp.generators or _const_iter(comp.generators[0].iter):
        return False
    for sub in ast.walk(comp.elt):
        if isinstance(sub, ast.Call):
            inner = sub.func
            if isinstance(inner, ast.Name) and inner.id in _CHEAP_BUILTINS:
                continue
            return True
    return False


def _simple_map_body(
    body: Sequence[ast.stmt],
) -> tuple[bool, tuple[str, ...]]:
    """(is a plain per-element body, names appended to) for a loop body.

    "Simple" means every statement is an assignment or a bare
    ``name.append(...)`` expression — no control flow, no nested loops —
    so the whole loop is a map over its iteration space.
    """
    appends: set[str] = set()
    for stmt in body:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            continue
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Call)
            and isinstance(stmt.value.func, ast.Attribute)
            and stmt.value.func.attr == "append"
            and isinstance(stmt.value.func.value, ast.Name)
        ):
            appends.add(stmt.value.func.value.id)
            continue
        return False, ()
    return True, tuple(sorted(appends))


def _subscript_bases(
    body: Iterable[ast.stmt], bound: Sequence[str]
) -> tuple[str, ...]:
    """Plain names that ``body`` subscripts by a loop-bound name.

    ``a[i]`` with ``i`` bound by the loop yields ``a``; attribute or
    call bases are skipped — the caller cross-checks the returned names
    against numpy-assigned locals, and only plain names can match.
    """
    wanted = set(bound)
    if not wanted:
        return ()
    bases: set[str] = set()
    for stmt in body:
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Subscript) and isinstance(
                sub.value, ast.Name
            ):
                for name in ast.walk(sub.slice):
                    if isinstance(name, ast.Name) and name.id in wanted:
                        bases.add(sub.value.id)
                        break
    return tuple(sorted(bases))


class _LoopScan:
    """One recursive own-body walk collecting loop frames and loop calls.

    Produces the inputs of the PERF rule family and the cost analysis:
    the flat :class:`LoopInfo` tuple, the :class:`LoopCall` records, and
    an ``id(Call node) -> enclosing loop indices`` map used to annotate
    :class:`CallSite` entries. Nested function/class definitions are
    skipped (they get their own :class:`FunctionInfo`); lambda bodies are
    attributed to the enclosing function, consistent with effect
    scanning.
    """

    def __init__(self, aliases: Mapping[str, tuple[str, str | None]]):
        self.aliases = aliases
        self.loops: list[LoopInfo] = []
        self.variants: list[set[str]] = []  #: per-frame bound/assigned names
        #: (deps, stack, node) triples finalized into LoopCalls at the end
        self._raw_calls: list[tuple[ast.Call, tuple[int, ...]]] = []
        self.call_stacks: dict[int, tuple[int, ...]] = {}
        #: per-loop names subscripted by a bound name (parallel to loops)
        self._sub_bases: list[tuple[str, ...]] = []
        #: locals assigned from numpy-alias expressions, anywhere in body
        self.np_assigned: set[str] = set()

    # ------------------------------------------------------------- helpers

    def _mark_variant(self, names: Iterable[str], stack: tuple[int, ...]) -> None:
        for idx in stack:
            self.variants[idx].update(names)

    def _open(
        self,
        kind: str,
        node: ast.AST,
        bound: tuple[str, ...],
        iter_node: ast.expr | None,
        stack: tuple[int, ...],
        body: Sequence[ast.stmt] = (),
    ) -> int:
        iter_name = (
            iter_node.id
            if isinstance(iter_node, ast.Name)
            else ""
        )
        simple, appends = (
            _simple_map_body(body) if body else (kind != "while", ())
        )
        self.loops.append(
            LoopInfo(
                kind=kind,
                lineno=node.lineno,
                col=node.col_offset,
                parent=stack[-1] if stack else -1,
                bound=bound,
                iter_repr=_expr_repr(iter_node),
                iter_name=iter_name,
                is_const=_const_iter(iter_node) if iter_node is not None else False,
                simple_map=simple,
                appends=appends,
            )
        )
        self._sub_bases.append(_subscript_bases(body, bound) if body else ())
        idx = len(self.loops) - 1
        self.variants.append(set())
        # Bound names vary within their own frame, and within any outer
        # frame whose variants the *iterable* reads: ``for j in ys[i]``
        # makes j vary with i's frame too, but ``for pair in dataset``
        # under a position loop leaves pair's sweep identical per
        # position — the loop-interchange hoist PERF002 exists to catch.
        iter_deps = (
            {n.id for n in ast.walk(iter_node) if isinstance(n, ast.Name)}
            if iter_node is not None
            else set()
        )
        carried = tuple(
            f for f in stack if iter_deps & self.variants[f]
        )
        self._mark_variant(bound, (*carried, idx))
        return idx

    # ---------------------------------------------------------------- walk

    def visit(self, node: ast.AST, stack: tuple[int, ...]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(node, (ast.For, ast.AsyncFor)):
            self.visit(node.iter, stack)
            bound = _target_names(node.target)
            idx = self._open("for", node, bound, node.iter, stack, node.body)
            inner = (*stack, idx)
            for stmt in node.body:
                self.visit(stmt, inner)
            # ``else`` runs once, after the loop — outside the frame.
            for stmt in node.orelse:
                self.visit(stmt, stack)
            return
        if isinstance(node, ast.While):
            idx = self._open("while", node, (), None, stack, node.body)
            inner = (*stack, idx)
            self.visit(node.test, inner)
            for stmt in node.body:
                self.visit(stmt, inner)
            for stmt in node.orelse:
                self.visit(stmt, stack)
            return
        comp_kind = _COMP_KINDS.get(type(node))
        if comp_kind is not None:
            inner = stack
            for gen in node.generators:  # type: ignore[attr-defined]
                # The first iterable is evaluated outside the comp; each
                # later one re-evaluates per outer-generator element.
                self.visit(gen.iter, inner)
                idx = self._open(
                    comp_kind, node, _target_names(gen.target), gen.iter, inner
                )
                inner = (*inner, idx)
                for if_clause in gen.ifs:
                    self.visit(if_clause, inner)
            if isinstance(node, ast.DictComp):
                self.visit(node.key, inner)
                self.visit(node.value, inner)
            else:
                self.visit(node.elt, inner)  # type: ignore[attr-defined]
            return
        if isinstance(node, ast.Break):
            for idx in reversed(stack):
                if self.loops[idx].kind in ("for", "while"):
                    self.loops[idx].has_break = True
                    break
            return
        if isinstance(node, ast.Call):
            if stack or _is_numpy_ctor_of_comp(node, self.aliases):
                self.call_stacks[id(node)] = stack
                self._raw_calls.append((node, stack))
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                self._mark_variant(_target_names(target), stack)
            if node.value is not None and any(
                isinstance(sub, ast.Name)
                and _alias_module(self.aliases, sub.id) == "numpy"
                for sub in ast.walk(node.value)
            ):
                for target in targets:
                    self.np_assigned.update(_target_names(target))
        elif isinstance(node, ast.NamedExpr):
            self._mark_variant(_target_names(node.target), stack)
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            self._mark_variant(_target_names(node.optional_vars), stack)
        for child in ast.iter_child_nodes(node):
            self.visit(child, stack)

    # ------------------------------------------------------------ finalize

    def finalize(self) -> None:
        """Resolve the per-loop numpy-evidence flag once the body-wide
        set of numpy-assigned locals is complete."""
        for loop, bases in zip(self.loops, self._sub_bases):
            loop.subscript_by_bound = bool(set(bases) & self.np_assigned)

    def loop_calls(self) -> tuple[LoopCall, ...]:
        """Finalize records once every variant set has fully accumulated."""
        records = []
        for node, stack in self._raw_calls:
            deps = set(_call_deps(node))
            invariant = tuple(
                idx for idx in stack if not (deps & self.variants[idx])
            )
            hit = _classify_call(node, self.aliases)
            records.append(
                LoopCall(
                    callee_repr=_expr_repr(node.func, limit=60),
                    callee=_callee_shape(node.func) or (),
                    lineno=node.lineno,
                    col=node.col_offset,
                    loops=stack,
                    deps=tuple(sorted(deps)),
                    invariant=invariant,
                    effect_tag=hit[0] if hit is not None else "",
                    numpy_ctor_comp=_is_numpy_ctor_of_comp(node, self.aliases),
                )
            )
        return tuple(records)


def _scan_loops(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    aliases: Mapping[str, tuple[str, str | None]],
) -> _LoopScan:
    scan = _LoopScan(aliases)
    for stmt in node.body:
        scan.visit(stmt, ())
    scan.finalize()
    return scan


# ----------------------------------------------------------- effect scanning

#: The effect lattice: ambient behaviours a function may exhibit. "pure"
#: is the absence of every tag; tags only ever accumulate along call
#: edges, so the fixpoint in :mod:`repro.analysis.effects` terminates.
EFFECT_TAGS = ("clock", "env", "random", "order", "io", "process")

_CLOCK_TIME_FNS = frozenset(
    {
        "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
        "monotonic_ns", "process_time", "process_time_ns", "thread_time",
        "thread_time_ns", "clock_gettime",
    }
)
_CLOCK_DATETIME_FNS = frozenset({"now", "utcnow", "today"})
_IO_PATH_METHODS = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes"}
)
_ORDER_PATH_METHODS = frozenset({"iterdir", "glob", "rglob"})
_IO_NUMPY_FNS = frozenset(
    {"save", "load", "savez", "savez_compressed", "savetxt", "loadtxt"}
)
#: Calls whose arguments are ordered consumers: anything iterated under
#: one of these is order-safe even if the producer itself is unordered.
_ORDER_SINKS = frozenset({"sorted", "min", "max"})


def _alias_module(
    aliases: Mapping[str, tuple[str, str | None]], name: str
) -> str | None:
    """The module a bare name is an ``import x [as y]`` alias for."""
    entry = aliases.get(name)
    if entry is None or entry[1] is not None:
        return None
    return entry[0]


def _classify_qualified(
    module: str, symbol: str, node: ast.Call
) -> tuple[str, str] | None:
    """Effect tag of a call to ``module.symbol``, or None when pure."""
    if module == "time" and symbol in _CLOCK_TIME_FNS:
        return "clock", f"time.{symbol}"
    if module == "datetime" and symbol in _CLOCK_DATETIME_FNS:
        return "clock", f"datetime.{symbol}"
    if module == "os":
        if symbol in ("getenv", "putenv"):
            return "env", f"os.{symbol}"
        if symbol in ("listdir", "scandir"):
            return "order", f"os.{symbol}"
        if symbol in ("replace", "rename", "fdopen"):
            return "io", f"os.{symbol}"
        if symbol == "urandom":
            return "random", "os.urandom"
        if symbol in ("_exit", "fork", "kill", "abort", "execv"):
            return "process", f"os.{symbol}"
    if module == "sys" and symbol == "exit":
        return "process", "sys.exit"
    if module == "glob" and symbol in ("glob", "iglob"):
        return "order", f"glob.{symbol}"
    if module == "random" or module.startswith("random."):
        return "random", f"random.{symbol}"
    if module == "secrets":
        return "random", f"secrets.{symbol}"
    if module == "uuid" and symbol in ("uuid1", "uuid4"):
        return "random", f"uuid.{symbol}"
    if (
        module in ("numpy.random", "numpy")
        and symbol == "default_rng"
        and not node.args
        and not node.keywords
    ):
        return "random", "unseeded default_rng()"
    if module == "numpy" and symbol in _IO_NUMPY_FNS:
        return "io", f"numpy.{symbol}"
    if module == "tempfile" and symbol in ("mkstemp", "NamedTemporaryFile"):
        return "io", f"tempfile.{symbol}"
    return None


def _classify_call(
    node: ast.Call, aliases: Mapping[str, tuple[str, str | None]]
) -> tuple[str, str] | None:
    """Effect tag of one call expression, resolved through import aliases."""
    func = node.func
    if isinstance(func, ast.Name):
        entry = aliases.get(func.id)
        if entry is not None and entry[1] is not None:
            return _classify_qualified(entry[0], entry[1], node)
        if entry is None and func.id == "open":
            return "io", "open"
        return None
    if not isinstance(func, ast.Attribute):
        return None
    attr = func.attr
    base = func.value
    if isinstance(base, ast.Name):
        module = _alias_module(aliases, base.id)
        if module is not None:
            qualified = _classify_qualified(module, attr, node)
            if qualified is not None:
                return qualified
        # ``from datetime import datetime; datetime.now()``
        entry = aliases.get(base.id)
        if entry == ("datetime", "datetime") and attr in _CLOCK_DATETIME_FNS:
            return "clock", f"datetime.{attr}"
    # Chained bases: np.random.default_rng(), datetime.datetime.now().
    root = base
    while isinstance(root, ast.Attribute):
        root = root.value
    if isinstance(root, ast.Name):
        root_module = _alias_module(aliases, root.id)
        if (
            root_module == "numpy"
            and attr == "default_rng"
            and not node.args
            and not node.keywords
        ):
            return "random", "unseeded default_rng()"
        if root_module == "datetime" and attr in _CLOCK_DATETIME_FNS:
            return "clock", f"datetime.{attr}"
    # Duck-typed path methods: the base is usually a pathlib.Path value,
    # which no alias table can prove — over-approximate on the name.
    if attr == "open" or attr in _IO_PATH_METHODS:
        return "io", f".{attr}()"
    if attr in _ORDER_PATH_METHODS:
        return "order", f".{attr}()"
    return None


def _iterates_set(target: ast.expr) -> bool:
    """True when a loop/comprehension iterates a set expression directly."""
    if isinstance(target, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(target, ast.Call)
        and isinstance(target.func, ast.Name)
        and target.func.id in ("set", "frozenset")
    )


def _scan_effects(
    body: Iterable[ast.AST],
    aliases: Mapping[str, tuple[str, str | None]],
) -> tuple[tuple[str, int, int, str], ...]:
    """Direct effect sites among ``body`` nodes (an own-body walk).

    Order effects disappear inside :data:`_ORDER_SINKS` calls —
    ``sorted(path.glob(...))`` is the sanctioned fix for unordered
    filesystem iteration, so it must not keep flagging.
    """
    nodes = list(body)
    order_exempt: set[int] = set()
    for node in nodes:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _ORDER_SINKS
        ):
            order_exempt.update(id(sub) for sub in ast.walk(node))
    effects: list[tuple[str, int, int, str]] = []
    for node in nodes:
        if isinstance(node, ast.Call):
            hit = _classify_call(node, aliases)
            if hit is not None:
                tag, detail = hit
                if tag == "order" and id(node) in order_exempt:
                    continue
                effects.append((tag, node.lineno, node.col_offset, detail))
        elif (
            isinstance(node, ast.Attribute)
            and node.attr == "environ"
            and isinstance(node.value, ast.Name)
            and _alias_module(aliases, node.value.id) == "os"
        ):
            effects.append(
                ("env", node.lineno, node.col_offset, "os.environ")
            )
        elif isinstance(node, (ast.For, ast.AsyncFor, ast.comprehension)):
            iterated = node.iter
            if _iterates_set(iterated) and id(iterated) not in order_exempt:
                effects.append(
                    (
                        "order",
                        iterated.lineno,
                        iterated.col_offset,
                        "iteration over a set",
                    )
                )
    return tuple(sorted(effects))


_MUTABLE_FACTORIES = frozenset({"dict", "list", "set", "OrderedDict"})
#: Always state even when seeded with arguments (defaultdict(list), ...).
_ACCUMULATOR_FACTORIES = frozenset({"defaultdict", "deque", "Counter"})
_LOCK_FACTORIES = frozenset(
    {"Lock", "RLock", "Semaphore", "BoundedSemaphore", "Condition", "Event"}
)


def _classify_global(value: ast.expr) -> str | None:
    """Fork-hostility kind of a module-level binding's value expression.

    A *populated* container literal (or a comprehension) is a constant
    lookup table — identical in every process that imports the module —
    so only *empty* containers count as mutable state: they exist to be
    filled at runtime, which is exactly the parent-warmed state that
    leaks across a fork.
    """
    if isinstance(value, (ast.Dict,)) and not value.keys:
        return "mutable"
    if isinstance(value, (ast.List, ast.Set)) and not value.elts:
        return "mutable"
    if isinstance(value, ast.Call):
        func = value.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else None
        )
        if name in _MUTABLE_FACTORIES and not value.args:
            return "mutable"
        if name in _ACCUMULATOR_FACTORIES:
            return "mutable"
        if name == "open" or name == "fdopen":
            return "handle"
        if name in _LOCK_FACTORIES:
            return "lock"
    return None


def _module_globals(tree: ast.Module) -> tuple[tuple[str, str, int], ...]:
    """Module-level mutable/handle/lock bindings: (name, kind, lineno)."""
    found: list[tuple[str, str, int]] = []
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = [t for t in node.targets if isinstance(t, ast.Name)]
            value = node.value
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            targets = [node.target]
            value = node.value
        else:
            continue
        if value is None:
            continue
        kind = _classify_global(value)
        if kind is None:
            continue
        for target in targets:
            if not target.id.startswith("__"):
                found.append((target.id, kind, node.lineno))
    return tuple(found)


def _function_info(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    qualname: str,
    is_method: bool,
    enclosing_rng: tuple[str, ...],
    aliases: Mapping[str, tuple[str, str | None]],
) -> FunctionInfo:
    args = node.args
    params = tuple(a.arg for a in (*args.posonlyargs, *args.args))
    kwonly = tuple(a.arg for a in args.kwonlyargs)
    optional = set(params[len(params) - len(args.defaults):])
    optional.update(
        a.arg
        for a, d in zip(args.kwonlyargs, args.kw_defaults)
        if d is not None
    )
    own_rng = [
        n for n in RNG_PARAM_NAMES if n in params or n in kwonly
    ]
    # Locals named like an rng carrier also put seeded state in scope
    # (e.g. ``rng = rng_for("scope", seed)`` followed by helper calls).
    local_rng = set()
    for sub in ast.walk(node):
        if isinstance(sub, (ast.Assign, ast.AnnAssign)):
            targets = (
                sub.targets if isinstance(sub, ast.Assign) else [sub.target]
            )
            for target in targets:
                for name in ast.walk(target):
                    if isinstance(name, ast.Name) and name.id in RNG_PARAM_NAMES:
                        local_rng.add(name.id)
    in_scope = tuple(
        n
        for n in RNG_PARAM_NAMES
        if n in own_rng or n in local_rng or n in enclosing_rng
    )
    calls = []
    checkpoints: list[tuple[str, str, int]] = []
    retry_wraps: list[tuple[str, str, int]] = []
    caught: set[str] = set()
    global_assigns: set[str] = set()
    loop_scan = _scan_loops(node, aliases)
    own_body = list(_walk_own_body(node))
    for sub in own_body:
        if isinstance(sub, ast.Call):
            site = _call_site(sub, loops=loop_scan.call_stacks.get(id(sub), ()))
            if site is not None:
                calls.append(site)
            func = sub.func
            fname = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else None
            )
            if (
                fname in ("checkpoint", "mark_recovered")
                and sub.args
                and isinstance(sub.args[0], ast.Constant)
                and isinstance(sub.args[0].value, str)
            ):
                checkpoints.append((fname, sub.args[0].value, sub.lineno))
            elif (
                fname == "io_retry"
                and len(sub.args) >= 2
                and isinstance(sub.args[0], ast.Name)
                and isinstance(sub.args[1], ast.Constant)
                and isinstance(sub.args[1].value, str)
            ):
                retry_wraps.append(
                    (sub.args[0].id, sub.args[1].value, sub.lineno)
                )
        elif isinstance(sub, ast.ExceptHandler):
            caught.update(_handler_names(sub))
        elif isinstance(sub, ast.Global):
            global_assigns.update(sub.names)
    return FunctionInfo(
        qualname=qualname,
        params=params,
        kwonly=kwonly,
        optional=tuple(sorted(optional)),
        is_method=is_method,
        has_varargs=args.vararg is not None,
        has_kwargs=args.kwarg is not None,
        lineno=node.lineno,
        calls=tuple(calls),
        rng_in_scope=in_scope,
        effects=_scan_effects(own_body, aliases),
        checkpoints=tuple(checkpoints),
        retry_wraps=tuple(retry_wraps),
        caught=tuple(sorted(caught)),
        global_assigns=tuple(sorted(global_assigns)),
        loops=tuple(loop_scan.loops),
        loop_calls=loop_scan.loop_calls(),
    )


def _handler_names(handler: ast.ExceptHandler) -> set[str]:
    """Exception type names one ``except`` clause catches ("*" if bare)."""
    if handler.type is None:
        return {"*"}
    names: set[str] = set()
    nodes = (
        list(handler.type.elts)
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for node in nodes:
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
    return names


def _walk_own_body(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested functions."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def summarize_module(
    tree: ast.Module, module: str, rel_path: str, is_init: bool
) -> ModuleSummary:
    """One pass over ``tree`` collecting everything the graphs need."""
    imports: list[ImportRecord] = []
    aliases: dict[str, tuple[str, str | None]] = {}
    refs: set[str] = set()
    top_level_ids = {id(n) for n in tree.body}
    for node in tree.body:
        if isinstance(node, (ast.If, ast.Try)):
            # Guarded imports at module scope still execute at import time.
            top_level_ids.update(id(sub) for sub in ast.walk(node))

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                imports.append(
                    ImportRecord(
                        module=alias.name,
                        names=(),
                        level=0,
                        lineno=node.lineno,
                        col=node.col_offset,
                        top_level=id(node) in top_level_ids,
                        is_from=False,
                    )
                )
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name,
                    None,
                )
        elif isinstance(node, ast.ImportFrom):
            imports.append(
                ImportRecord(
                    module=node.module or "",
                    names=tuple(a.name for a in node.names),
                    level=node.level,
                    lineno=node.lineno,
                    col=node.col_offset,
                    top_level=id(node) in top_level_ids,
                    is_from=True,
                )
            )
            for alias in node.names:
                refs.add(alias.name)
                if node.module and node.level == 0:
                    aliases[alias.asname or alias.name] = (
                        node.module,
                        alias.name,
                    )
        elif isinstance(node, ast.Name):
            refs.add(node.id)
        elif isinstance(node, ast.Attribute):
            refs.add(node.attr)

    symbols: dict[str, dict[str, object]] = {}
    classes: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            symbols[node.name] = {
                "kind": "class" if isinstance(node, ast.ClassDef) else "function",
                "lineno": node.lineno,
                "col": node.col_offset,
                "decorated": bool(node.decorator_list),
            }
            if isinstance(node, ast.ClassDef):
                classes.add(node.name)

    functions: dict[str, FunctionInfo] = {}

    def collect(body: Sequence[ast.stmt], prefix: str, in_class: bool,
                enclosing_rng: tuple[str, ...]) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = prefix + node.name
                info = _function_info(node, qual, in_class, enclosing_rng, aliases)
                functions[qual] = info
                collect(node.body, qual + ".", False, info.rng_in_scope)
            elif isinstance(node, ast.ClassDef):
                collect(node.body, prefix + node.name + ".", True, enclosing_rng)

    collect(tree.body, "", False, ())

    exports, exports_lineno = _literal_exports(tree)
    return ModuleSummary(
        module=module,
        rel_path=rel_path,
        is_init=is_init,
        imports=tuple(imports),
        symbols=symbols,
        exports=exports,
        exports_lineno=exports_lineno,
        refs=frozenset(refs),
        import_aliases=aliases,
        functions=functions,
        classes=frozenset(classes),
        module_effects=_scan_effects(_walk_own_body(tree), aliases),
        globals_info=_module_globals(tree),
    )


# --------------------------------------------------------------- import graph


@dataclass(frozen=True)
class ImportEdge:
    """One resolved module-level dependency."""

    source: str
    target: str
    lineno: int
    top_level: bool
    internal: bool  #: target is among the analyzed modules


def _resolve_relative(record: ImportRecord, module: str, is_init: bool) -> str:
    """Absolute dotted target of a possibly-relative import record."""
    if record.level == 0:
        return record.module
    parts = module.split(".")
    # level 1 from a package __init__ means the package itself.
    drop = record.level - 1 if is_init else record.level
    if drop >= len(parts):
        return record.module
    base = parts[: len(parts) - drop]
    return ".".join(base + ([record.module] if record.module else []))


class ImportGraph:
    """Module-level import dependencies across one analyzed project."""

    def __init__(self, modules: Iterable[str], edges: Sequence[ImportEdge]):
        self.modules = frozenset(modules)
        self.edges = tuple(edges)

    @classmethod
    def build(cls, summaries: Mapping[str, ModuleSummary]) -> "ImportGraph":
        modules = frozenset(summaries)
        edges: dict[tuple[str, str, bool], ImportEdge] = {}

        def add(source: str, target: str, lineno: int, top: bool) -> None:
            if not target or target == source:
                return
            key = (source, target, top)
            if key not in edges:
                edges[key] = ImportEdge(
                    source=source,
                    target=target,
                    lineno=lineno,
                    top_level=top,
                    internal=target in modules,
                )

        for name, summary in summaries.items():
            for record in summary.imports:
                base = _resolve_relative(record, name, summary.is_init)
                if not record.is_from:
                    add(name, base, record.lineno, record.top_level)
                    continue
                targeted_submodule = False
                for imported in record.names:
                    submodule = f"{base}.{imported}" if base else imported
                    if submodule in modules:
                        # ``from pkg import submodule`` depends on the
                        # submodule, not on the package facade.
                        add(name, submodule, record.lineno, record.top_level)
                        targeted_submodule = True
                if not targeted_submodule:
                    add(name, base, record.lineno, record.top_level)
        ordered = sorted(
            edges.values(), key=lambda e: (e.source, e.target, not e.top_level)
        )
        return cls(modules, ordered)

    def internal_edges(self, top_level_only: bool = False) -> list[ImportEdge]:
        return [
            e
            for e in self.edges
            if e.internal and (e.top_level or not top_level_only)
        ]

    def cycles(self) -> list[list[str]]:
        """Import cycles (SCCs of size > 1) over top-level internal edges.

        Function-scoped (lazy) imports are excluded: deferring an import
        to call time is the sanctioned way to break a cycle.
        """
        adjacency: dict[str, list[str]] = {m: [] for m in sorted(self.modules)}
        for edge in self.internal_edges(top_level_only=True):
            adjacency[edge.source].append(edge.target)

        # Iterative Tarjan: recursion depth is unbounded on deep chains.
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        counter = [0]
        sccs: list[list[str]] = []

        for root in adjacency:
            if root in index:
                continue
            work = [(root, iter(adjacency[root]))]
            index[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, children = work[-1]
                advanced = False
                for child in children:
                    if child not in index:
                        index[child] = low[child] = counter[0]
                        counter[0] += 1
                        stack.append(child)
                        on_stack.add(child)
                        work.append((child, iter(adjacency[child])))
                        advanced = True
                        break
                    if child in on_stack:
                        low[node] = min(low[node], index[child])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1:
                        sccs.append(sorted(component))
        return sorted(sccs)

    def _aggregated(self, level: str) -> tuple[list[str], list[tuple[str, str]]]:
        if level not in ("module", "package"):
            raise ValueError(f"unknown graph level {level!r}")

        def group(module: str) -> str:
            if level == "module":
                return module
            parts = module.split(".")
            return ".".join(parts[:2]) if len(parts) > 1 else parts[0]

        nodes = sorted({group(m) for m in self.modules})
        pairs = sorted(
            {
                (group(e.source), group(e.target))
                for e in self.edges
                if e.internal and group(e.source) != group(e.target)
            }
        )
        return nodes, pairs

    def to_json(self, level: str = "module") -> str:
        nodes, pairs = self._aggregated(level)
        payload = {
            "level": level,
            "nodes": nodes,
            "edges": [{"source": s, "target": t} for s, t in pairs],
            "cycles": self.cycles() if level == "module" else [],
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    def to_dot(self, level: str = "module") -> str:
        nodes, pairs = self._aggregated(level)
        lines = [f"digraph repro_imports_{level} {{", "  rankdir=LR;"]
        lines.extend(f'  "{node}";' for node in nodes)
        lines.extend(f'  "{source}" -> "{target}";' for source, target in pairs)
        lines.append("}")
        return "\n".join(lines) + "\n"


# ----------------------------------------------------------------- call graph


class CallResolver:
    """Resolve call sites to ``(module, qualname)`` function keys."""

    #: Re-export chains are chased through at most this many hops.
    MAX_HOPS = 8

    def __init__(self, summaries: Mapping[str, ModuleSummary]):
        self.summaries = summaries

    def _chase(self, module: str, symbol: str) -> tuple[str, str] | None:
        """Follow ``from a import b`` re-exports to the defining module."""
        for _ in range(self.MAX_HOPS):
            summary = self.summaries.get(module)
            if summary is None:
                return None
            if symbol in summary.symbols or symbol in summary.functions:
                return module, symbol
            hop = summary.import_aliases.get(symbol)
            if hop is None:
                # ``from pkg import submodule`` style access.
                if f"{module}.{symbol}" in self.summaries:
                    return None  # a module, not a callable symbol
                return None
            next_module, next_symbol = hop
            if next_symbol is None:
                return None
            module, symbol = next_module, next_symbol
        return None

    def _function_key(
        self, module: str, symbol: str
    ) -> tuple[str, str] | None:
        """Map a defining-module symbol to a concrete FunctionInfo key."""
        summary = self.summaries.get(module)
        if summary is None:
            return None
        if symbol in summary.classes:
            init = f"{symbol}.__init__"
            return (module, init) if init in summary.functions else None
        if symbol in summary.functions:
            return (module, symbol)
        return None

    def resolve(
        self, module: str, caller_qualname: str, site: CallSite
    ) -> tuple[str, str] | None:
        """The ``(module, qualname)`` a call site lands on, if static."""
        summary = self.summaries.get(module)
        if summary is None:
            return None
        shape = site.callee[0]
        if shape == "name":
            name = site.callee[1]
            if name in summary.functions or name in summary.classes:
                return self._function_key(module, name)
            alias = summary.import_aliases.get(name)
            if alias is not None and alias[1] is not None:
                landed = self._chase(*alias)
                if landed is not None:
                    return self._function_key(*landed)
            return None
        if shape == "self":
            if "." not in caller_qualname:
                return None
            class_prefix = caller_qualname.rsplit(".", 1)[0]
            candidate = f"{class_prefix}.{site.callee[1]}"
            if candidate in summary.functions:
                return (module, candidate)
            return None
        if shape == "attr":
            base, attr = site.callee[1], site.callee[2]
            alias = summary.import_aliases.get(base)
            if alias is None:
                return None
            target_module, symbol = alias
            if symbol is not None:
                # attribute access on an imported symbol — dynamic.
                return None
            landed = self._chase(target_module, attr)
            if landed is not None:
                return self._function_key(*landed)
            return None
        return None

    def function_info(self, key: tuple[str, str]) -> FunctionInfo | None:
        summary = self.summaries.get(key[0])
        if summary is None:
            return None
        return summary.functions.get(key[1])


class CallGraph:
    """Resolved call edges: ``(module, qual) -> {(module, qual), ...}``."""

    def __init__(self, edges: Mapping[tuple[str, str], frozenset[tuple[str, str]]]):
        self.edges = dict(edges)

    @classmethod
    def build(cls, summaries: Mapping[str, ModuleSummary]) -> "CallGraph":
        resolver = CallResolver(summaries)
        edges: dict[tuple[str, str], set[tuple[str, str]]] = {}
        for module, summary in summaries.items():
            for qualname, info in summary.functions.items():
                caller = (module, qualname)
                for site in info.calls:
                    callee = resolver.resolve(module, qualname, site)
                    if callee is not None:
                        edges.setdefault(caller, set()).add(callee)
        return cls({k: frozenset(v) for k, v in edges.items()})

    def callees(self, module: str, qualname: str) -> frozenset[tuple[str, str]]:
        return self.edges.get((module, qualname), frozenset())


# ----------------------------------------------------------- layering contract

#: Contract filename searched for under ``docs/`` above the project root.
CONTRACT_FILENAME = "ARCHITECTURE_CONTRACT"


class ContractError(ValueError):
    """Raised when the layering-contract file cannot be parsed."""


@dataclass
class LayeringContract:
    """An ordered stack of layers, lowest (most foundational) first.

    The contract file format is line-based::

        # comments and blank lines are ignored
        layer foundation: repro.config repro.exceptions
        layer kernels: repro.ml repro.data

    A module belongs to the layer of its *longest* matching package
    prefix; modules matching no layer are unconstrained. A module may
    import its own layer and every layer below it — importing a higher
    layer is an inversion (rule ARC001).

    Besides ``layer`` lines, the file may carry *directive* lines that
    parameterize the inter-procedural rule packs::

        core determinism: repro.experiments repro.parallel
        exempt determinism: repro.telemetry repro.cli
        exempt seams: repro.telemetry
        seam raises: persistence.save
        fork entrypoints: repro.parallel.executor:_execute_cell
        fork initializers: repro.parallel.executor:_init_worker
        cost entrypoints: repro.matching.pipeline:EMPipeline
        cost expensive: repro.nn.transformer:TransformerEncoder.encode
        cost pure: stable_digest
        cost hot loops: repro.data.blocking

    Repeated directives accumulate. Unknown keywords are parse errors.
    """

    layers: tuple[tuple[str, tuple[str, ...]], ...] = ()
    source: str = "<memory>"
    directives: dict[str, tuple[str, ...]] = field(default_factory=dict)

    #: Directive keywords accepted ahead of the ``layer`` stanzas.
    DIRECTIVES = (
        "core determinism",
        "exempt determinism",
        "exempt seams",
        "seam raises",
        "fork entrypoints",
        "fork initializers",
        "cost entrypoints",
        "cost expensive",
        "cost pure",
        "cost hot loops",
    )

    def directive(self, name: str) -> tuple[str, ...]:
        """Accumulated values of one directive; () when undeclared."""
        return self.directives.get(name, ())

    @classmethod
    def parse(cls, text: str, source: str = "<memory>") -> "LayeringContract":
        layers: list[tuple[str, tuple[str, ...]]] = []
        seen_packages: dict[str, str] = {}
        directives: dict[str, tuple[str, ...]] = {}
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            matched = next(
                (d for d in cls.DIRECTIVES if line.startswith(d + ":")), None
            )
            if matched is not None:
                values = tuple(line[len(matched) + 1:].split())
                if not values:
                    raise ContractError(
                        f"{source}:{lineno}: directive {matched!r} needs at "
                        "least one value"
                    )
                directives[matched] = directives.get(matched, ()) + values
                continue
            if not line.startswith("layer "):
                raise ContractError(
                    f"{source}:{lineno}: expected 'layer <name>: pkg ...' "
                    f"or a directive line, got {raw.strip()!r}"
                )
            head, _, tail = line[len("layer "):].partition(":")
            layer_name = head.strip()
            packages = tuple(tail.split())
            if not layer_name or not packages:
                raise ContractError(
                    f"{source}:{lineno}: layer needs a name and at least "
                    "one package"
                )
            for package in packages:
                if package in seen_packages:
                    raise ContractError(
                        f"{source}:{lineno}: package {package!r} already "
                        f"assigned to layer {seen_packages[package]!r}"
                    )
                seen_packages[package] = layer_name
            layers.append((layer_name, packages))
        return cls(layers=tuple(layers), source=source, directives=directives)

    @classmethod
    def load(cls, path: Path) -> "LayeringContract":
        return cls.parse(path.read_text(encoding="utf-8"), source=str(path))

    @classmethod
    def find(cls, root: Path) -> "LayeringContract | None":
        """Locate ``docs/ARCHITECTURE_CONTRACT`` at or above ``root``."""
        root = root.resolve()
        for base in (root, *root.parents):
            candidate = base / "docs" / CONTRACT_FILENAME
            if candidate.is_file():
                return cls.load(candidate)
        return None

    def layer_of(self, module: str) -> tuple[int, str] | None:
        """(index, name) of the layer owning ``module``, longest prefix."""
        best: tuple[int, int, str] | None = None  # (prefix_len, idx, name)
        for idx, (layer_name, packages) in enumerate(self.layers):
            for package in packages:
                if module == package or module.startswith(package + "."):
                    if best is None or len(package) > best[0]:
                        best = (len(package), idx, layer_name)
        if best is None:
            return None
        return best[1], best[2]
