"""Static analysis for the EM reproduction: ``repro.analysis``.

A from-scratch, stdlib-``ast`` lint engine with EM-repro-specific rules:
RNG discipline (every stream through :func:`repro.config.rng_for`),
estimator API conformance, search-space ↔ estimator ``__init__``
cross-validation, export hygiene, and generic pitfalls — plus a
whole-program layer (import/call graphs, layering contracts, RNG-flow
tracking, dead-symbol detection) backed by an mtime+size parse cache.
Run it with::

    python -m repro.analysis src/
    repro-em lint --format json
    repro-em lint --graph dot          # dump the import graph
    repro-em lint --changed            # pre-commit: git-changed files only

Findings are suppressed in place with ``# repro: noqa[RULE]`` or
grandfathered in ``lint_baseline.json``; tier-1 gates on zero
non-baselined findings via ``tests/test_static_analysis.py``. See
``docs/STATIC_ANALYSIS.md``.
"""

from repro.analysis.baseline import Baseline, BaselineResult, apply_baseline
from repro.analysis.cache import AnalysisCache
from repro.analysis.cli import analysis_salt
from repro.analysis.cost import (
    CostAnalysis,
    DEFAULT_COST_ENTRYPOINTS,
    DEFAULT_COST_EXPENSIVE,
    DEFAULT_COST_HOT_LOOPS,
    DEFAULT_COST_PURE,
    DUCK_MAX,
    Hotspot,
    Multiplicity,
    cost_analysis,
    cost_policy,
    spec_matches,
)
from repro.analysis.core import (
    FileRule,
    Finding,
    Project,
    ProjectRule,
    Rule,
    RULE_REGISTRY,
    Severity,
    SourceModule,
    all_rules,
    analyze,
    analyze_project,
    register_rule,
    suppressed_rules,
)
from repro.analysis.effects import (
    EffectAnalysis,
    EffectSite,
    effect_analysis,
)
from repro.analysis.flow import RngFlowViolation, iter_rng_flow_violations
from repro.analysis.graph import (
    CallGraph,
    CallResolver,
    CallSite,
    ContractError,
    EFFECT_TAGS,
    FunctionInfo,
    ImportEdge,
    ImportGraph,
    ImportRecord,
    LayeringContract,
    LoopCall,
    LoopInfo,
    ModuleSummary,
    summarize_module,
)
from repro.analysis.reporter import (
    render_hotspots_json,
    render_hotspots_text,
    render_json,
    render_text,
    summarize,
)

# Importing the package registers the built-in rule pack, so that
# RULE_REGISTRY is populated for anyone who imported repro.analysis.
import repro.analysis.rules  # noqa: E402,F401 - registration side effect

__all__ = [
    "AnalysisCache",
    "Baseline",
    "BaselineResult",
    "CallGraph",
    "CallResolver",
    "CallSite",
    "ContractError",
    "CostAnalysis",
    "DEFAULT_COST_ENTRYPOINTS",
    "DEFAULT_COST_EXPENSIVE",
    "DEFAULT_COST_HOT_LOOPS",
    "DEFAULT_COST_PURE",
    "DUCK_MAX",
    "EFFECT_TAGS",
    "EffectAnalysis",
    "EffectSite",
    "FileRule",
    "Finding",
    "FunctionInfo",
    "Hotspot",
    "ImportEdge",
    "ImportGraph",
    "ImportRecord",
    "LayeringContract",
    "LoopCall",
    "LoopInfo",
    "ModuleSummary",
    "Multiplicity",
    "Project",
    "ProjectRule",
    "RULE_REGISTRY",
    "RngFlowViolation",
    "Rule",
    "Severity",
    "SourceModule",
    "all_rules",
    "analysis_salt",
    "analyze",
    "analyze_project",
    "apply_baseline",
    "cost_analysis",
    "cost_policy",
    "effect_analysis",
    "iter_rng_flow_violations",
    "register_rule",
    "spec_matches",
    "render_hotspots_json",
    "render_hotspots_text",
    "render_json",
    "render_text",
    "summarize",
    "summarize_module",
    "suppressed_rules",
]
