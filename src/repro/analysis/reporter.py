"""Finding reporters: human text and machine JSON."""

from __future__ import annotations

import json
from collections import Counter

from repro.analysis.baseline import BaselineResult
from repro.analysis.core import Finding, Severity

__all__ = ["render_text", "render_json", "summarize"]


def summarize(result: BaselineResult) -> dict[str, int]:
    return {
        "new": len(result.new),
        "baselined": len(result.matched),
        "stale_baseline_entries": len(result.stale),
        "errors": sum(
            1 for f in result.new if f.severity is Severity.ERROR
        ),
        "warnings": sum(
            1 for f in result.new if f.severity is Severity.WARNING
        ),
    }


def render_text(result: BaselineResult, verbose: bool = False) -> str:
    """Compiler-style ``path:line:col: RULE message`` lines plus a tally."""
    lines = [f.render() for f in result.new]
    if verbose and result.matched:
        lines.append("")
        lines.append(f"baselined ({len(result.matched)} grandfathered):")
        lines.extend(f"  {f.render()}" for f in result.matched)
    for rule, path, _message in result.stale:
        lines.append(
            f"stale baseline entry: {rule} at {path} no longer fires "
            "(prune it from the baseline)"
        )
    summary = summarize(result)
    if result.new:
        by_rule = Counter(f.rule for f in result.new)
        tally = ", ".join(f"{r}x{n}" if n > 1 else r for r, n in sorted(by_rule.items()))
        lines.append(
            f"{summary['new']} finding(s) ({summary['errors']} error, "
            f"{summary['warnings']} warning; {tally}), "
            f"{summary['baselined']} baselined"
        )
    else:
        lines.append(f"clean: 0 findings, {summary['baselined']} baselined")
    return "\n".join(lines)


def render_json(result: BaselineResult) -> str:
    payload = {
        "findings": [f.to_dict() for f in result.new],
        "baselined": [f.to_dict() for f in result.matched],
        "stale_baseline_entries": [
            {"rule": rule, "path": path, "message": message}
            for rule, path, message in result.stale
        ],
        "summary": summarize(result),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
