"""Finding reporters: human text and machine JSON."""

from __future__ import annotations

import json
from collections import Counter
from collections.abc import Sequence

from repro.analysis.baseline import BaselineResult
from repro.analysis.core import Finding, Severity

__all__ = [
    "render_text",
    "render_json",
    "render_hotspots_text",
    "render_hotspots_json",
    "summarize",
]


def summarize(result: BaselineResult) -> dict[str, int]:
    return {
        "new": len(result.new),
        "baselined": len(result.matched),
        "stale_baseline_entries": len(result.stale),
        "errors": sum(
            1 for f in result.new if f.severity is Severity.ERROR
        ),
        "warnings": sum(
            1 for f in result.new if f.severity is Severity.WARNING
        ),
    }


def render_text(result: BaselineResult, verbose: bool = False) -> str:
    """Compiler-style ``path:line:col: RULE message`` lines plus a tally."""
    lines = [f.render() for f in result.new]
    if verbose and result.matched:
        lines.append("")
        lines.append(f"baselined ({len(result.matched)} grandfathered):")
        lines.extend(f"  {f.render()}" for f in result.matched)
    for rule, path, _message in result.stale:
        lines.append(
            f"stale baseline entry: {rule} at {path} no longer fires "
            "(prune it from the baseline)"
        )
    summary = summarize(result)
    if result.new:
        by_rule = Counter(f.rule for f in result.new)
        tally = ", ".join(f"{r}x{n}" if n > 1 else r for r, n in sorted(by_rule.items()))
        lines.append(
            f"{summary['new']} finding(s) ({summary['errors']} error, "
            f"{summary['warnings']} warning; {tally}), "
            f"{summary['baselined']} baselined"
        )
    else:
        lines.append(f"clean: 0 findings, {summary['baselined']} baselined")
    return "\n".join(lines)


def render_json(result: BaselineResult) -> str:
    payload = {
        "findings": [f.to_dict() for f in result.new],
        "baselined": [f.to_dict() for f in result.matched],
        "stale_baseline_entries": [
            {"rule": rule, "path": path, "message": message}
            for rule, path, message in result.stale
        ],
        "summary": summarize(result),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_hotspots_text(hotspots: Sequence, total: int | None = None) -> str:
    """Ranked hotspot table: one line per function plus its call chain.

    ``hotspots`` holds :class:`repro.analysis.cost.Hotspot` entries
    (already ranked); ``total`` is the untruncated count when the list
    was cut with ``--top``.
    """
    if not hotspots:
        return "no functions reached from the cost entry points"
    lines = []
    width = len(str(len(hotspots)))
    for rank, spot in enumerate(hotspots, start=1):
        lines.append(
            f"{rank:>{width}}. {spot.module}:{spot.qualname} "
            f"[{spot.multiplicity.render()}] "
            f"score={spot.score} ({spot.reason})"
        )
        if len(spot.chain) > 1:
            lines.append(f"{' ' * (width + 2)}{' '.join(spot.chain)}")
    shown = len(hotspots)
    if total is not None and total > shown:
        lines.append(f"({shown} of {total} reached functions shown)")
    else:
        lines.append(f"({shown} reached function(s))")
    return "\n".join(lines)


def render_hotspots_json(hotspots: Sequence, total: int | None = None) -> str:
    payload = {
        "hotspots": [spot.to_dict() for spot in hotspots],
        "shown": len(hotspots),
        "total": total if total is not None else len(hotspots),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
