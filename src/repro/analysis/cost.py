"""Symbolic cost analysis: loop-depth multiplicities over the call graph.

The effect engine answers *what* a function touches; this module answers
*how often it runs* relative to the workload. Each function reached from
a cost entry point gets a symbolic multiplicity from a small lattice::

    once  <  per-record  <  per-pair  <  per-pair×k

``once`` is "executes a bounded number of times per experiment",
``per-record`` is "inside one data-sized loop", ``per-pair`` is two
data-sized loops deep (the candidate-pair regime every EM paper fights),
and the ``×k`` tail absorbs constant-bound inner loops (per-attribute,
per-layer) and anything deeper than rank 3 — including recursion, which
the max-join fixpoint caps there instead of diverging.

Propagation is caller-ward: entry points (``ExperimentRunner``, the
pipeline, ``adapter.transform``, blocking — or the ``cost entrypoints``
contract directive) seed at ``once``; each call site bumps the caller's
multiplicity by its enclosing loop frames and max-joins into the callee.
Call sites resolve through :class:`~repro.analysis.graph.CallResolver`
first; receiver-typed calls the static resolver cannot see
(``self.embedder.embed_pairs(...)``) fall back to *duck resolution* —
matching the method name against every class method in the project —
capped at :data:`DUCK_MAX` candidates so genuinely dynamic names
(``.fit``, ``.get``) do not smear multiplicity everywhere.

The ``cost expensive`` / ``cost pure`` / ``cost hot loops`` directives
(see :class:`~repro.analysis.graph.LayeringContract`) parameterize the
PERF rule family and the ``repro-em lint --hotspots`` report built on
top of this analysis.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.analysis.effects import EffectAnalysis
from repro.analysis.graph import (
    CallResolver,
    CallSite,
    FunctionInfo,
    LayeringContract,
    ModuleSummary,
)

__all__ = [
    "DEFAULT_COST_ENTRYPOINTS",
    "DEFAULT_COST_EXPENSIVE",
    "DEFAULT_COST_HOT_LOOPS",
    "DEFAULT_COST_PURE",
    "DUCK_MAX",
    "CostAnalysis",
    "Hotspot",
    "Multiplicity",
    "cost_analysis",
    "cost_policy",
    "spec_matches",
]


#: Workload entry points when the contract declares no ``cost
#: entrypoints``: the experiment driver, the matching pipeline, the
#: adapter transform, and the blocking layer (which owns the only
#: sanctioned pair-quadratic loops).
DEFAULT_COST_ENTRYPOINTS = (
    "repro.experiments.runner:ExperimentRunner",
    "repro.matching.pipeline:EMPipeline",
    "repro.adapter.pipeline:EMAdapter.transform",
    "repro.data.blocking",
)

#: Expensive primitives when the contract declares no ``cost
#: expensive``: the transformer forward passes and everything that
#: embeds per sequence.
DEFAULT_COST_EXPENSIVE = (
    "repro.transformers.pretrained:PretrainedEncoder.embed_sequences",
    "repro.transformers.pretrained:PretrainedEncoder._sequence_matrix",
    "repro.nn.transformer:TransformerEncoder.encode",
    "repro.adapter.embedder:TransformerEmbedder.embed_pairs",
)

#: No computation is *declared* pure by default — PERF002 judges purity
#: from the effect fixpoint; the directive exists for dynamic callees
#: the resolver cannot see into.
DEFAULT_COST_PURE: tuple[str, ...] = ()

#: Sanctioned hot loops — modules allowed pair-quadratic nests and
#: per-element inner loops: the blocking layer (quadratic *before*
#: blocking is its whole job), token-level string similarity (inherently
#: quadratic in token counts), and the experiment/parallel grid sweeps
#: (nested config loops, each cell a full run — not a data hot path).
DEFAULT_COST_HOT_LOOPS = (
    "repro.data.blocking",
    "repro.text.similarity",
    "repro.experiments",
    "repro.parallel.grid",
)

#: Duck resolution gives up beyond this many same-named method
#: candidates — the name is effectively dynamic dispatch at that point.
DUCK_MAX = 12

#: Hotspot weights: declared-expensive primitives dominate, transitive
#: I/O or process work is heavy, other effects are mild, pure is cheap.
WEIGHT_EXPENSIVE = 1000
WEIGHT_IO = 50
WEIGHT_EFFECT = 5
WEIGHT_PURE = 1

_RANK_NAMES = ("once", "per-record", "per-pair")


@dataclass(frozen=True, order=True)
class Multiplicity:
    """One point of the ``once < per-record < per-pair < per-pair×k``
    lattice.

    ``rank`` counts data-sized loop dimensions (capped at
    :data:`MAX_RANK`); ``k`` marks extra constant-bound factors
    (per-attribute, per-layer) riding on top. Ordering is field order —
    ``(rank, k)`` — which makes ``max()`` the lattice join.
    """

    rank: int = 0
    k: bool = False

    MAX_RANK = 3

    def bump(self, data_loops: int, const_loops: int = 0) -> "Multiplicity":
        """The multiplicity after entering the given loop frames."""
        rank = self.rank + data_loops
        overflow = rank > self.MAX_RANK
        return Multiplicity(
            rank=min(rank, self.MAX_RANK),
            k=self.k or const_loops > 0 or overflow,
        )

    def render(self) -> str:
        base = _RANK_NAMES[min(self.rank, 2)]
        if self.rank >= self.MAX_RANK or self.k:
            return base + "×k"
        return base


ONCE = Multiplicity(0)
PER_RECORD = Multiplicity(1)
PER_PAIR = Multiplicity(2)


def spec_matches(spec: str, module: str, qualname: str) -> bool:
    """Whether a cost-directive spec covers ``module:qualname``.

    Three spec shapes: ``pkg.module:Qual.name`` pins one function (or a
    class and all its methods), ``pkg.module`` covers a module subtree,
    and a bare ``name`` (no ``:``, no ``.``) matches any function or
    method with that final name segment — the escape hatch for callees
    only ever seen through dynamic dispatch.
    """
    if ":" in spec:
        mod, _, qual = spec.partition(":")
        return module == mod and (
            qualname == qual or qualname.startswith(qual + ".")
        )
    if "." in spec:
        return module == spec or module.startswith(spec + ".")
    return qualname == spec or qualname.endswith("." + spec)


def _any_spec(specs: Sequence[str], module: str, qualname: str) -> bool:
    return any(spec_matches(s, module, qualname) for s in specs)


def _name_specs(specs: Sequence[str]) -> frozenset[str]:
    """The bare-name specs, for matching dynamic ``callee_repr`` text."""
    return frozenset(s for s in specs if ":" not in s and "." not in s)


def cost_policy(
    contract: LayeringContract | None,
) -> tuple[tuple[str, ...], tuple[str, ...], tuple[str, ...], tuple[str, ...]]:
    """(entrypoints, expensive, pure, hot loops) for one contract."""
    entry: tuple[str, ...] = ()
    expensive: tuple[str, ...] = ()
    pure: tuple[str, ...] = ()
    hot: tuple[str, ...] = ()
    if contract is not None:
        entry = contract.directive("cost entrypoints")
        expensive = contract.directive("cost expensive")
        pure = contract.directive("cost pure")
        hot = contract.directive("cost hot loops")
    return (
        entry or DEFAULT_COST_ENTRYPOINTS,
        expensive or DEFAULT_COST_EXPENSIVE,
        pure or DEFAULT_COST_PURE,
        hot or DEFAULT_COST_HOT_LOOPS,
    )


@dataclass
class Hotspot:
    """One ranked entry of the ``--hotspots`` report."""

    module: str
    qualname: str
    lineno: int
    multiplicity: Multiplicity
    weight: int
    score: int
    reason: str  #: why the weight ("declared expensive", "io", ...)
    chain: tuple[str, ...]  #: rendered hops from an entry point here

    def to_dict(self) -> dict:
        return {
            "module": self.module,
            "qualname": self.qualname,
            "lineno": self.lineno,
            "multiplicity": self.multiplicity.render(),
            "weight": self.weight,
            "score": self.score,
            "reason": self.reason,
            "chain": list(self.chain),
        }


class CostAnalysis:
    """Multiplicity fixpoint plus the queries the PERF rules consume.

    Keys are ``(module, qualname)`` function identities, exactly the
    :class:`~repro.analysis.graph.CallGraph` convention.
    """

    def __init__(
        self,
        summaries: Mapping[str, ModuleSummary],
        contract: LayeringContract | None = None,
        effects: EffectAnalysis | None = None,
    ):
        self.summaries = summaries
        self.resolver = CallResolver(summaries)
        self.effects = (
            effects if effects is not None else EffectAnalysis(summaries)
        )
        (
            self.entrypoints,
            self.expensive_specs,
            self.pure_specs,
            self.hot_loop_specs,
        ) = cost_policy(contract)
        self._expensive_names = _name_specs(self.expensive_specs)
        self._pure_names = _name_specs(self.pure_specs)
        self._duck: dict[str, tuple[tuple[str, str], ...]] = {}
        self._build_duck_index()
        self.multiplicities: dict[tuple[str, str], Multiplicity] = {}
        #: witness[callee] = (caller key, call site) that last raised it
        self.witness: dict[
            tuple[str, str], tuple[tuple[str, str], CallSite] | None
        ] = {}
        self._propagate()

    # ------------------------------------------------------------ resolution

    def _build_duck_index(self) -> None:
        index: dict[str, list[tuple[str, str]]] = {}
        for module in sorted(self.summaries):
            for qualname, info in self.summaries[module].functions.items():
                if not info.is_method:
                    continue
                name = qualname.rsplit(".", 1)[-1]
                if name.startswith("__") and name.endswith("__"):
                    continue
                index.setdefault(name, []).append((module, qualname))
        self._duck = {n: tuple(keys) for n, keys in index.items()}

    def duck_candidates(self, name: str) -> tuple[tuple[str, str], ...]:
        """Project methods a dynamic ``.name(...)`` call could land on.

        Empty when unknown *or* when more than :data:`DUCK_MAX` classes
        define the name — an over-shared name carries no information.
        """
        candidates = self._duck.get(name, ())
        return candidates if len(candidates) <= DUCK_MAX else ()

    def resolve_candidates(
        self, module: str, caller_qualname: str, site: CallSite
    ) -> tuple[tuple[str, str], ...]:
        """Possible callees of one site: static resolution, then duck.

        Duck resolution only applies to receiver-typed shapes the static
        resolver proved nothing about: ``self``/``method`` always,
        ``attr`` only when the base name is not an import alias (an
        alias base means the resolver's miss was authoritative — the
        callee lives outside the project).
        """
        static = self.resolver.resolve(module, caller_qualname, site)
        if static is not None:
            return (static,)
        shape = site.callee[0]
        if shape in ("self", "method"):
            return self.duck_candidates(site.callee[-1])
        if shape == "attr":
            summary = self.summaries.get(module)
            if summary is not None and site.callee[1] in summary.import_aliases:
                return ()
            return self.duck_candidates(site.callee[2])
        return ()

    # ----------------------------------------------------------- propagation

    def _seed(self) -> list[tuple[str, str]]:
        seeds = []
        for module in sorted(self.summaries):
            for qualname in self.summaries[module].functions:
                if _any_spec(self.entrypoints, module, qualname):
                    seeds.append((module, qualname))
        return seeds

    def _site_factors(
        self, info: FunctionInfo, loops: Sequence[int]
    ) -> tuple[int, int]:
        """(data-sized, constant-bound) loop frames around one site."""
        data = const = 0
        for idx in loops:
            if 0 <= idx < len(info.loops) and info.loops[idx].is_const:
                const += 1
            else:
                data += 1
        return data, const

    def _propagate(self) -> None:
        queue: deque[tuple[str, str]] = deque()
        for key in self._seed():
            self.multiplicities[key] = ONCE
            self.witness[key] = None
            queue.append(key)
        while queue:
            caller = queue.popleft()
            caller_mult = self.multiplicities[caller]
            info = self.summaries[caller[0]].functions[caller[1]]
            for site in info.calls:
                data, const = self._site_factors(info, site.loops)
                site_mult = caller_mult.bump(data, const)
                for callee in self.resolve_candidates(
                    caller[0], caller[1], site
                ):
                    known = self.multiplicities.get(callee)
                    if known is None or site_mult > known:
                        self.multiplicities[callee] = site_mult
                        self.witness[callee] = (caller, site)
                        queue.append(callee)

    # --------------------------------------------------------------- queries

    def multiplicity(self, module: str, qualname: str) -> Multiplicity | None:
        """The function's reached multiplicity, None when unreached."""
        return self.multiplicities.get((module, qualname))

    def site_multiplicity(
        self, module: str, qualname: str, loops: Sequence[int]
    ) -> Multiplicity:
        """Multiplicity of a call site inside ``module:qualname``.

        Unreached enclosing functions are *assumed* to run once — a
        dynamic-dispatch gap in the call graph must not hide a depth-2
        nest from the PERF rules.
        """
        base = self.multiplicities.get((module, qualname), ONCE)
        info = self.summaries[module].functions[qualname]
        data, const = self._site_factors(info, loops)
        return base.bump(data, const)

    def declared_expensive(self, module: str, qualname: str) -> bool:
        """Explicitly listed under ``cost expensive`` (or its defaults)."""
        return _any_spec(self.expensive_specs, module, qualname)

    def is_expensive(self, module: str, qualname: str) -> bool:
        """Declared expensive, or transitively does I/O / process work."""
        if self.declared_expensive(module, qualname):
            return True
        tags = self.effects.function_effects(module, qualname)
        return bool(tags & {"io", "process"})

    def expensive_name(self, name: str) -> bool:
        """Bare-name ``cost expensive`` match for dynamic callees."""
        return name in self._expensive_names

    def is_pure(self, module: str, qualname: str) -> bool:
        """Declared pure, or transitively effect-free per the fixpoint."""
        if _any_spec(self.pure_specs, module, qualname):
            return True
        return not self.effects.function_effects(module, qualname)

    def pure_name(self, name: str) -> bool:
        return name in self._pure_names

    def sanctioned_hot(self, module: str, qualname: str) -> bool:
        """Whether ``cost hot loops`` blesses quadratic nests here."""
        return _any_spec(self.hot_loop_specs, module, qualname)

    # ----------------------------------------------------------------- report

    def chain(
        self, module: str, qualname: str, limit: int = 10
    ) -> tuple[str, ...]:
        """Rendered witness hops from an entry point to this function.

        Each hop after the first carries the loop frames the witness
        call sat inside, e.g. ``-[for pair in dataset]->``.
        """
        key = (module, qualname)
        if key not in self.multiplicities:
            return ()
        hops = [f"{module}:{qualname}"]
        seen = {key}
        while len(hops) < limit:
            step = self.witness.get(key)
            if step is None:
                break
            caller, site = step
            info = self.summaries[caller[0]].functions[caller[1]]
            frames = " in ".join(
                _frame_repr(info.loops[idx])
                for idx in reversed(site.loops)
                if 0 <= idx < len(info.loops)
            )
            arrow = f"-[{frames}]->" if frames else "->"
            hops[0] = f"{arrow} {hops[0]}"
            if caller in seen:
                hops.insert(0, "…")
                break
            seen.add(caller)
            key = caller
            hops.insert(0, f"{caller[0]}:{caller[1]}")
        return tuple(hops)

    def _weight(self, module: str, qualname: str) -> tuple[int, str]:
        if _any_spec(self.expensive_specs, module, qualname):
            return WEIGHT_EXPENSIVE, "declared expensive"
        tags = self.effects.function_effects(module, qualname)
        if tags & {"io", "process"}:
            return WEIGHT_IO, "+".join(sorted(tags & {"io", "process"}))
        if tags:
            return WEIGHT_EFFECT, "+".join(sorted(tags))
        return WEIGHT_PURE, "pure"

    def hotspots(self, top: int = 0) -> list[Hotspot]:
        """Reached functions ranked by multiplicity × effect weight.

        ``top`` truncates the list; 0 means everything reached.
        """
        entries = []
        for (module, qualname), mult in self.multiplicities.items():
            weight, reason = self._weight(module, qualname)
            score = weight * (100 ** mult.rank) * (2 if mult.k else 1)
            info = self.summaries[module].functions[qualname]
            entries.append(
                Hotspot(
                    module=module,
                    qualname=qualname,
                    lineno=info.lineno,
                    multiplicity=mult,
                    weight=weight,
                    score=score,
                    reason=reason,
                    chain=self.chain(module, qualname),
                )
            )
        entries.sort(key=lambda h: (-h.score, h.module, h.qualname))
        return entries[:top] if top > 0 else entries


def _frame_repr(loop) -> str:
    if loop.kind == "while":
        return "while …"
    head = ", ".join(loop.bound) or "_"
    kind = "" if loop.kind == "for" else f" ({loop.kind})"
    return f"for {head} in {loop.iter_repr}{kind}"


def cost_analysis(project) -> CostAnalysis:
    """The project's :class:`CostAnalysis`, built once and shared.

    All four PERF rules and the ``--hotspots`` report consume the same
    fixpoint; memoizing on the project keeps it to one build per lint,
    and reuses the project's effect fixpoint rather than re-running it.
    """
    from repro.analysis.effects import effect_analysis, project_contract

    cached = getattr(project, "_cost_analysis", None)
    if cached is None:
        cached = CostAnalysis(
            project.summaries,
            contract=project_contract(project),
            effects=effect_analysis(project),
        )
        project._cost_analysis = cached
    return cached
