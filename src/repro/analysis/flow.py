"""Inter-procedural RNG-flow analysis: is seeded state forwarded?

The file-scoped RNG rules (RNG001/002) police how generators are
*constructed*; this module polices how they *travel*. The reproduction's
determinism contract is that one master seed fans out through explicit
``rng``/``seed`` parameters — so a function that holds seeded state and
calls a callee that accepts such a parameter must pass it on. Dropping
it silently re-seeds the downstream component from its own default,
which is exactly the pipeline-wiring drift that breaks run-to-run
reproducibility three calls deep where no per-file rule can see it.

The analysis runs on :class:`~repro.analysis.graph.ModuleSummary` data:
for every function whose scope holds an rng-ish name (a parameter, a
local binding, or a closure over an enclosing function's parameter), it
resolves each statically-resolvable call through
:class:`~repro.analysis.graph.CallResolver` and checks whether any of
the callee's rng-ish parameters receives a value — positionally, by
keyword, or via ``*``/``**`` splats (splats are assumed to cover).

Calls into :data:`EXEMPT_CALLEE_MODULES` never count: ``repro.config``
is where seeded state is legitimately *created* (the blessed
``rng = rng if rng is not None else rng_for(...)`` fallback), not a
consumer that a generator should be threaded into.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from dataclasses import dataclass

from repro.analysis.graph import (
    CallResolver,
    CallSite,
    FunctionInfo,
    ModuleSummary,
)

__all__ = ["RngFlowViolation", "iter_rng_flow_violations"]

#: Modules whose callables create seeded state rather than consume it.
EXEMPT_CALLEE_MODULES = frozenset({"repro.config"})


@dataclass(frozen=True)
class RngFlowViolation:
    """One call site that drops seeded state on the floor."""

    module: str
    rel_path: str
    lineno: int
    col: int
    caller: str  #: caller qualname within ``module``
    held: tuple[str, ...]  #: rng-ish names in the caller's scope
    callee_module: str
    callee_qualname: str
    dropped: tuple[str, ...]  #: callee rng-ish params left to default

    @property
    def callee_display(self) -> str:
        """Human name of the callee; constructors show as ``Class()``."""
        if self.callee_qualname.endswith(".__init__"):
            return self.callee_qualname[: -len(".__init__")] + "()"
        return self.callee_qualname + "()"


def _covers(callee: FunctionInfo, site: CallSite, param: str) -> bool:
    """Does the call site pass a value for the callee's ``param``?"""
    if site.has_star_args:
        return True  # splats are opaque; assume they thread the state
    if param in site.keywords:
        return True
    position = callee.positional_index(param)
    return position is not None and position < site.num_positional


def iter_rng_flow_violations(
    summaries: Mapping[str, ModuleSummary],
) -> Iterator[RngFlowViolation]:
    """Yield every dropped-rng call site, in deterministic order."""
    resolver = CallResolver(summaries)
    for module in sorted(summaries):
        summary = summaries[module]
        for qualname in sorted(summary.functions):
            info = summary.functions[qualname]
            if not info.rng_in_scope:
                continue
            for site in info.calls:
                key = resolver.resolve(module, qualname, site)
                if key is None or key[0] in EXEMPT_CALLEE_MODULES:
                    continue
                callee = resolver.function_info(key)
                if callee is None:
                    continue
                rng_params = callee.rng_params()
                if not rng_params:
                    continue
                if any(_covers(callee, site, p) for p in rng_params):
                    continue
                yield RngFlowViolation(
                    module=module,
                    rel_path=summary.rel_path,
                    lineno=site.lineno,
                    col=site.col,
                    caller=qualname,
                    held=info.rng_in_scope,
                    callee_module=key[0],
                    callee_qualname=key[1],
                    dropped=rng_params,
                )
