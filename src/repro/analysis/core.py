"""Core of the static-analysis engine: findings, rules, and the driver.

The engine is a thin, dependency-free layer over :mod:`ast`. A
:class:`Project` is a parsed snapshot of a set of ``.py`` files; rules
come in two shapes:

* :class:`FileRule` — visits one module at a time (RNG discipline,
  export hygiene, generic pitfalls);
* :class:`ProjectRule` — sees the whole project at once, for checks that
  must cross module boundaries (search-space / estimator conformance).

Findings can be silenced in place with ``# repro: noqa[RULE]`` trailing
comments, or grandfathered in a checked-in baseline file (see
:mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

import ast
import enum
import re
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "Severity",
    "Finding",
    "SourceModule",
    "Project",
    "Rule",
    "FileRule",
    "ProjectRule",
    "RULE_REGISTRY",
    "register_rule",
    "all_rules",
    "analyze_project",
    "suppressed_rules",
]


class Severity(enum.Enum):
    """How loud a rule is. All severities gate; the split is informational."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, order=True)
class Finding:
    """One violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    severity: Severity = field(default=Severity.ERROR, compare=False)

    def fingerprint(self) -> tuple[str, str, str]:
        """Line-number-free identity used for baseline matching.

        Dropping the position lets a baselined finding survive unrelated
        edits above it in the same file.
        """
        return (self.rule, self.path, self.message)

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
        }

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity.value}] {self.message}"
        )


@dataclass
class SourceModule:
    """One parsed source file plus the metadata rules need."""

    path: Path
    rel_path: str
    module_name: str
    text: str
    lines: list[str]
    tree: ast.Module

    @classmethod
    def parse(cls, path: Path, root: Path) -> "SourceModule":
        text = path.read_text(encoding="utf-8")
        try:
            rel = path.relative_to(root).as_posix()
        except ValueError:
            rel = path.as_posix()
        return cls(
            path=path,
            rel_path=rel,
            module_name=_module_name(path),
            text=text,
            lines=text.splitlines(),
            tree=ast.parse(text, filename=str(path)),
        )


def _module_name(path: Path) -> str:
    """Dotted module name, anchored at the last ``src`` dir if present."""
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    elif len(parts) > 2:
        parts = parts[-2:]
    return ".".join(parts)


class Project:
    """A parsed snapshot of every analyzed module."""

    def __init__(self, root: Path, modules: Sequence[SourceModule]):
        self.root = root
        self.modules = list(modules)
        self.by_module_name = {m.module_name: m for m in self.modules}

    def find_module(self, dotted: str) -> SourceModule | None:
        return self.by_module_name.get(dotted)

    @classmethod
    def load(cls, paths: Sequence[Path | str], root: Path | None = None) -> "Project":
        """Collect and parse every ``.py`` file under ``paths``.

        Files that fail to parse are skipped here; the driver reports
        them as PARSE findings instead of crashing the run.
        """
        resolved = [Path(p) for p in paths]
        if root is None:
            root = _common_root(resolved)
        modules = []
        for source in sorted(_iter_sources(resolved)):
            try:
                modules.append(SourceModule.parse(source, root))
            except SyntaxError:
                continue
        return cls(root, modules)


def _common_root(paths: Sequence[Path]) -> Path:
    absolutes = [p.resolve() for p in paths]
    root = absolutes[0] if absolutes[0].is_dir() else absolutes[0].parent
    for p in absolutes[1:]:
        base = p if p.is_dir() else p.parent
        while not base.is_relative_to(root) and root != root.parent:
            root = root.parent
    return root


def _iter_sources(paths: Sequence[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from path.rglob("*.py")
        elif path.suffix == ".py":
            yield path


# ------------------------------------------------------------------ rules


class Rule:
    """Base class: identity, severity, and docs for one check."""

    id: str = ""
    name: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""


class FileRule(Rule):
    """A rule evaluated independently on every module."""

    def check(self, module: SourceModule) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError

    def finding(
        self, module: SourceModule, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            path=module.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            message=message,
            severity=self.severity,
        )


class ProjectRule(Rule):
    """A rule evaluated once with the whole project in view."""

    def check_project(self, project: Project) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError


RULE_REGISTRY: dict[str, Rule] = {}


def register_rule(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding one instance of the rule to the registry."""
    rule = rule_cls()
    if not rule.id:
        raise ValueError(f"{rule_cls.__name__} has no rule id")
    if rule.id in RULE_REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    RULE_REGISTRY[rule.id] = rule
    return rule_cls


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, importing the built-in pack on first use."""
    import repro.analysis.rules  # noqa: F401 - registration side effect

    return tuple(RULE_REGISTRY[rule_id] for rule_id in sorted(RULE_REGISTRY))


# ------------------------------------------------------------- suppression

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?", re.IGNORECASE
)

#: Sentinel meaning "every rule is suppressed on this line".
SUPPRESS_ALL = frozenset({"*"})


def suppressed_rules(line: str) -> frozenset[str]:
    """Rule ids suppressed by a ``# repro: noqa[...]`` comment on ``line``.

    A bare ``# repro: noqa`` returns :data:`SUPPRESS_ALL`; no comment
    returns the empty set.
    """
    match = _NOQA_RE.search(line)
    if match is None:
        return frozenset()
    rules = match.group("rules")
    if rules is None:
        return SUPPRESS_ALL
    return frozenset(r.strip().upper() for r in rules.split(",") if r.strip())


def _is_suppressed(finding: Finding, module: SourceModule | None) -> bool:
    if module is None or not 1 <= finding.line <= len(module.lines):
        return False
    suppressed = suppressed_rules(module.lines[finding.line - 1])
    return suppressed is SUPPRESS_ALL or finding.rule in suppressed


# ------------------------------------------------------------------ driver


def analyze_project(
    paths: Sequence[Path | str],
    rules: Iterable[Rule] | None = None,
    root: Path | None = None,
) -> list[Finding]:
    """Run the rule pack over ``paths`` and return sorted live findings.

    ``# repro: noqa`` suppressions are already applied; baseline
    subtraction is the caller's concern (:mod:`repro.analysis.baseline`).
    """
    selected = tuple(rules) if rules is not None else all_rules()
    project = Project.load(paths, root=root)
    findings: list[Finding] = []
    findings.extend(_parse_failures(paths, project))
    for rule in selected:
        if isinstance(rule, FileRule):
            for module in project.modules:
                findings.extend(rule.check(module))
        elif isinstance(rule, ProjectRule):
            findings.extend(rule.check_project(project))
    by_path = {m.rel_path: m for m in project.modules}
    live = [f for f in findings if not _is_suppressed(f, by_path.get(f.path))]
    return sorted(live)


def _parse_failures(
    paths: Sequence[Path | str], project: Project
) -> Iterator[Finding]:
    """A PARSE finding for every file that failed to compile."""
    parsed = {m.path.resolve() for m in project.modules}
    for source in sorted(_iter_sources([Path(p) for p in paths])):
        if source.resolve() in parsed:
            continue
        try:
            rel = source.resolve().relative_to(project.root).as_posix()
        except ValueError:
            rel = source.as_posix()
        try:
            ast.parse(source.read_text(encoding="utf-8"), filename=str(source))
        except SyntaxError as exc:
            yield Finding(
                path=rel,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                rule="PARSE",
                message=f"syntax error: {exc.msg}",
                severity=Severity.ERROR,
            )
