"""Core of the static-analysis engine: findings, rules, and the driver.

The engine is a thin, dependency-free layer over :mod:`ast`. A
:class:`Project` is a snapshot of a set of ``.py`` files; rules come in
two shapes:

* :class:`FileRule` — visits one module at a time (RNG discipline,
  export hygiene, generic pitfalls);
* :class:`ProjectRule` — sees the whole project at once, for checks that
  must cross module boundaries (search-space / estimator conformance,
  layering contracts, import cycles, RNG-flow, dead symbols).

Cross-module rules work on :class:`~repro.analysis.graph.ModuleSummary`
extracts rather than raw trees; a project therefore lazily exposes
``summaries``, an ``import_graph()``, and a ``call_resolver()``. Paired
with the :class:`~repro.analysis.cache.AnalysisCache`, a warm run can
serve summaries and per-file findings from disk and parse a module only
when a rule actually touches its ``tree``.

Findings can be silenced in place with ``# repro: noqa[RULE]`` trailing
comments, or grandfathered in a checked-in baseline file (see
:mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

import ast
import enum
import re
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.cache import AnalysisCache
from repro.analysis.graph import (
    CallResolver,
    ImportGraph,
    ModuleSummary,
    summarize_module,
)

__all__ = [
    "Severity",
    "Finding",
    "SourceModule",
    "Project",
    "Rule",
    "FileRule",
    "ProjectRule",
    "RULE_REGISTRY",
    "register_rule",
    "all_rules",
    "analyze",
    "analyze_project",
    "suppressed_rules",
]


class Severity(enum.Enum):
    """How loud a rule is. All severities gate; the split is informational."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, order=True)
class Finding:
    """One violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    severity: Severity = field(default=Severity.ERROR, compare=False)

    def fingerprint(self) -> tuple[str, str, str]:
        """Line-number-free identity used for baseline matching.

        Dropping the position lets a baselined finding survive unrelated
        edits above it in the same file.
        """
        return (self.rule, self.path, self.message)

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Finding":
        return cls(
            path=str(payload["path"]),
            line=int(payload["line"]),
            col=int(payload["col"]),
            rule=str(payload["rule"]),
            message=str(payload["message"]),
            severity=Severity(payload["severity"]),
        )

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity.value}] {self.message}"
        )


class SourceModule:
    """One source file plus the metadata rules need.

    The AST is parsed lazily: summaries served from the cache keep most
    warm-run modules tree-free, and only the rules that dereference
    ``module.tree`` pay for a parse.
    """

    def __init__(
        self,
        path: Path,
        rel_path: str,
        module_name: str,
        text: str,
        lines: list[str],
        tree: ast.Module | None = None,
    ):
        self.path = path
        self.rel_path = rel_path
        self.module_name = module_name
        self.text = text
        self.lines = lines
        self._tree = tree

    @property
    def tree(self) -> ast.Module:
        if self._tree is None:
            self._tree = ast.parse(self.text, filename=str(self.path))
        return self._tree

    @property
    def is_init(self) -> bool:
        return self.path.name == "__init__.py"

    @classmethod
    def parse(cls, path: Path, root: Path) -> "SourceModule":
        """Read and parse eagerly; raises :class:`SyntaxError`."""
        module = cls.load(path, root)
        module._tree = ast.parse(module.text, filename=str(path))
        return module

    @classmethod
    def load(cls, path: Path, root: Path) -> "SourceModule":
        """Read the file but defer parsing until ``tree`` is touched."""
        text = path.read_text(encoding="utf-8")
        return cls(
            path=path,
            rel_path=_relative(path, root),
            module_name=_module_name(path),
            text=text,
            lines=text.splitlines(),
        )


def _relative(path: Path, root: Path) -> str:
    try:
        return path.relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()


def _module_name(path: Path) -> str:
    """Dotted module name, anchored at the last ``src`` dir if present."""
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    elif len(parts) > 2:
        parts = parts[-2:]
    return ".".join(parts)


class Project:
    """A snapshot of every analyzed module, plus its derived graphs."""

    def __init__(
        self,
        root: Path,
        modules: Sequence[SourceModule],
        parse_failures: Sequence[Finding] = (),
        cache: AnalysisCache | None = None,
    ):
        self.root = root
        self.modules = list(modules)
        self.by_module_name = {m.module_name: m for m in self.modules}
        self.parse_failures = list(parse_failures)
        self._cache = cache
        self._cache_entries: dict[str, dict] = {}
        self._summaries: dict[str, ModuleSummary] = {}
        self._import_graph: ImportGraph | None = None
        self._call_resolver: CallResolver | None = None

    def find_module(self, dotted: str) -> SourceModule | None:
        return self.by_module_name.get(dotted)

    @property
    def summaries(self) -> dict[str, ModuleSummary]:
        """One :class:`ModuleSummary` per module, computed or cached."""
        for module in self.modules:
            if module.module_name not in self._summaries:
                self._summaries[module.module_name] = summarize_module(
                    module.tree,
                    module.module_name,
                    module.rel_path,
                    module.is_init,
                )
        return self._summaries

    def import_graph(self) -> ImportGraph:
        if self._import_graph is None:
            self._import_graph = ImportGraph.build(self.summaries)
        return self._import_graph

    def call_resolver(self) -> CallResolver:
        if self._call_resolver is None:
            self._call_resolver = CallResolver(self.summaries)
        return self._call_resolver

    # --------------------------------------------------- cache integration

    def cached_findings(self, module: SourceModule, rule_id: str) -> list[Finding] | None:
        """Replay one rule's findings for a cache-valid module, if stored."""
        entry = self._cache_entries.get(module.rel_path)
        if entry is None:
            return None
        payload = entry.get("findings", {}).get(rule_id)
        if payload is None:
            return None
        return [Finding.from_dict(item) for item in payload]

    def store_findings(
        self, module: SourceModule, rule_id: str, findings: Sequence[Finding]
    ) -> None:
        entry = self._cache_entries.get(module.rel_path)
        if self._cache is None or entry is None:
            return
        self._cache.record_findings(
            entry, rule_id, [f.to_dict() for f in findings]
        )

    def save_cache(self) -> None:
        if self._cache is not None:
            self._cache.save()

    # -------------------------------------------------------------- loading

    @classmethod
    def load(
        cls,
        paths: Sequence[Path | str],
        root: Path | None = None,
        cache: AnalysisCache | None = None,
    ) -> "Project":
        """Collect every ``.py`` file under ``paths``.

        Files that fail to parse become PARSE findings in
        ``parse_failures`` instead of crashing the run. With a cache,
        unchanged files skip the parse entirely and replay their stored
        summary; their ASTs are rebuilt lazily only if a rule asks.
        """
        resolved = [Path(p) for p in paths]
        if root is None:
            root = _common_root(resolved)
        modules: list[SourceModule] = []
        failures: list[Finding] = []
        summaries: dict[str, ModuleSummary] = {}
        entries: dict[str, dict] = {}
        for source in sorted(_iter_sources(resolved)):
            rel = _relative(source, root)
            entry = cache.lookup(source, rel) if cache is not None else None
            if entry is not None:
                error = entry.get("parse_error")
                if error:
                    failures.append(_parse_finding(rel, error))
                    continue
                module = SourceModule.load(source, root)
                modules.append(module)
                summary_payload = entry.get("summary")
                if summary_payload is not None:
                    summaries[module.module_name] = ModuleSummary.from_dict(
                        summary_payload
                    )
                entries[rel] = entry
                continue
            try:
                module = SourceModule.parse(source, root)
            except SyntaxError as exc:
                error = {
                    "lineno": exc.lineno or 1,
                    "offset": exc.offset or 0,
                    "msg": exc.msg or "invalid syntax",
                }
                failures.append(_parse_finding(rel, error))
                if cache is not None:
                    cache.store(source, rel, parse_error=error)
                continue
            modules.append(module)
            summary = summarize_module(
                module.tree, module.module_name, rel, module.is_init
            )
            summaries[module.module_name] = summary
            if cache is not None:
                fresh = cache.store(source, rel, summary=summary.to_dict())
                if fresh is not None:
                    entries[rel] = fresh
        project = cls(root, modules, failures, cache)
        project._summaries.update(summaries)
        project._cache_entries = entries
        return project


def _parse_finding(rel_path: str, error: dict) -> Finding:
    return Finding(
        path=rel_path,
        line=int(error.get("lineno") or 1),
        col=int(error.get("offset") or 0),
        rule="PARSE",
        message=f"syntax error: {error.get('msg')}",
        severity=Severity.ERROR,
    )


def _common_root(paths: Sequence[Path]) -> Path:
    absolutes = [p.resolve() for p in paths]
    root = absolutes[0] if absolutes[0].is_dir() else absolutes[0].parent
    for p in absolutes[1:]:
        base = p if p.is_dir() else p.parent
        while not base.is_relative_to(root) and root != root.parent:
            root = root.parent
    return root


def _iter_sources(paths: Sequence[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from path.rglob("*.py")
        elif path.suffix == ".py":
            yield path


# ------------------------------------------------------------------ rules


class Rule:
    """Base class: identity, severity, and docs for one check."""

    id: str = ""
    name: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""


class FileRule(Rule):
    """A rule evaluated independently on every module."""

    def check(self, module: SourceModule) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError

    def finding(
        self, module: SourceModule, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            path=module.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            message=message,
            severity=self.severity,
        )


class ProjectRule(Rule):
    """A rule evaluated once with the whole project in view."""

    def check_project(self, project: Project) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError

    def project_finding(
        self,
        rel_path: str,
        message: str,
        lineno: int = 1,
        col: int = 0,
    ) -> Finding:
        return Finding(
            path=rel_path,
            line=lineno,
            col=col,
            rule=self.id,
            message=message,
            severity=self.severity,
        )


RULE_REGISTRY: dict[str, Rule] = {}


def register_rule(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding one instance of the rule to the registry."""
    rule = rule_cls()
    if not rule.id:
        raise ValueError(f"{rule_cls.__name__} has no rule id")
    if rule.id in RULE_REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    RULE_REGISTRY[rule.id] = rule
    return rule_cls


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, importing the built-in pack on first use."""
    import repro.analysis.rules  # noqa: F401 - registration side effect

    return tuple(RULE_REGISTRY[rule_id] for rule_id in sorted(RULE_REGISTRY))


# ------------------------------------------------------------- suppression

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?", re.IGNORECASE
)

#: Sentinel meaning "every rule is suppressed on this line".
SUPPRESS_ALL = frozenset({"*"})


def suppressed_rules(line: str) -> frozenset[str]:
    """Rule ids suppressed by a ``# repro: noqa[...]`` comment on ``line``.

    A bare ``# repro: noqa`` returns :data:`SUPPRESS_ALL`; no comment
    returns the empty set.
    """
    match = _NOQA_RE.search(line)
    if match is None:
        return frozenset()
    rules = match.group("rules")
    if rules is None:
        return SUPPRESS_ALL
    return frozenset(r.strip().upper() for r in rules.split(",") if r.strip())


def _is_suppressed(finding: Finding, module: SourceModule | None) -> bool:
    if module is None or not 1 <= finding.line <= len(module.lines):
        return False
    suppressed = suppressed_rules(module.lines[finding.line - 1])
    return suppressed is SUPPRESS_ALL or finding.rule in suppressed


# ------------------------------------------------------------------ driver


def analyze(
    project: Project, rules: Iterable[Rule] | None = None
) -> list[Finding]:
    """Run the rule pack over a loaded project; sorted live findings.

    File-rule results replay from the project's cache for unchanged
    modules; project rules always run (their inputs span files, but the
    summaries they consume are themselves cache-served).
    """
    selected = tuple(rules) if rules is not None else all_rules()
    findings: list[Finding] = list(project.parse_failures)
    for rule in selected:
        if isinstance(rule, FileRule):
            for module in project.modules:
                cached = project.cached_findings(module, rule.id)
                if cached is None:
                    cached = list(rule.check(module))
                    project.store_findings(module, rule.id, cached)
                findings.extend(cached)
        elif isinstance(rule, ProjectRule):
            findings.extend(rule.check_project(project))
    by_path = {m.rel_path: m for m in project.modules}
    live = [f for f in findings if not _is_suppressed(f, by_path.get(f.path))]
    project.save_cache()
    return sorted(live)


def analyze_project(
    paths: Sequence[Path | str],
    rules: Iterable[Rule] | None = None,
    root: Path | None = None,
    cache: AnalysisCache | None = None,
) -> list[Finding]:
    """Load ``paths`` and run the rule pack; sorted live findings.

    ``# repro: noqa`` suppressions are already applied; baseline
    subtraction is the caller's concern (:mod:`repro.analysis.baseline`).
    """
    return analyze(Project.load(paths, root=root, cache=cache), rules)
