"""``python -m repro.analysis`` — run the lint engine."""

import sys

from repro.analysis.cli import main

sys.exit(main())
