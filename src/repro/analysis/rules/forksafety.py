"""Fork-safety: FORK001–FORK002.

``repro.parallel`` prefers the ``fork`` start method, so every worker
begins life with a byte-copy of the parent's module state. Module-level
mutable state that is not re-initialized by the pool's worker
initializer silently diverges between parent and children (and between
runs, when the parent warmed it first); inherited open handles and
locks are worse — a lock copied mid-acquisition deadlocks the child.

* **FORK001** — module-level mutable containers (dict/list/set
  literals and factory calls) in any module importable from a fork
  entry point, unless some function on the initializer's call path
  rebinds them via ``global``.
* **FORK002** — module-level open handles and ``threading`` locks in
  the same reachable set. These are flagged unconditionally: a handle
  or lock can never be safely inherited, only re-created post-fork.

Entry points default to the :class:`repro.parallel.ParallelRunner`
worker surface and can be overridden with ``fork entrypoints:`` /
``fork initializers:`` contract directives (``module:function`` items).
The family disarms itself when no entry-point function exists in the
project — repositories without a process pool have no fork hazard.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from repro.analysis.core import (
    Finding,
    Project,
    ProjectRule,
    Severity,
    register_rule,
)
from repro.analysis.effects import (
    effect_analysis,
    matches_prefix,
    project_contract,
)

__all__ = [
    "DEFAULT_FORK_ENTRYPOINTS",
    "DEFAULT_FORK_INITIALIZERS",
    "ForkHandleRule",
    "ForkMutableStateRule",
    "fork_policy",
]

#: Functions a forked worker executes: the pool's per-cell entry.
DEFAULT_FORK_ENTRYPOINTS = ("repro.parallel.executor:_execute_cell",)

#: Functions the pool runs once per worker to rebuild process state.
DEFAULT_FORK_INITIALIZERS = ("repro.parallel.executor:_init_worker",)


def fork_policy(
    project: Project,
) -> tuple[tuple[tuple[str, str], ...], tuple[tuple[str, str], ...]]:
    """((entry points), (initializers)) as (module, function) pairs.

    Only pairs whose function actually exists in the project survive;
    an empty entry-point set disarms the FORK family.
    """
    contract = project_contract(project)
    entry_spec: Sequence[str] = ()
    init_spec: Sequence[str] = ()
    if contract is not None:
        entry_spec = contract.directive("fork entrypoints")
        init_spec = contract.directive("fork initializers")
    entry_spec = entry_spec or DEFAULT_FORK_ENTRYPOINTS
    init_spec = init_spec or DEFAULT_FORK_INITIALIZERS

    def resolve(spec: Sequence[str]) -> tuple[tuple[str, str], ...]:
        pairs = []
        for item in spec:
            module, _, function = item.partition(":")
            summary = project.summaries.get(module)
            if summary is not None and function in summary.functions:
                pairs.append((module, function))
        return tuple(pairs)

    return resolve(entry_spec), resolve(init_spec)


def _reinitialized(
    project: Project, initializers: Sequence[tuple[str, str]]
) -> set[tuple[str, str]]:
    """(module, name) globals rebound on some initializer call path."""
    analysis = effect_analysis(project)
    rebound: set[tuple[str, str]] = set()
    seen = set(initializers)
    frontier = list(initializers)
    while frontier:
        key = frontier.pop()
        summary = project.summaries.get(key[0])
        info = summary.functions.get(key[1]) if summary else None
        if info is not None:
            rebound.update((key[0], name) for name in info.global_assigns)
        for callee in analysis.call_graph.edges.get(key, ()):
            if callee not in seen:
                seen.add(callee)
                frontier.append(callee)
    return rebound


class _ForkRule(ProjectRule):
    """Shared driver over the fork-reachable module set."""

    severity = Severity.ERROR
    kinds: tuple[str, ...] = ()

    def check_project(self, project: Project) -> Iterator[Finding]:
        entrypoints, initializers = fork_policy(project)
        if not entrypoints:
            return
        analysis = effect_analysis(project)
        roots = tuple({module for module, _ in entrypoints})
        parent = analysis.reachable_from(project.import_graph(), roots)
        rebound = _reinitialized(project, initializers)
        entry_names = ", ".join(f"{m}:{f}" for m, f in entrypoints)
        for module in sorted(parent):
            summary = project.summaries.get(module)
            if summary is None:
                continue
            for name, kind, lineno in summary.globals_info:
                if kind not in self.kinds:
                    continue
                if (module, name) in rebound:
                    continue
                yield self.emit(
                    summary.rel_path, module, name, kind, lineno, entry_names
                )

    def emit(
        self,
        rel_path: str,
        module: str,
        name: str,
        kind: str,
        lineno: int,
        entry_names: str,
    ) -> Finding:  # pragma: no cover - overridden
        raise NotImplementedError


@register_rule
class ForkMutableStateRule(_ForkRule):
    """FORK001 — forked workers must not inherit live mutable globals."""

    id = "FORK001"
    name = "fork-mutable-state"
    kinds = ("mutable",)
    description = (
        "a module-level mutable container is importable from a fork "
        "worker entry point and never re-initialized post-fork"
    )

    def emit(self, rel_path, module, name, kind, lineno, entry_names):
        return self.project_finding(
            rel_path,
            f"module-level mutable state {module}.{name} is reachable "
            f"from fork entry point(s) [{entry_names}] and is not "
            "re-initialized by any worker initializer; parent-warmed "
            "state will leak into every forked worker",
            lineno=lineno,
        )


@register_rule
class ForkHandleRule(_ForkRule):
    """FORK002 — open handles and locks can never cross a fork."""

    id = "FORK002"
    name = "fork-handle-or-lock"
    kinds = ("handle", "lock")
    description = (
        "a module-level open handle or threading lock is importable "
        "from a fork worker entry point; duplicated descriptors corrupt "
        "streams and an inherited lock can deadlock the child"
    )

    def emit(self, rel_path, module, name, kind, lineno, entry_names):
        noun = "open handle" if kind == "handle" else "lock"
        return self.project_finding(
            rel_path,
            f"module-level {noun} {module}.{name} is reachable from "
            f"fork entry point(s) [{entry_names}]; re-create it inside "
            "the worker initializer instead of inheriting it",
            lineno=lineno,
        )
