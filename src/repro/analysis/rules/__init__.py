"""Built-in rule pack. Importing this package registers every rule.

To add a rule: subclass :class:`repro.analysis.FileRule` or
:class:`repro.analysis.ProjectRule`, decorate it with
``@register_rule``, and import its module here. See
``docs/STATIC_ANALYSIS.md`` for the walkthrough.
"""

from repro.analysis.rules import (  # noqa: F401 - registration side effects
    estimator,
    exports,
    generic,
    rng,
    search_space,
)

__all__ = ["estimator", "exports", "generic", "rng", "search_space"]
