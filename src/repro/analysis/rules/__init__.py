"""Built-in rule pack. Importing this package registers every rule.

To add a rule: subclass :class:`repro.analysis.FileRule` or
:class:`repro.analysis.ProjectRule`, decorate it with
``@register_rule``, and import its module here. See
``docs/STATIC_ANALYSIS.md`` for the walkthrough.
"""

from repro.analysis.rules import (  # noqa: F401 - registration side effects
    architecture,
    deadcode,
    determinism,
    estimator,
    exports,
    forksafety,
    generic,
    observability,
    perf,
    rng,
    seams,
    search_space,
)
from repro.analysis.rules.architecture import ImportCycleRule, LayeringContractRule
from repro.analysis.rules.deadcode import UnreachableExportRule, UnusedSymbolRule
from repro.analysis.rules.determinism import (
    AmbientRandomnessRule,
    EnvironmentReadRule,
    UnorderedIterationRule,
    WallClockRule,
    det_policy,
)
from repro.analysis.rules.estimator import FitReturnsSelfRule, PredictGuardRule
from repro.analysis.rules.exports import MissingExportRule, UndefinedExportRule
from repro.analysis.rules.forksafety import (
    DEFAULT_FORK_ENTRYPOINTS,
    DEFAULT_FORK_INITIALIZERS,
    ForkHandleRule,
    ForkMutableStateRule,
    fork_policy,
)
from repro.analysis.rules.generic import (
    BareExceptRule,
    BroadExceptRule,
    MutableDefaultRule,
    ShadowedBuiltinRule,
)
from repro.analysis.rules.observability import PrintInLibraryCodeRule
from repro.analysis.rules.perf import (
    ExpensiveCallAtPairDepthRule,
    LoopInvariantPureCallRule,
    PerElementNumpyRule,
    QuadraticPairLoopRule,
)
from repro.analysis.rules.rng import (
    DroppedRngThreadingRule,
    HardcodedGeneratorSeedRule,
    LegacyGlobalRngRule,
)
from repro.analysis.rules.seams import (
    DEFAULT_SEAM_EXEMPT,
    CatalogDriftRule,
    SeamExceptionFlowRule,
    UnseamedIoRule,
    seam_catalog,
)
from repro.analysis.rules.search_space import SearchSpaceConformanceRule

__all__ = [
    "AmbientRandomnessRule",
    "BareExceptRule",
    "BroadExceptRule",
    "CatalogDriftRule",
    "DEFAULT_FORK_ENTRYPOINTS",
    "DEFAULT_FORK_INITIALIZERS",
    "DEFAULT_SEAM_EXEMPT",
    "DroppedRngThreadingRule",
    "EnvironmentReadRule",
    "ExpensiveCallAtPairDepthRule",
    "FitReturnsSelfRule",
    "ForkHandleRule",
    "ForkMutableStateRule",
    "HardcodedGeneratorSeedRule",
    "ImportCycleRule",
    "LayeringContractRule",
    "LegacyGlobalRngRule",
    "LoopInvariantPureCallRule",
    "MissingExportRule",
    "MutableDefaultRule",
    "PerElementNumpyRule",
    "PredictGuardRule",
    "PrintInLibraryCodeRule",
    "QuadraticPairLoopRule",
    "SeamExceptionFlowRule",
    "SearchSpaceConformanceRule",
    "ShadowedBuiltinRule",
    "UndefinedExportRule",
    "UnorderedIterationRule",
    "UnreachableExportRule",
    "UnseamedIoRule",
    "UnusedSymbolRule",
    "WallClockRule",
    "architecture",
    "deadcode",
    "det_policy",
    "determinism",
    "estimator",
    "exports",
    "fork_policy",
    "forksafety",
    "generic",
    "observability",
    "perf",
    "rng",
    "seam_catalog",
    "seams",
    "search_space",
]
