"""Built-in rule pack. Importing this package registers every rule.

To add a rule: subclass :class:`repro.analysis.FileRule` or
:class:`repro.analysis.ProjectRule`, decorate it with
``@register_rule``, and import its module here. See
``docs/STATIC_ANALYSIS.md`` for the walkthrough.
"""

from repro.analysis.rules import (  # noqa: F401 - registration side effects
    architecture,
    deadcode,
    estimator,
    exports,
    generic,
    observability,
    rng,
    search_space,
)
from repro.analysis.rules.architecture import ImportCycleRule, LayeringContractRule
from repro.analysis.rules.deadcode import UnreachableExportRule, UnusedSymbolRule
from repro.analysis.rules.estimator import FitReturnsSelfRule, PredictGuardRule
from repro.analysis.rules.exports import MissingExportRule, UndefinedExportRule
from repro.analysis.rules.generic import (
    BareExceptRule,
    BroadExceptRule,
    MutableDefaultRule,
    ShadowedBuiltinRule,
)
from repro.analysis.rules.observability import PrintInLibraryCodeRule
from repro.analysis.rules.rng import (
    DroppedRngThreadingRule,
    HardcodedGeneratorSeedRule,
    LegacyGlobalRngRule,
)
from repro.analysis.rules.search_space import SearchSpaceConformanceRule

__all__ = [
    "BareExceptRule",
    "BroadExceptRule",
    "DroppedRngThreadingRule",
    "FitReturnsSelfRule",
    "HardcodedGeneratorSeedRule",
    "ImportCycleRule",
    "LayeringContractRule",
    "LegacyGlobalRngRule",
    "MissingExportRule",
    "MutableDefaultRule",
    "PredictGuardRule",
    "PrintInLibraryCodeRule",
    "SearchSpaceConformanceRule",
    "ShadowedBuiltinRule",
    "UndefinedExportRule",
    "UnreachableExportRule",
    "UnusedSymbolRule",
    "architecture",
    "deadcode",
    "estimator",
    "exports",
    "generic",
    "observability",
    "rng",
    "search_space",
]
