"""Fault-seam coverage: SEAM001–SEAM003.

PR 5 hardened every I/O boundary behind ``faults.checkpoint()`` /
``faults.io_retry`` seams so chaos drills can exercise them. These
rules keep that true as the codebase grows, turning seam drift into a
lint failure instead of a silently un-drillable code path:

* **SEAM001** — a raw I/O call site (``open``, ``os.replace``,
  ``np.save``, ``.write_text``, ...) in library code must sit in a
  function that declares a ``faults.checkpoint(...)`` or is the operand
  of a ``faults.io_retry(...)`` wrap. Unseamed I/O is invisible to
  every drill.
* **SEAM002** — the seam names in code and ``faults.CATALOG`` must
  agree, both directions: a checkpoint naming an uncataloged point can
  never be scheduled, and a cataloged point with no live call site is
  dead configuration that drills silently skip.
* **SEAM003** — each seam's legal failure must actually be handleable:
  ``corrupt``-kind checkpoints need an in-function recovery path
  (an ``except`` plus ``mark_recovered``), ``io``-kind ``io_retry``
  wraps need OSError handling in reach or an explicit ``seam raises:``
  contract declaration, and ``budget``-kind checkpoints need a
  ``BudgetExhaustedError`` handler somewhere above them.

The family arms itself only when the analyzed project contains a
``*.faults.plan`` module with a literal top-level ``CATALOG`` dict —
projects without a fault harness are not subject to seam policy.
Exemptions come from the ``exempt seams:`` contract directive, with
:data:`DEFAULT_SEAM_EXEMPT` as the fallback.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.core import (
    Finding,
    Project,
    ProjectRule,
    Severity,
    register_rule,
)
from repro.analysis.effects import (
    effect_analysis,
    matches_prefix,
    project_contract,
)
from repro.analysis.graph import FunctionInfo, ModuleSummary

__all__ = [
    "DEFAULT_SEAM_EXEMPT",
    "CatalogDriftRule",
    "SeamExceptionFlowRule",
    "UnseamedIoRule",
    "seam_catalog",
]

#: Packages outside seam policy: the fault harness itself, the analysis
#: and CLI tooling (not on any drilled data path), telemetry's trace
#: export, and the chaos driver. Overridable via ``exempt seams:``.
DEFAULT_SEAM_EXEMPT = (
    "repro.faults",
    "repro.telemetry",
    "repro.analysis",
    "repro.cli",
    "repro.parallel.chaos",
)

#: Exception names accepted as handling an ``io``-kind seam's OSError.
_OSERROR_NAMES = frozenset({"OSError", "IOError", "Exception", "*"})

#: Exception names accepted as handling a ``budget``-kind seam.
_BUDGET_NAMES = frozenset({"BudgetExhaustedError", "ReproError", "Exception", "*"})


def seam_catalog(
    project: Project,
) -> tuple[ModuleSummary | None, dict[str, tuple[str, int]]]:
    """The project's fault catalog: (plan summary, point -> (kind, lineno)).

    Parsed from the literal ``CATALOG`` dict of the first module named
    ``*.faults.plan``; ``(None, {})`` when the project has no fault
    harness, which disarms the whole SEAM family.
    """
    cached = getattr(project, "_seam_catalog", None)
    if cached is not None:
        return cached
    plan_summary: ModuleSummary | None = None
    catalog: dict[str, tuple[str, int]] = {}
    for name in sorted(project.summaries):
        if not (name == "faults.plan" or name.endswith(".faults.plan")):
            continue
        module = project.find_module(name)
        if module is None:
            continue
        for node in module.tree.body:
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
            else:
                continue
            if not any(
                isinstance(t, ast.Name) and t.id == "CATALOG" for t in targets
            ):
                continue
            value = node.value
            if not isinstance(value, ast.Dict):
                continue
            for key, kind in zip(value.keys, value.values):
                if (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and isinstance(kind, ast.Constant)
                    and isinstance(kind.value, str)
                ):
                    catalog[key.value] = (kind.value, key.lineno)
        if catalog:
            plan_summary = project.summaries[name]
            break
    project._seam_catalog = (plan_summary, catalog)
    return plan_summary, catalog


def _seam_exempt(project: Project) -> tuple[str, ...]:
    contract = project_contract(project)
    declared = contract.directive("exempt seams") if contract else ()
    return declared or DEFAULT_SEAM_EXEMPT


def _declared_raises(project: Project) -> tuple[str, ...]:
    contract = project_contract(project)
    return contract.directive("seam raises") if contract else ()


def _wrapped_qualnames(summary: ModuleSummary) -> set[str]:
    """Qualnames of functions passed to ``io_retry`` in their module."""
    wrapped: set[str] = set()
    for info in summary.functions.values():
        for operand, _point, _line in info.retry_wraps:
            wrapped.add(operand)  # module-level operand
            wrapped.add(f"{info.qualname}.{operand}")  # nested operand
    return wrapped


def _library_modules(
    project: Project, exempt: tuple[str, ...]
) -> Iterator[tuple[str, ModuleSummary]]:
    for name in sorted(project.summaries):
        if matches_prefix(name, exempt):
            continue
        yield name, project.summaries[name]


@register_rule
class UnseamedIoRule(ProjectRule):
    """SEAM001 — raw I/O in library code must sit behind a fault seam."""

    id = "SEAM001"
    name = "unseamed-io"
    severity = Severity.ERROR
    description = (
        "a raw open/replace/np.save-style call site is neither in a "
        "checkpoint-declaring function nor wrapped in faults.io_retry, "
        "so no chaos drill can ever exercise its failure path"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        _plan, catalog = seam_catalog(project)
        if not catalog:
            return
        exempt = _seam_exempt(project)
        for name, summary in _library_modules(project, exempt):
            wrapped = _wrapped_qualnames(summary)
            for tag, lineno, col, detail in summary.module_effects:
                if tag != "io":
                    continue
                yield self.project_finding(
                    summary.rel_path,
                    f"module-level I/O ({detail}) in {name} runs at import "
                    "time, outside any fault seam; move it behind a "
                    "checkpointed function",
                    lineno=lineno,
                    col=col,
                )
            for qualname in sorted(summary.functions):
                info = summary.functions[qualname]
                if info.checkpoints or qualname in wrapped:
                    continue
                for tag, lineno, col, detail in info.effects:
                    if tag != "io":
                        continue
                    yield self.project_finding(
                        summary.rel_path,
                        f"{name}.{qualname} performs raw I/O ({detail}) "
                        "with no faults.checkpoint(...) in the function "
                        "and no io_retry wrap; declare a seam from "
                        "faults.CATALOG so drills can reach it",
                        lineno=lineno,
                        col=col,
                    )


@register_rule
class CatalogDriftRule(ProjectRule):
    """SEAM002 — code and ``faults.CATALOG`` must name the same seams."""

    id = "SEAM002"
    name = "seam-catalog-drift"
    severity = Severity.ERROR
    description = (
        "a checkpoint/io_retry names a point missing from faults.CATALOG, "
        "or a CATALOG entry has no live call site left"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        plan, catalog = seam_catalog(project)
        if not catalog or plan is None:
            return
        live: set[str] = set()
        for name in sorted(project.summaries):
            summary = project.summaries[name]
            for qualname in sorted(summary.functions):
                info = summary.functions[qualname]
                for _kind, point, lineno in info.checkpoints:
                    live.add(point)
                    if point not in catalog:
                        yield self.project_finding(
                            summary.rel_path,
                            f"{name}.{qualname} declares seam {point!r} "
                            "which is not in faults.CATALOG; add the "
                            "catalog entry or fix the name",
                            lineno=lineno,
                        )
                for _operand, point, lineno in info.retry_wraps:
                    live.update((f"{point}.write", f"{point}.replace"))
                    if (
                        point not in catalog
                        and f"{point}.write" not in catalog
                        and f"{point}.replace" not in catalog
                    ):
                        yield self.project_finding(
                            summary.rel_path,
                            f"{name}.{qualname} wraps io_retry point "
                            f"{point!r} with no matching faults.CATALOG "
                            "entries (expected .write/.replace suffixes)",
                            lineno=lineno,
                        )
        for point in sorted(catalog):
            kind, lineno = catalog[point]
            if point not in live:
                yield self.project_finding(
                    plan.rel_path,
                    f"CATALOG entry {point!r} ({kind}) resolves to no "
                    "live checkpoint or io_retry call site; delete the "
                    "entry or restore the seam",
                    lineno=lineno,
                )


@register_rule
class SeamExceptionFlowRule(ProjectRule):
    """SEAM003 — each seam's legal exception must be caught in reach."""

    id = "SEAM003"
    name = "seam-exception-flow"
    severity = Severity.ERROR
    description = (
        "a seam's legal failure (corrupt decode error, io_retry OSError, "
        "budget exhaustion) has no handler on any caller path and no "
        "'seam raises:' contract declaration"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        _plan, catalog = seam_catalog(project)
        if not catalog:
            return
        exempt = _seam_exempt(project)
        declared = set(_declared_raises(project))
        analysis = effect_analysis(project)
        for name, summary in _library_modules(project, exempt):
            for qualname in sorted(summary.functions):
                info = summary.functions[qualname]
                yield from self._check_corrupt(name, summary, info, catalog)
                yield from self._check_io(
                    name, summary, info, declared, analysis
                )
                yield from self._check_budget(
                    name, summary, info, catalog, project, analysis
                )

    def _check_corrupt(
        self,
        name: str,
        summary: ModuleSummary,
        info: FunctionInfo,
        catalog: dict[str, tuple[str, int]],
    ) -> Iterator[Finding]:
        recovered = {
            point for kind, point, _ in info.checkpoints
            if kind == "mark_recovered"
        }
        for kind, point, lineno in info.checkpoints:
            if kind != "checkpoint" or catalog.get(point, ("", 0))[0] != "corrupt":
                continue
            if not info.caught or point not in recovered:
                yield self.project_finding(
                    summary.rel_path,
                    f"{name}.{info.qualname} reads through corrupt-kind "
                    f"seam {point!r} without an in-function recovery "
                    "path (catch the decode failure and call "
                    f"faults.mark_recovered({point!r}, ...))",
                    lineno=lineno,
                )

    def _check_io(
        self,
        name: str,
        summary: ModuleSummary,
        info: FunctionInfo,
        declared: set[str],
        analysis,
    ) -> Iterator[Finding]:
        for _operand, point, lineno in info.retry_wraps:
            if point in declared:
                continue
            if _OSERROR_NAMES & set(info.caught):
                continue
            key = (name, info.qualname)
            callers = [
                caller
                for caller, callees in analysis.call_graph.edges.items()
                if key in callees
            ]
            if any(
                self._catches(analysis, caller, _OSERROR_NAMES)
                for caller in callers
            ):
                continue
            yield self.project_finding(
                summary.rel_path,
                f"{name}.{info.qualname} wraps io_retry point {point!r} "
                "but exhausted retries raise OSError with no handler on "
                "any static caller path; catch it or declare the seam "
                f"with 'seam raises: {point}' in the contract",
                lineno=lineno,
            )

    def _check_budget(
        self,
        name: str,
        summary: ModuleSummary,
        info: FunctionInfo,
        catalog: dict[str, tuple[str, int]],
        project: Project,
        analysis,
    ) -> Iterator[Finding]:
        for kind, point, lineno in info.checkpoints:
            if kind != "checkpoint" or catalog.get(point, ("", 0))[0] != "budget":
                continue
            if self._budget_handled(name, info.qualname, project, analysis):
                continue
            yield self.project_finding(
                summary.rel_path,
                f"{name}.{info.qualname} charges budget-kind seam "
                f"{point!r} but no caller (statically or anywhere in "
                "its package) catches BudgetExhaustedError",
                lineno=lineno,
            )

    def _budget_handled(
        self, module: str, qualname: str, project: Project, analysis
    ) -> bool:
        """Is BudgetExhaustedError caught above (module, qualname)?

        Walks the reverse static call closure first; because budget
        charges typically flow through dynamically-dispatched clock
        objects the resolver cannot see, it falls back to accepting a
        handler anywhere in the seam's top-two-level package.
        """
        closure = {(module, qualname)}
        frontier = [(module, qualname)]
        while frontier:
            target = frontier.pop()
            for caller, callees in analysis.call_graph.edges.items():
                if target in callees and caller not in closure:
                    closure.add(caller)
                    frontier.append(caller)
        for mod, qual in closure:
            info = project.summaries[mod].functions.get(qual)
            if info is not None and _BUDGET_NAMES & set(info.caught):
                return True
        package = ".".join(module.split(".")[:2])
        for name in project.summaries:
            if not matches_prefix(name, (package,)):
                continue
            for info in project.summaries[name].functions.values():
                if _BUDGET_NAMES & set(info.caught):
                    return True
        return False

    @staticmethod
    def _catches(analysis, key: tuple[str, str], names: frozenset[str]) -> bool:
        summary = analysis.summaries.get(key[0])
        if summary is None:
            return False
        info = summary.functions.get(key[1])
        return info is not None and bool(names & set(info.caught))
