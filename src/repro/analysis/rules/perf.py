"""Hot-path cost rules: PERF001–PERF004.

Built on the :mod:`repro.analysis.cost` multiplicity fixpoint: every
function reachable from a workload entry point carries a symbolic
``once | per-record | per-pair | per-pair×k`` multiplicity, and every
call site knows the loop frames around it plus which of those frames
its arguments are *invariant* in. The four rules are the mechanical
version of the profiling questions an EM reproduction keeps asking:

- **PERF001** — an *expensive* call (transformer forward, disk I/O,
  subprocess; declared via ``cost expensive`` or inferred from the
  effect fixpoint) executing at per-pair multiplicity whose arguments
  are invariant in at least one enclosing loop. Hoist it out or cache
  it keyed on the varying side — the AnyMatch-style per-entity-vs-
  per-pair waste, caught statically.
- **PERF002** — a *pure* computation (all resolvable callees effect-
  free, or declared ``cost pure``) repeated inside a hot loop with
  identical arguments per iteration of some frame. Same hoist, milder
  stakes, so a warning.
- **PERF003** — a per-element numpy call in a Python loop: either a
  numpy constructor fed a comprehension that calls non-trivial code
  per element (``np.vstack([f(r) for r in rows])``), or a plain
  append-accumulator loop subscripting arrays by its loop variable —
  both have a vectorized or fancy-indexed form.
- **PERF004** — accidental quadratic: nested ``for`` loops iterating
  two *distinct function parameters* directly. Outside the sanctioned
  blocking layer (``cost hot loops``), pair enumeration is exactly the
  blow-up blocking exists to avoid.

Findings anchor at the call (or inner loop) line, so one
``# repro: noqa[PERF00x]`` at the source silences every path at once.
Messages render the multiplicity and the witness chain from the entry
point, e.g. ``repro.adapter.pipeline:EMAdapter.transform -[for pair in
dataset]-> …`` — the chain is the *why*, the line is the *where*.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.analysis.core import (
    Finding,
    Project,
    ProjectRule,
    Severity,
    register_rule,
)
from repro.analysis.cost import CostAnalysis, cost_analysis
from repro.analysis.graph import RNG_PARAM_NAMES, FunctionInfo, LoopCall

__all__ = [
    "ExpensiveCallAtPairDepthRule",
    "LoopInvariantPureCallRule",
    "PerElementNumpyRule",
    "QuadraticPairLoopRule",
]


def _owner_functions(project: Project):
    for module in sorted(project.summaries):
        summary = project.summaries[module]
        for qualname, info in summary.functions.items():
            yield module, summary.rel_path, qualname, info


def _resolved(
    cost: CostAnalysis, module: str, qualname: str, call: LoopCall
):
    """Cost-level callee candidates of one loop call, () when dynamic."""
    if not call.callee:
        return ()
    site = _as_site(call)
    return cost.resolve_candidates(module, qualname, site)


def _as_site(call: LoopCall):
    from repro.analysis.graph import CallSite

    return CallSite(
        callee=call.callee,
        num_positional=0,
        keywords=(),
        has_star_args=False,
        lineno=call.lineno,
        col=call.col,
        loops=call.loops,
    )


def _callee_name(call: LoopCall) -> str:
    """The final name segment a dynamic callee answers to."""
    return call.callee_repr.rsplit(".", 1)[-1]


def _invariant_frames(info: FunctionInfo, call: LoopCall) -> str:
    parts = []
    for idx in call.invariant:
        if 0 <= idx < len(info.loops):
            loop = info.loops[idx]
            parts.append(
                "while-loop" if loop.kind == "while"
                else f"`for {', '.join(loop.bound) or '_'} in {loop.iter_repr}`"
            )
    return ", ".join(parts)


def _chain_suffix(cost: CostAnalysis, module: str, qualname: str) -> str:
    chain = cost.chain(module, qualname)
    return f" [{' '.join(chain)}]" if len(chain) > 1 else ""


@register_rule
class ExpensiveCallAtPairDepthRule(ProjectRule):
    """PERF001 — expensive work at per-pair depth with invariant args."""

    id = "PERF001"
    severity = Severity.ERROR
    description = (
        "An expensive call (declared via `cost expensive`, or doing "
        "transitive I/O / process work) runs at per-pair multiplicity "
        "while its arguments are invariant in an enclosing loop: hoist "
        "it above that loop or cache it keyed on the varying side."
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        cost = cost_analysis(project)
        for module, rel_path, qualname, info in _owner_functions(project):
            suffix = _chain_suffix(cost, module, qualname)
            for call in info.loop_calls:
                if not call.loops or not call.invariant:
                    continue
                candidates = _resolved(cost, module, qualname, call)
                expensive = (
                    call.effect_tag in ("io", "process")
                    or cost.expensive_name(_callee_name(call))
                    or any(cost.is_expensive(*key) for key in candidates)
                )
                if not expensive:
                    continue
                mult = cost.site_multiplicity(module, qualname, call.loops)
                if mult.rank < 2:
                    continue
                yield self.project_finding(
                    rel_path,
                    f"{module}:{qualname} calls expensive "
                    f"`{call.callee_repr}(...)` at {mult.render()} "
                    f"multiplicity, but the call is invariant in "
                    f"{_invariant_frames(info, call)}; hoist it above "
                    f"that loop or cache it keyed on what varies"
                    f"{suffix}",
                    lineno=call.lineno,
                    col=call.col,
                )


@register_rule
class LoopInvariantPureCallRule(ProjectRule):
    """PERF002 — loop-invariant pure computation repeated in a hot loop."""

    id = "PERF002"
    severity = Severity.WARNING
    description = (
        "A pure computation (every resolvable callee effect-free, or "
        "declared `cost pure`) repeats inside a hot (per-pair+) loop "
        "nest with arguments that are invariant in one of the "
        "enclosing frames — the classic hoisting opportunity. Calls "
        "fed an rng and calls that construct fresh objects are exempt: "
        "hoisting those changes semantics, not just cost."
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        cost = cost_analysis(project)
        for module, rel_path, qualname, info in _owner_functions(project):
            suffix = _chain_suffix(cost, module, qualname)
            for call in info.loop_calls:
                if not call.loops or not call.invariant:
                    continue
                if call.effect_tag:
                    continue  # impure direct effect — PERF001's turf
                if set(call.deps) & set(RNG_PARAM_NAMES):
                    continue  # rng streams are stateful: not hoistable
                candidates = _resolved(cost, module, qualname, call)
                if candidates:
                    if any(k[1].endswith(".__init__") for k in candidates):
                        continue  # fresh-object construction per iteration
                    if not all(cost.is_pure(*key) for key in candidates):
                        continue
                    if any(cost.is_expensive(*key) for key in candidates):
                        continue  # PERF001 owns expensive callees
                elif not cost.pure_name(_callee_name(call)):
                    continue  # dynamic and undeclared: purity unknown
                mult = cost.site_multiplicity(module, qualname, call.loops)
                if mult.rank < 2:
                    continue
                yield self.project_finding(
                    rel_path,
                    f"{module}:{qualname} recomputes pure "
                    f"`{call.callee_repr}(...)` at {mult.render()} "
                    f"multiplicity though it is invariant in "
                    f"{_invariant_frames(info, call)}; hoist it out of "
                    f"that loop"
                    f"{suffix}",
                    lineno=call.lineno,
                    col=call.col,
                )


@register_rule
class PerElementNumpyRule(ProjectRule):
    """PERF003 — per-element numpy work in a Python loop."""

    id = "PERF003"
    severity = Severity.WARNING
    description = (
        "A numpy constructor fed a per-element comprehension "
        "(`np.vstack([f(r) for r in rows])`), or an append-accumulator "
        "loop subscripting arrays by its loop variable: both are one "
        "vectorized call (or one fancy-indexing expression) in disguise."
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        cost = cost_analysis(project)
        for module, rel_path, qualname, info in _owner_functions(project):
            if cost.sanctioned_hot(module, qualname):
                continue  # blessed hot loops may do per-element work
            if cost.declared_expensive(module, qualname):
                continue  # the hot primitive itself, not a caller
            suffix = _chain_suffix(cost, module, qualname)
            for call in info.loop_calls:
                if not call.numpy_ctor_comp:
                    continue
                mult = cost.site_multiplicity(module, qualname, call.loops)
                if mult.bump(1).rank < 2:
                    continue  # below per-pair: not worth the rewrite
                yield self.project_finding(
                    rel_path,
                    f"{module}:{qualname} builds an array with "
                    f"`{call.callee_repr}(...)` over a per-element "
                    f"Python comprehension (effective "
                    f"{mult.bump(1).render()} work); replace the "
                    f"comprehension with one vectorized numpy call"
                    f"{suffix}",
                    lineno=call.lineno,
                    col=call.col,
                )
            for idx, loop in enumerate(info.loops):
                if (
                    loop.kind != "for"
                    or loop.is_const
                    or loop.has_break
                    or not loop.simple_map
                    or not loop.appends
                    or not loop.subscript_by_bound
                ):
                    continue
                if any(
                    inner.parent == idx for inner in info.loops
                ):
                    continue  # not a flat per-element body
                mult = cost.site_multiplicity(module, qualname, (idx,))
                yield self.project_finding(
                    rel_path,
                    f"{module}:{qualname} fills "
                    f"{', '.join(f'`{n}`' for n in loop.appends)} "
                    f"one element at a time in `for "
                    f"{', '.join(loop.bound)} in {loop.iter_repr}` "
                    f"({mult.render()} work) while indexing numpy "
                    f"arrays by the loop variable; use one vectorized "
                    f"/ fancy-indexed numpy expression instead"
                    f"{suffix}",
                    lineno=loop.lineno,
                    col=loop.col,
                )


@register_rule
class QuadraticPairLoopRule(ProjectRule):
    """PERF004 — nested iteration over two table-like parameters."""

    id = "PERF004"
    severity = Severity.ERROR
    description = (
        "Nested `for` loops iterating two distinct function parameters "
        "directly enumerate the cross product — the quadratic blow-up "
        "the blocking layer exists to avoid. Only modules declared in "
        "`cost hot loops` may do this."
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        cost = cost_analysis(project)
        for module, rel_path, qualname, info in _owner_functions(project):
            if cost.sanctioned_hot(module, qualname):
                continue
            suffix = _chain_suffix(cost, module, qualname)
            params = set(info.params) - {"self", "cls"}
            for idx, loop in enumerate(info.loops):
                if loop.kind == "while" or loop.iter_name not in params:
                    continue
                parent = loop.parent
                while parent >= 0:
                    outer = info.loops[parent]
                    if (
                        outer.kind != "while"
                        and outer.iter_name in params
                        and outer.iter_name != loop.iter_name
                    ):
                        mult = cost.site_multiplicity(
                            module, qualname, (parent, idx)
                        )
                        yield self.project_finding(
                            rel_path,
                            f"{module}:{qualname} nests `for "
                            f"{', '.join(loop.bound)} in "
                            f"{loop.iter_name}` inside `for "
                            f"{', '.join(outer.bound)} in "
                            f"{outer.iter_name}` — a quadratic "
                            f"({mult.render()}) sweep over both "
                            f"inputs; route pair enumeration through "
                            f"the blocking layer or declare the "
                            f"module under `cost hot loops`"
                            f"{suffix}",
                            lineno=loop.lineno,
                            col=loop.col,
                        )
                        break
                    parent = outer.parent
