"""Architecture rules: the layering contract and import-cycle bans.

The paper's pipeline discipline (Tokenizer → Embedder → Combiner →
AutoML backend) is encoded structurally as module layering — data
generation below adapters, adapters below search, search below
experiment drivers. The contract is data, not code: an ordered layer
stack in ``docs/ARCHITECTURE_CONTRACT`` (located by searching upward
from the analysis root), parsed by
:class:`repro.analysis.graph.LayeringContract`. ARC001 checks every
import edge against it; ARC002 bans top-level import cycles outright.
Projects without a contract file simply skip ARC001 — the contract is
opt-in per repository.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.analysis.core import (
    Finding,
    Project,
    ProjectRule,
    Severity,
    register_rule,
)
from repro.analysis.graph import ContractError, LayeringContract

__all__ = ["LayeringContractRule", "ImportCycleRule"]


@register_rule
class LayeringContractRule(ProjectRule):
    """ARC001 — a module may import only its own layer and layers below."""

    id = "ARC001"
    name = "layering-inversion"
    severity = Severity.ERROR
    description = (
        "import edge points from a lower architectural layer to a higher "
        "one, violating docs/ARCHITECTURE_CONTRACT"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        try:
            contract = LayeringContract.find(project.root)
        except ContractError as exc:
            yield self.project_finding(
                "docs/ARCHITECTURE_CONTRACT",
                f"unparseable layering contract: {exc}",
            )
            return
        if contract is None:
            return
        summaries = project.summaries
        for edge in project.import_graph().edges:
            source_layer = contract.layer_of(edge.source)
            target_layer = contract.layer_of(edge.target)
            if source_layer is None or target_layer is None:
                continue
            if target_layer[0] <= source_layer[0]:
                continue
            source_summary = summaries.get(edge.source)
            rel_path = (
                source_summary.rel_path if source_summary else edge.source
            )
            yield self.project_finding(
                rel_path,
                f"layering inversion: {edge.source} (layer "
                f"'{source_layer[1]}') imports {edge.target} (layer "
                f"'{target_layer[1]}'); a layer may only import itself "
                "and layers below it",
                lineno=edge.lineno,
            )


@register_rule
class ImportCycleRule(ProjectRule):
    """ARC002 — no top-level import cycles between analyzed modules.

    Function-scoped (lazy) imports are the sanctioned escape hatch and
    are excluded from the cycle search, so a flagged cycle is always
    fixable by deferring one of its edges to call time.
    """

    id = "ARC002"
    name = "import-cycle"
    severity = Severity.ERROR
    description = "modules form a top-level import cycle"

    def check_project(self, project: Project) -> Iterator[Finding]:
        graph = project.import_graph()
        summaries = project.summaries
        for cycle in graph.cycles():
            members = set(cycle)
            anchor = cycle[0]
            lineno = 1
            for edge in graph.internal_edges(top_level_only=True):
                if edge.source == anchor and edge.target in members:
                    lineno = edge.lineno
                    break
            anchor_summary = summaries.get(anchor)
            rel_path = anchor_summary.rel_path if anchor_summary else anchor
            chain = " -> ".join((*cycle, cycle[0]))
            yield self.project_finding(
                rel_path,
                f"import cycle: {chain}; break it by inverting a "
                "dependency or deferring one import to call time",
                lineno=lineno,
            )
