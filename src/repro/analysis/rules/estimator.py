"""Estimator API conformance (the scikit-learn idiom the AutoML layer
relies on; see ``repro.ml.base``).

Two statically checkable contracts:

* ``fit`` chains — every ``fit`` must return ``self`` so that
  ``clone(est).fit(X, y).predict_proba(X)`` composes;
* inference guards — ``predict`` / ``predict_proba`` on a fittable class
  must fail with :class:`~repro.exceptions.NotFittedError` before
  ``fit``, not with an arbitrary ``AttributeError`` deep in numpy.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.core import (
    Finding,
    FileRule,
    Severity,
    SourceModule,
    register_rule,
)

__all__ = ["FitReturnsSelfRule", "PredictGuardRule"]


def _own_statements(func: ast.FunctionDef) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs/classes."""
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _methods(cls: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    return {n.name: n for n in cls.body if isinstance(n, ast.FunctionDef)}


@register_rule
class FitReturnsSelfRule(FileRule):
    """EST001 — every ``fit`` method must return ``self`` on every path."""

    id = "EST001"
    name = "fit-returns-self"
    severity = Severity.ERROR
    description = "fit() must return self so fit/predict call chains compose"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            fit = _methods(node).get("fit")
            if fit is None:
                continue
            returns = [
                n
                for n in _own_statements(fit)
                if isinstance(n, ast.Return) and n.value is not None
            ]
            raises = any(
                isinstance(n, ast.Raise) for n in _own_statements(fit)
            )
            bad = [
                r
                for r in returns
                if not (isinstance(r.value, ast.Name) and r.value.id == "self")
            ]
            for ret in bad:
                yield self.finding(
                    module,
                    ret,
                    f"{node.name}.fit returns "
                    f"{ast.unparse(ret.value)!r} instead of self",
                )
            if not returns and not raises:
                yield self.finding(
                    module,
                    fit,
                    f"{node.name}.fit never returns self (falls off the "
                    "end returning None)",
                )


#: Ways a predict-family method may prove it guards on fitted state.
_GUARD_CALL_FRAGMENT = "fitted"
_DELEGATES = frozenset({"predict", "predict_proba", "decision_function"})


def _has_guard(method: ast.FunctionDef) -> bool:
    for node in ast.walk(method):
        if isinstance(node, ast.Call):
            func = node.func
            name = ""
            if isinstance(func, ast.Attribute):
                name = func.attr
            elif isinstance(func, ast.Name):
                name = func.id
            if _GUARD_CALL_FRAGMENT in name:
                return True
            # Delegation inherits the delegate's guard: either a sibling
            # inference method (self.predict_proba inside predict) or a
            # held sub-estimator (self.final_estimator.predict(...)).
            if isinstance(func, ast.Attribute) and func.attr in _DELEGATES:
                receiver = func.value
                while isinstance(receiver, ast.Attribute):
                    receiver = receiver.value
                if isinstance(receiver, ast.Name) and receiver.id == "self":
                    is_sibling = isinstance(func.value, ast.Name)
                    if not is_sibling or func.attr != method.name:
                        return True
        if isinstance(node, ast.Raise) and node.exc is not None:
            exc = node.exc
            exc_name = ""
            if isinstance(exc, ast.Call):
                exc = exc.func
            if isinstance(exc, ast.Attribute):
                exc_name = exc.attr
            elif isinstance(exc, ast.Name):
                exc_name = exc.id
            if exc_name in ("NotFittedError", "NotImplementedError"):
                return True
        if (
            isinstance(node, ast.Attribute)
            and node.attr == "is_fitted"
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return True
    return False


@register_rule
class PredictGuardRule(FileRule):
    """EST002 — inference methods of fittable public classes must guard.

    A guard is any of: a ``*fitted*`` helper call (``check_is_fitted``,
    ``self._check_fitted``), raising ``NotFittedError`` (or
    ``NotImplementedError`` for abstract stubs), reading
    ``self.is_fitted``, or delegating to a sibling inference method.
    """

    id = "EST002"
    name = "predict-guards-fitted"
    severity = Severity.ERROR
    description = (
        "predict/predict_proba on a class with fit must raise "
        "NotFittedError (not AttributeError) before fitting"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef) or node.name.startswith("_"):
                continue
            methods = _methods(node)
            if "fit" not in methods:
                continue
            for name in ("predict", "predict_proba"):
                method = methods.get(name)
                if method is not None and not _has_guard(method):
                    yield self.finding(
                        module,
                        method,
                        f"{node.name}.{name} has no fitted-state guard "
                        "(call check_is_fitted / raise NotFittedError)",
                    )
