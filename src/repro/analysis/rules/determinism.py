"""Determinism taint: DET001–DET004.

The reproduction's headline guarantee — byte-identical output across
``--jobs N`` runs and replayed fault drills — only holds while nothing
on the measured path consults the ambient world. These rules close that
gap statically: any module the deterministic core packages can reach
(import closure, lazy edges included) must be free of wall-clock reads
(DET001), ambient randomness (DET002), ``os.environ`` reads (DET003),
and unordered filesystem/set iteration (DET004).

Findings anchor at the *propagation source* — the concrete
``time.perf_counter()`` or ``os.listdir()`` call — not at every caller
that can reach it: one fix (or one ``# repro: noqa[DET00x]`` on the
offending line) silences every path at once. The rendered chain shows
*why* the site is on the measured path: a static call chain from a core
function when one resolves, otherwise the import chain from the nearest
core package.

Policy comes from ``docs/ARCHITECTURE_CONTRACT`` when present (``core
determinism:`` / ``exempt determinism:`` directives) and falls back to
:data:`repro.analysis.effects.DEFAULT_CORE_PACKAGES` /
:data:`~repro.analysis.effects.DEFAULT_DET_EXEMPT`.

Sanctioned replacements: ``telemetry.wallclock()`` for timing,
``repro.config.rng_for(...)`` for randomness, ``repro.config`` env
accessors for knobs, and ``sorted(...)`` around unordered producers.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from repro.analysis.core import (
    Finding,
    Project,
    ProjectRule,
    Severity,
    register_rule,
)
from repro.analysis.effects import (
    DEFAULT_CORE_PACKAGES,
    DEFAULT_DET_EXEMPT,
    EffectAnalysis,
    effect_analysis,
    matches_prefix,
    project_contract,
)

__all__ = [
    "AmbientRandomnessRule",
    "EnvironmentReadRule",
    "UnorderedIterationRule",
    "WallClockRule",
    "det_policy",
]


def det_policy(project: Project) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """(core packages, exempt packages) for this project's DET rules."""
    contract = project_contract(project)
    core: tuple[str, ...] = ()
    exempt: tuple[str, ...] = ()
    if contract is not None:
        core = contract.directive("core determinism")
        exempt = contract.directive("exempt determinism")
    return core or DEFAULT_CORE_PACKAGES, exempt or DEFAULT_DET_EXEMPT


def _render_chain(
    analysis: EffectAnalysis,
    parent: dict[str, str | None],
    core: Sequence[str],
    module: str,
    function: str,
) -> str:
    """Human-readable propagation chain from the core to the site."""
    if function:
        calls = analysis.call_chain(core, (module, function))
        if calls is not None and len(calls) > 1:
            return " -> ".join(f"{m}.{q}" for m, q in calls)
    return " -> ".join(EffectAnalysis.import_chain(parent, module))


class _DeterminismRule(ProjectRule):
    """Shared driver: flag one effect tag's sites inside the core closure."""

    severity = Severity.ERROR
    tag = ""
    label = ""
    remedy = ""

    def check_project(self, project: Project) -> Iterator[Finding]:
        core, exempt = det_policy(project)
        analysis = effect_analysis(project)
        parent = analysis.reachable_from(project.import_graph(), core)
        summaries = project.summaries
        for module in sorted(parent):
            if matches_prefix(module, exempt):
                continue
            summary = summaries.get(module)
            if summary is None:
                continue
            for site in analysis.direct_sites(module):
                if site.tag != self.tag:
                    continue
                chain = _render_chain(
                    analysis, parent, core, module, site.function
                )
                yield self.project_finding(
                    summary.rel_path,
                    f"{site.owner} performs a {self.label} ({site.detail}) "
                    f"on the deterministic-core path [{chain}]; "
                    f"{self.remedy}",
                    lineno=site.lineno,
                    col=site.col,
                )


@register_rule
class WallClockRule(_DeterminismRule):
    """DET001 — no ambient wall-clock reads on the measured path."""

    id = "DET001"
    name = "core-wall-clock"
    tag = "clock"
    label = "wall-clock read"
    remedy = (
        "time through telemetry.wallclock() (or a telemetry span) so "
        "clock access stays in the sanctioned, replay-aware layer"
    )
    description = (
        "a function reachable from the deterministic core reads the "
        "wall clock directly instead of telemetry.wallclock()"
    )


@register_rule
class AmbientRandomnessRule(_DeterminismRule):
    """DET002 — no ambient randomness on the measured path."""

    id = "DET002"
    name = "core-ambient-random"
    tag = "random"
    label = "draw of ambient randomness"
    remedy = (
        "derive randomness from repro.config.rng_for(...) so every "
        "stream hangs off the one master seed"
    )
    description = (
        "a function reachable from the deterministic core uses "
        "random/uuid/secrets or an unseeded default_rng()"
    )


@register_rule
class EnvironmentReadRule(_DeterminismRule):
    """DET003 — no os.environ reads on the measured path."""

    id = "DET003"
    name = "core-env-read"
    tag = "env"
    label = "process-environment read"
    remedy = (
        "resolve the knob once in repro.config (or the experiment "
        "config layer) and pass the value down explicitly"
    )
    description = (
        "a function reachable from the deterministic core reads "
        "os.environ, smuggling ambient configuration into results"
    )


@register_rule
class UnorderedIterationRule(_DeterminismRule):
    """DET004 — no unordered filesystem/set iteration on the measured path."""

    id = "DET004"
    name = "core-unordered-iteration"
    tag = "order"
    label = "unordered iteration"
    remedy = "wrap the producer in sorted(...) to pin a deterministic order"
    description = (
        "a function reachable from the deterministic core iterates "
        "os.listdir/glob/Path.iterdir or a set without sorting"
    )
