"""RNG discipline: every random stream must flow through ``repro.config``.

EM results are acutely sensitive to seeding drift (DITTO, AdapterEM), so
the reproduction bans both the legacy numpy global RNG and ad-hoc
constant-seeded generators. The one blessed construction site is
:func:`repro.config.rng_for`, which scopes sub-seeds with
:func:`repro.config.stable_hash` off the master seed.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.core import (
    Finding,
    FileRule,
    Project,
    ProjectRule,
    Severity,
    SourceModule,
    register_rule,
)
from repro.analysis.flow import iter_rng_flow_violations

__all__ = [
    "LegacyGlobalRngRule",
    "HardcodedGeneratorSeedRule",
    "DroppedRngThreadingRule",
]

#: Modules allowed to call ``np.random.default_rng`` directly: the scoped
#: seed helper itself lives there.
_EXEMPT_MODULES = frozenset({"repro.config"})

#: ``np.random`` attributes that do *not* touch the legacy global state.
_GENERATOR_SAFE = frozenset({"default_rng", "Generator", "SeedSequence", "PCG64"})


def _is_np_random(node: ast.AST) -> bool:
    """True for ``np.random`` / ``numpy.random`` attribute chains."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "random"
        and isinstance(node.value, ast.Name)
        and node.value.id in ("np", "numpy")
    )


def _constant_seed(node: ast.expr) -> bool:
    """True when an argument expression is a compile-time constant seed."""
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _constant_seed(node.operand)
    if isinstance(node, (ast.Tuple, ast.List)):
        return all(_constant_seed(e) for e in node.elts)
    return False


@register_rule
class LegacyGlobalRngRule(FileRule):
    """RNG001 — ban the legacy mutable-global numpy RNG entirely."""

    id = "RNG001"
    name = "legacy-global-rng"
    severity = Severity.ERROR
    description = (
        "np.random.seed() / legacy np.random.* draws mutate hidden global "
        "state; use repro.config.rng_for(...) streams instead"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or not _is_np_random(func.value):
                continue
            if func.attr == "RandomState":
                yield self.finding(
                    module,
                    node,
                    "np.random.RandomState is the legacy RNG; build a "
                    "Generator with repro.config.rng_for(...)",
                )
            elif func.attr not in _GENERATOR_SAFE:
                yield self.finding(
                    module,
                    node,
                    f"np.random.{func.attr}(...) uses the process-global "
                    "RNG; draw from a repro.config.rng_for(...) stream",
                )


@register_rule
class HardcodedGeneratorSeedRule(FileRule):
    """RNG002 — default_rng must not be unseeded or literally seeded.

    ``np.random.default_rng()`` is entropy-seeded (non-reproducible) and
    ``np.random.default_rng(0)`` silently reuses one stream across every
    call site. Outside ``repro.config`` itself, seeds must arrive through
    a variable fed by :func:`repro.config.rng_for` scoping.
    """

    id = "RNG002"
    name = "hardcoded-generator-seed"
    severity = Severity.ERROR
    description = (
        "default_rng() with no argument or a literal constant bypasses "
        "repro.config seed scoping"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if module.module_name in _EXEMPT_MODULES:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_default_rng = (
                isinstance(func, ast.Attribute)
                and func.attr == "default_rng"
                and _is_np_random(func.value)
            ) or (isinstance(func, ast.Name) and func.id == "default_rng")
            if not is_default_rng:
                continue
            if not node.args and not node.keywords:
                yield self.finding(
                    module,
                    node,
                    "unseeded default_rng() is non-reproducible; use "
                    "repro.config.rng_for(<scope parts>)",
                )
            elif len(node.args) == 1 and _constant_seed(node.args[0]):
                yield self.finding(
                    module,
                    node,
                    f"default_rng({ast.unparse(node.args[0])}) hardcodes a "
                    "seed, bypassing repro.config scoping; use "
                    "repro.config.rng_for(<scope parts>)",
                )


@register_rule
class DroppedRngThreadingRule(ProjectRule):
    """RNG010 — seeded state in scope must be forwarded to callees.

    The inter-procedural generalization of RNG001/002: a function that
    holds an ``rng``/``seed`` (as a parameter, a local binding, or a
    closure) and calls a project-internal callee accepting such a
    parameter must pass it on. Omitting it lets the callee fall back to
    its own seeding, silently forking the reproduction's single seed
    fan-out. Analysis details live in :mod:`repro.analysis.flow`.
    """

    id = "RNG010"
    name = "dropped-rng-threading"
    severity = Severity.ERROR
    description = (
        "a function holding rng/seed state calls a callee that accepts "
        "one without forwarding it, silently re-seeding downstream"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        for violation in iter_rng_flow_violations(project.summaries):
            dropped = ", ".join(violation.dropped)
            held = ", ".join(violation.held)
            yield self.project_finding(
                violation.rel_path,
                f"{violation.caller} holds seeded state ({held}) but calls "
                f"{violation.callee_display} without forwarding {dropped}; "
                "the callee will fall back to its own seeding",
                lineno=violation.lineno,
                col=violation.col,
            )
