"""Search-space ↔ estimator conformance (cross-module, fully static).

``repro.automl.search_space`` declares, per model family, a
:class:`ConfigSpace` of hyper-parameter dimensions plus a
``_build_model`` factory that forwards sampled values into estimator
constructors across ``repro.ml``. A typo in either place — a dimension
named ``learn_rate`` when the estimator takes ``learning_rate`` — is
silently swallowed at runtime by ``params.get(..., default)`` and turns
every tuning run for that family into noise. This rule re-derives the
family → estimator-class mapping from the AST of ``_build_model``,
resolves each class to its defining module, and verifies every dimension
name, default key, and forwarded keyword against the estimator's real
``__init__`` signature.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.analysis.core import (
    Finding,
    Project,
    ProjectRule,
    Severity,
    SourceModule,
    register_rule,
)

__all__ = ["SearchSpaceConformanceRule"]

_SEARCH_SPACE_MODULE = "repro.automl.search_space"
_DIMENSION_CALLS = frozenset({"CategoricalDim", "IntDim", "FloatDim", "Dimension"})


@dataclass
class _FamilySpace:
    """Statically extracted view of one family's ConfigSpace entry."""

    family: str
    dimensions: dict[str, ast.AST] = field(default_factory=dict)
    defaults: dict[str, ast.AST] = field(default_factory=dict)
    space_node: ast.AST | None = None


def _dim_name(node: ast.expr, aliases: dict[str, str]) -> tuple[str, ast.AST] | None:
    """Resolve one element of a ConfigSpace dimensions tuple to its name."""
    if isinstance(node, ast.Call):
        func = node.func
        callee = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", "")
        if callee in _DIMENSION_CALLS and node.args:
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                return first.value, node
    if isinstance(node, ast.Name) and node.id in aliases:
        return aliases[node.id], node
    return None


def _collect_dim_aliases(tree: ast.Module) -> dict[str, str]:
    """Module-level ``_SHARED = CategoricalDim("name", ...)`` assignments."""
    aliases: dict[str, str] = {}
    for stmt in tree.body:
        if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
            continue
        target = stmt.targets[0]
        if not isinstance(target, ast.Name):
            continue
        resolved = _dim_name(stmt.value, {})
        if resolved is not None:
            aliases[target.id] = resolved[0]
    return aliases


def _collect_family_spaces(tree: ast.Module) -> dict[str, _FamilySpace]:
    """Parse the ``FAMILY_SPACES`` dict literal into per-family views."""
    aliases = _collect_dim_aliases(tree)
    spaces: dict[str, _FamilySpace] = {}
    for stmt in tree.body:
        targets = []
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        else:
            continue
        named = [t for t in targets if isinstance(t, ast.Name)]
        if not any(t.id == "FAMILY_SPACES" for t in named):
            continue
        if not isinstance(value, ast.Dict):
            continue
        for key, entry in zip(value.keys, value.values):
            if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                continue
            space = _FamilySpace(family=key.value, space_node=entry)
            if isinstance(entry, ast.Call):
                dims = next(
                    (a for a in entry.args if isinstance(a, (ast.Tuple, ast.List))),
                    None,
                )
                if dims is not None:
                    for element in dims.elts:
                        resolved = _dim_name(element, aliases)
                        if resolved is not None:
                            space.dimensions[resolved[0]] = resolved[1]
                for kw in entry.keywords:
                    if kw.arg == "defaults" and isinstance(kw.value, ast.Dict):
                        for dkey, dval in zip(kw.value.keys, kw.value.values):
                            if isinstance(dkey, ast.Constant) and isinstance(
                                dkey.value, str
                            ):
                                space.defaults[dkey.value] = dkey
            spaces[key.value] = space
    return spaces


@dataclass
class _FactoryBranch:
    """One ``if family == "x": return Cls(...)`` branch of _build_model."""

    family: str
    class_name: str
    keywords: dict[str, ast.AST]
    consumed_params: set[str]
    node: ast.AST


def _branch_families(test: ast.expr) -> list[str]:
    """Family literals matched by one if-test (== or `in` tuple)."""
    if not isinstance(test, ast.Compare) or len(test.comparators) != 1:
        return []
    if not (isinstance(test.left, ast.Name) and test.left.id == "family"):
        return []
    comparator = test.comparators[0]
    op = test.ops[0]
    if isinstance(op, ast.Eq) and isinstance(comparator, ast.Constant):
        return [comparator.value] if isinstance(comparator.value, str) else []
    if isinstance(op, ast.In) and isinstance(comparator, (ast.Tuple, ast.List)):
        return [
            e.value
            for e in comparator.elts
            if isinstance(e, ast.Constant) and isinstance(e.value, str)
        ]
    return []


def _collect_factory(tree: ast.Module) -> dict[str, _FactoryBranch]:
    """Parse ``_build_model`` into family → constructed-class branches."""
    factory = next(
        (
            n
            for n in tree.body
            if isinstance(n, ast.FunctionDef) and n.name == "_build_model"
        ),
        None,
    )
    branches: dict[str, _FactoryBranch] = {}
    if factory is None:
        return branches
    for node in ast.walk(factory):
        if not isinstance(node, ast.If):
            continue
        families = _branch_families(node.test)
        if not families:
            continue
        returned = next(
            (
                s.value
                for s in ast.walk(node)
                if isinstance(s, ast.Return) and isinstance(s.value, ast.Call)
            ),
            None,
        )
        if returned is None or not isinstance(returned.func, ast.Name):
            continue
        keywords = {
            kw.arg: kw for kw in returned.keywords if kw.arg is not None
        }
        # Hyper-parameter names the branch reads out of the params dict,
        # e.g. p.get("max_depth", 12) — these are the names sampling must
        # produce for the value to take effect.
        consumed = {
            call.args[0].value
            for call in ast.walk(node)
            if isinstance(call, ast.Call)
            and isinstance(call.func, ast.Attribute)
            and call.func.attr == "get"
            and call.args
            and isinstance(call.args[0], ast.Constant)
            and isinstance(call.args[0].value, str)
        }
        for family in families:
            branches[family] = _FactoryBranch(
                family=family,
                class_name=returned.func.id,
                keywords=keywords,
                consumed_params=consumed,
                node=returned,
            )
    return branches


def _import_map(tree: ast.Module) -> dict[str, str]:
    """Imported name → source module, for ``from x import y`` statements."""
    imports: dict[str, str] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.ImportFrom) and stmt.module:
            for alias in stmt.names:
                imports[alias.asname or alias.name] = stmt.module
    return imports


def _init_params(cls: ast.ClassDef) -> tuple[set[str], bool] | None:
    """(accepted kwarg names, has **kwargs) of a class ``__init__``."""
    init = next(
        (
            n
            for n in cls.body
            if isinstance(n, ast.FunctionDef) and n.name == "__init__"
        ),
        None,
    )
    if init is None:
        return None
    args = init.args
    names = {
        a.arg
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        if a.arg != "self"
    }
    return names, args.kwarg is not None


def _find_class(project: Project, dotted: str, name: str) -> ast.ClassDef | None:
    module = project.find_module(dotted)
    if module is None:
        return None
    for node in module.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


@register_rule
class SearchSpaceConformanceRule(ProjectRule):
    """SSP001 — every search-space hyper-parameter must reach its estimator."""

    id = "SSP001"
    name = "search-space-conformance"
    severity = Severity.ERROR
    description = (
        "FAMILY_SPACES dimension names, defaults, and _build_model keywords "
        "must all match the target estimator's __init__ signature"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        module = project.find_module(_SEARCH_SPACE_MODULE)
        if module is None:
            return
        spaces = _collect_family_spaces(module.tree)
        branches = _collect_factory(module.tree)
        imports = _import_map(module.tree)
        if not spaces:
            yield self._finding(
                module, module.tree, "no FAMILY_SPACES dict literal found"
            )
            return

        for family, space in sorted(spaces.items()):
            branch = branches.get(family)
            if branch is None:
                yield self._finding(
                    module,
                    space.space_node or module.tree,
                    f"family {family!r} has a ConfigSpace but no "
                    "_build_model branch constructs it",
                )
                continue
            source_module = imports.get(branch.class_name)
            if source_module is None:
                continue
            cls = _find_class(project, source_module, branch.class_name)
            if cls is None:
                # Partial lint run: the estimator module is outside the
                # analyzed paths, so there is nothing to check against.
                continue
            signature = _init_params(cls)
            if signature is None:
                continue
            accepted, has_var_kw = signature
            if has_var_kw:
                continue
            for name, node in {**space.dimensions, **space.defaults}.items():
                if name not in accepted:
                    yield self._finding(
                        module,
                        node,
                        f"family {family!r}: hyper-parameter {name!r} is "
                        f"not an __init__ keyword of {branch.class_name} "
                        f"({source_module}); accepted: "
                        f"{', '.join(sorted(accepted))}",
                    )
                elif name not in branch.consumed_params and branch.consumed_params:
                    yield self._finding(
                        module,
                        node,
                        f"family {family!r}: sampled hyper-parameter "
                        f"{name!r} is never read by the _build_model "
                        "branch, so tuned values are silently dropped",
                    )
            for name, node in sorted(branch.keywords.items()):
                if name not in accepted:
                    yield self._finding(
                        module,
                        node,
                        f"family {family!r}: _build_model passes keyword "
                        f"{name!r} but {branch.class_name}.__init__ only "
                        f"accepts: {', '.join(sorted(accepted))}",
                    )

    def _finding(
        self, module: SourceModule, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            path=module.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            message=message,
            severity=self.severity,
        )
