"""Dead-symbol detection driven by the whole-program reference graphs.

Dead code in a reproduction is not just clutter: an unreferenced
``__all__`` export is a public-API promise nobody keeps, and an unused
module-level function is usually the residue of a refactor that the
per-file rules could never see. Both checks are name-based and
deliberately conservative — any textual reference anywhere in the
project (a ``Name`` load, an attribute access, an import alias) keeps a
symbol alive, so dynamic dispatch and test-only callers never produce
false removals as long as the name appears somewhere.

DEAD001 (unused symbol) considers a top-level function or class a
candidate only when the module's own ``__all__`` does not claim it (or,
in modules without ``__all__``, when it is private) and no decorator is
attached — decorators are registration points (``@register_rule``,
pytest fixtures) whose callers are invisible to static analysis.

DEAD002 (unreachable export) checks that each ``__all__`` entry of a
non-``__init__`` module actually escapes: some other module references
the name, or the parent package ``__init__`` re-exports it as part of
the public facade. Package ``__init__`` modules themselves are exempt —
they *are* the API boundary whose consumers live outside the analyzed
tree.

Both rules assume whole-program visibility; running them on a subset of
the tree over-reports by construction (``--changed`` therefore runs
file-scoped rules only).
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping

from repro.analysis.core import (
    Finding,
    Project,
    ProjectRule,
    Severity,
    register_rule,
)
from repro.analysis.graph import ModuleSummary

__all__ = ["UnusedSymbolRule", "UnreachableExportRule"]


def _dunder(name: str) -> bool:
    return name.startswith("__") and name.endswith("__")


def _referencing_modules(
    summaries: Mapping[str, ModuleSummary],
) -> dict[str, set[str]]:
    """name -> set of modules whose source references that name."""
    owners: dict[str, set[str]] = {}
    for module, summary in summaries.items():
        for name in summary.refs:
            owners.setdefault(name, set()).add(module)
    return owners


@register_rule
class UnusedSymbolRule(ProjectRule):
    """DEAD001 — module-level symbols nobody references anywhere."""

    id = "DEAD001"
    name = "unused-symbol"
    severity = Severity.WARNING
    description = (
        "module-level function/class is neither exported via __all__ nor "
        "referenced anywhere in the project"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        summaries = project.summaries
        referencing = _referencing_modules(summaries)
        for module in sorted(summaries):
            summary = summaries[module]
            for name in sorted(summary.symbols):
                info = summary.symbols[name]
                if info["decorated"] or _dunder(name):
                    continue
                if summary.exports is not None:
                    if name in summary.exports:
                        continue
                elif not name.startswith("_"):
                    # No __all__ means the whole public surface is
                    # implicitly exported; only private names qualify.
                    continue
                if referencing.get(name):
                    continue
                yield self.project_finding(
                    summary.rel_path,
                    f"{info['kind']} '{name}' in {module} is never "
                    "referenced anywhere in the project; delete it or "
                    "export it via __all__",
                    lineno=int(info["lineno"]),
                    col=int(info["col"]),
                )


@register_rule
class UnreachableExportRule(ProjectRule):
    """DEAD002 — ``__all__`` entries that never escape their module."""

    id = "DEAD002"
    name = "unreachable-export"
    severity = Severity.WARNING
    description = (
        "__all__ export of a non-package module is neither referenced by "
        "another module nor re-exported by its parent package"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        summaries = project.summaries
        referencing = _referencing_modules(summaries)
        for module in sorted(summaries):
            summary = summaries[module]
            if summary.is_init or summary.exports is None:
                continue
            if any(part.startswith("_") for part in module.split(".")):
                continue  # private modules have no public-API obligation
            parent = module.rsplit(".", 1)[0] if "." in module else ""
            parent_summary = summaries.get(parent)
            parent_exports = (
                parent_summary.exports or () if parent_summary else ()
            )
            for name in summary.exports:
                if referencing.get(name, set()) - {module}:
                    continue
                if name in parent_exports:
                    continue
                yield self.project_finding(
                    summary.rel_path,
                    f"__all__ export '{name}' never escapes {module}: no "
                    "other module references it and the parent package "
                    "does not re-export it",
                    lineno=summary.exports_lineno,
                )
