"""Observability discipline: library code must not ``print``.

Since ``repro.telemetry`` exists, ad-hoc ``print`` debugging in library
modules is a lint error: it bypasses the span/metric/event substrate
(so the information never reaches traces), and it corrupts the stdout
of machine-readable commands like ``repro-em lint --format json`` or
``--telemetry json``.

Sanctioned printers are exempt by construction:

* CLI driver modules (``cli`` / ``__main__``) — stdout *is* their API;
* reporter modules (``reporter`` / ``report``) — rendering human-facing
  text is their whole job;
* statements under an ``if __name__ == "__main__":`` guard — script
  entry points, not library paths.

Anything else should go through :mod:`repro.telemetry` (or become a
returned string the caller can route), or carry an explicit
``# repro: noqa[OBS001]``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.core import (
    Finding,
    FileRule,
    Severity,
    SourceModule,
    register_rule,
)

__all__ = ["PrintInLibraryCodeRule"]

#: Final module-name components whose stdout is their public interface.
_EXEMPT_MODULE_NAMES = frozenset({"cli", "__main__", "reporter", "report"})


def _is_main_guard(node: ast.stmt) -> bool:
    """``if __name__ == "__main__":`` (either comparison order)."""
    if not isinstance(node, ast.If):
        return False
    test = node.test
    if not isinstance(test, ast.Compare) or len(test.ops) != 1:
        return False
    if not isinstance(test.ops[0], ast.Eq):
        return False
    operands = [test.left, *test.comparators]
    names = [o.id for o in operands if isinstance(o, ast.Name)]
    values = [o.value for o in operands if isinstance(o, ast.Constant)]
    return "__name__" in names and "__main__" in values


@register_rule
class PrintInLibraryCodeRule(FileRule):
    """OBS001 — ``print()`` outside CLI/reporter modules and main guards."""

    id = "OBS001"
    name = "print-in-library-code"
    severity = Severity.ERROR
    description = (
        "bare print() in library code; emit a telemetry span/metric/event "
        "or return the text to the caller instead"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if module.module_name.rsplit(".", 1)[-1] in _EXEMPT_MODULE_NAMES:
            return
        guarded: set[int] = set()
        for statement in module.tree.body:
            if _is_main_guard(statement):
                guarded.update(
                    id(node) for node in ast.walk(statement)
                )
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
                and id(node) not in guarded
            ):
                yield self.finding(
                    module,
                    node,
                    "print() call in library code; route it through "
                    "repro.telemetry or a reporter module",
                )
