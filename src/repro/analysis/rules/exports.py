"""Export hygiene: ``__all__`` must agree with what a module defines.

Undefined exports break ``from pkg import *`` and make the documented
API lie; re-exports imported in a package ``__init__`` but left out of
``__all__`` drift invisibly out of the public surface.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.core import (
    Finding,
    FileRule,
    Severity,
    SourceModule,
    register_rule,
)

__all__ = ["UndefinedExportRule", "MissingExportRule"]


def _top_level_bindings(tree: ast.Module) -> set[str]:
    """Names bound at module top level (defs, imports, assignments)."""
    bound: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                bound.add(alias.asname or alias.name)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for name in ast.walk(target):
                    if isinstance(name, ast.Name):
                        bound.add(name.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            bound.add(node.target.id)
        elif isinstance(node, (ast.If, ast.Try)):
            # Conditional imports / defs still bind optimistically.
            for sub in ast.walk(node):
                if isinstance(
                    sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    bound.add(sub.name)
                elif isinstance(sub, (ast.Import, ast.ImportFrom)):
                    for alias in sub.names:
                        bound.add((alias.asname or alias.name).split(".")[0])
    return bound


def _exported(tree: ast.Module) -> tuple[list[tuple[str, ast.AST]], ast.AST] | None:
    """``(name, node)`` pairs of a literal top-level ``__all__``, if any."""
    for node in tree.body:
        value = None
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
        ):
            value = node.value
        elif (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and node.target.id == "__all__"
        ):
            value = node.value
        if value is None:
            continue
        if not isinstance(value, (ast.List, ast.Tuple)):
            return None  # dynamically built __all__ — out of scope
        names = []
        for element in value.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                names.append((element.value, element))
            else:
                return None
        return names, node
    return None


@register_rule
class UndefinedExportRule(FileRule):
    """EXP001 — every ``__all__`` entry must be bound in the module."""

    id = "EXP001"
    name = "undefined-export"
    severity = Severity.ERROR
    description = "__all__ names a symbol the module never defines or imports"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        exported = _exported(module.tree)
        if exported is None:
            return
        names, _ = exported
        bound = _top_level_bindings(module.tree) | {"__version__", "__all__"}
        for name, node in names:
            if name not in bound:
                yield self.finding(
                    module,
                    node,
                    f"__all__ exports {name!r} but the module does not "
                    "define or import it",
                )


@register_rule
class MissingExportRule(FileRule):
    """EXP002 — package re-exports must be listed in ``__all__``.

    Applies to ``__init__.py`` only: a public name imported from inside
    the same top-level package, or defined in the ``__init__`` itself, is
    a deliberate re-export and belongs in ``__all__``.
    """

    id = "EXP002"
    name = "missing-export"
    severity = Severity.WARNING
    description = (
        "public name re-exported by a package __init__ is missing from __all__"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if module.path.name != "__init__.py":
            return
        exported = _exported(module.tree)
        if exported is None:
            return
        names = {name for name, _ in exported[0]}
        package_root = module.module_name.split(".")[0]
        for node in module.tree.body:
            if isinstance(node, ast.ImportFrom):
                if not node.module or node.module.split(".")[0] != package_root:
                    continue
                for alias in node.names:
                    public = alias.asname or alias.name
                    if not public.startswith("_") and public not in names:
                        yield self.finding(
                            module,
                            node,
                            f"re-export {public!r} (from {node.module}) is "
                            "missing from __all__",
                        )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                if not node.name.startswith("_") and node.name not in names:
                    yield self.finding(
                        module,
                        node,
                        f"public name {node.name!r} defined in __init__ is "
                        "missing from __all__",
                    )
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                name = node.target.id
                if not name.startswith("_") and name not in names and name != "__all__":
                    yield self.finding(
                        module,
                        node,
                        f"public name {name!r} defined in __init__ is "
                        "missing from __all__",
                    )
