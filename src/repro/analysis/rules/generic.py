"""Generic correctness pitfalls: mutable defaults, silent excepts,
shadowed builtins. Small rules, but each one has produced real EM-repro
bugs elsewhere (a shared default list in a featurizer is cross-dataset
state leakage; a bare except hides BudgetExhaustedError).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.core import (
    Finding,
    FileRule,
    Severity,
    SourceModule,
    register_rule,
)

__all__ = [
    "MutableDefaultRule",
    "BareExceptRule",
    "BroadExceptRule",
    "ShadowedBuiltinRule",
]

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "defaultdict", "Counter"})


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CALLS
    )


@register_rule
class MutableDefaultRule(FileRule):
    """GEN001 — mutable default arguments are shared across calls."""

    id = "GEN001"
    name = "mutable-default-argument"
    severity = Severity.ERROR
    description = "default argument values are evaluated once and shared"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    yield self.finding(
                        module,
                        default,
                        f"{node.name}() has a mutable default "
                        f"({ast.unparse(default)}); use None and build "
                        "inside the body",
                    )


@register_rule
class BareExceptRule(FileRule):
    """GEN002/GEN003 are split so broad-but-typed handlers gate softer."""

    id = "GEN002"
    name = "bare-except"
    severity = Severity.ERROR
    description = "bare except catches SystemExit/KeyboardInterrupt"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    module,
                    node,
                    "bare except: catches everything including "
                    "KeyboardInterrupt; name the exception types",
                )


_BROAD = frozenset({"Exception", "BaseException"})


@register_rule
class BroadExceptRule(FileRule):
    """GEN003 — ``except Exception`` swallows the repro error taxonomy."""

    id = "GEN003"
    name = "broad-except"
    severity = Severity.WARNING
    description = "except Exception hides typed repro.exceptions failures"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler) or node.type is None:
                continue
            types = (
                node.type.elts
                if isinstance(node.type, ast.Tuple)
                else [node.type]
            )
            for exc_type in types:
                if isinstance(exc_type, ast.Name) and exc_type.id in _BROAD:
                    yield self.finding(
                        module,
                        node,
                        f"except {exc_type.id} is too broad; catch the "
                        "specific repro.exceptions types",
                    )


def _class_attribute_targets(tree: ast.Module) -> set[ast.Name]:
    """Name targets of class-body attribute assignments.

    ``class Rule: id = "RNG001"`` is attribute definition in the
    dataclass idiom, not shadowing — the name lives on the class, and
    the builtin stays reachable everywhere that matters.
    """
    exempt: set[ast.Name] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for stmt in node.body:
            targets: list[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    exempt.add(target)
    return exempt


#: Builtins whose shadowing has bitten this codebase's style of numeric
#: code; deliberately curated rather than the full builtins list.
_SHADOWABLE = frozenset(
    {
        "list", "dict", "set", "tuple", "str", "int", "float", "bool",
        "bytes", "object", "type", "id", "input", "filter", "map", "zip",
        "sum", "min", "max", "len", "abs", "round", "hash", "next",
        "iter", "range", "vars", "sorted", "all", "any", "open", "format",
    }
)


@register_rule
class ShadowedBuiltinRule(FileRule):
    """GEN004 — don't rebind load-bearing builtins."""

    id = "GEN004"
    name = "shadowed-builtin"
    severity = Severity.WARNING
    description = "argument or variable shadows a python builtin"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        exempt = _class_attribute_targets(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                for arg in (
                    *args.posonlyargs,
                    *args.args,
                    *args.kwonlyargs,
                    *([args.vararg] if args.vararg else []),
                    *([args.kwarg] if args.kwarg else []),
                ):
                    if arg.arg in _SHADOWABLE:
                        yield self.finding(
                            module,
                            arg,
                            f"argument {arg.arg!r} of {node.name}() shadows "
                            "a builtin",
                        )
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                if node.id in _SHADOWABLE and node not in exempt:
                    yield self.finding(
                        module,
                        node,
                        f"assignment to {node.id!r} shadows a builtin",
                    )
